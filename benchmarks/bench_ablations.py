"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. handle-invalidation tracking cost (safety mechanism overhead);
2. script pre-simplification (include inlining + no-op folding, §3.4);
3. dynamic IRDL condition checking overhead;
4. greedy-driver scaling with pattern-set size (case-study-3 scale).
"""

import pytest

from repro.core import (
    DynamicConditionChecker,
    TransformInterpreter,
    dialect as transform,
    expand_includes,
    pipeline_to_transform_script,
    simplify_script,
)
from repro.enzyme import ALL_PATTERN_NAMES, build_llm_block_module, make_pattern
from repro.execution.workloads import build_resnet_layer_module
from repro.ir import Builder, Operation
from repro.rewrite.greedy import apply_patterns_greedily


def fig8_script():
    script, builder, root = transform.sequence()
    loop = transform.match_op(builder, root, "scf.for",
                              position="first")
    main, rest = transform.loop_split(builder, loop, 32)
    outer, inner = transform.loop_tile(builder, main, [32, 32])
    alts = transform.alternatives(builder, 2)
    first = Builder.at_end(alts.regions[0].entry_block)
    transform.to_library(first, inner, "libxsmm")
    transform.yield_(first)
    transform.loop_unroll(builder, rest, full=True)
    transform.yield_(builder)
    return script


@pytest.mark.parametrize("track", [True, False],
                         ids=["tracking-on", "tracking-off"])
def test_ablation_invalidation_tracking(benchmark, track):
    """Cost of nested-alias invalidation tracking (§3.1 safety)."""

    def run():
        payload = build_resnet_layer_module()
        interpreter = TransformInterpreter(track_invalidation=track)
        interpreter.apply(fig8_script(), payload)
        return payload

    benchmark(run)


def _script_with_noops():
    """A script padded with no-op transforms and macro includes."""
    module = Operation.create("builtin.module", regions=1)
    module.regions[0].add_block()
    macro, macro_builder, macro_args = transform.named_sequence(
        "noop_macro", n_args=1
    )
    noop_loop = transform.match_op(macro_builder, macro_args[0],
                                   "scf.for", position="first")
    transform.loop_unroll(macro_builder, noop_loop, factor=1)
    transform.yield_(macro_builder)
    module.regions[0].entry_block.append(macro)

    seq, builder, root = transform.sequence()
    for _ in range(8):
        transform.include(builder, "noop_macro", [root])
        transform.match_op(builder, root, "scf.for")  # dead match
        transform.param_constant(builder, 8)  # dead param
    loop = transform.match_op(builder, root, "scf.for",
                              position="first")
    main, rest = transform.loop_split(builder, loop, 32)
    transform.loop_tile(builder, main, [32, 32])
    transform.loop_unroll(builder, rest, full=True)
    transform.yield_(builder)
    module.regions[0].entry_block.append(seq)
    return module


@pytest.mark.parametrize("simplify", [False, True],
                         ids=["raw-script", "pre-simplified"])
def test_ablation_script_presimplification(benchmark, simplify):
    """§3.4: simplifying the transform IR saves payload-side work."""

    def run():
        payload = build_resnet_layer_module()
        script = _script_with_noops()
        expand_includes(script)
        if simplify:
            simplify_script(script)
        sequence = next(script.walk_ops("transform.sequence"))
        TransformInterpreter().apply(sequence, payload)
        return payload

    benchmark(run)


FIXED_PIPELINE = [
    "convert-scf-to-cf", "convert-arith-to-llvm", "convert-cf-to-llvm",
    "convert-func-to-llvm", "expand-strided-metadata", "lower-affine",
    "convert-arith-to-llvm", "finalize-memref-to-llvm",
    "reconcile-unrealized-casts",
]


@pytest.mark.parametrize("checked", [False, True],
                         ids=["plain", "irdl-checked"])
def test_ablation_dynamic_condition_checking(benchmark, checked):
    """Cost of verifying declared conditions while compiling (§3.3)."""
    from tests.passes.test_lowerings import build_subview_payload

    def run():
        payload = build_subview_payload(dynamic_offset=True)
        script = pipeline_to_transform_script(FIXED_PIPELINE)
        interpreter = (
            DynamicConditionChecker() if checked
            else TransformInterpreter()
        )
        interpreter.apply(script, payload)
        return payload

    benchmark(run)


@pytest.mark.parametrize("n_patterns", [10, 50, 101],
                         ids=["10-patterns", "50-patterns",
                              "101-patterns"])
def test_ablation_pattern_set_scaling(benchmark, n_patterns):
    """Greedy-driver cost as the pattern set grows (case-3 scale)."""
    names = ALL_PATTERN_NAMES[:n_patterns]

    def run():
        payload = build_llm_block_module(seq=64, dim=64, n_blocks=2)
        apply_patterns_greedily(
            payload, [make_pattern(n) for n in names]
        )
        return payload

    benchmark(run)
