"""Table 1 + Fig. 6: compile-time overhead of transform-driven pipelines.

The identical TOSA->Linalg pipeline runs once through the native pass
manager and once as a transform script using
``transform.apply_registered_pass`` — the paper's worst case for the
Transform dialect (pure overhead, none of its features used). The
paper reports <= 2.6% overhead; we assert a small-single-digit bound
with headroom for timer noise on small models.
"""

import gc
import statistics
import time

import pytest

from repro.core import TransformInterpreter, pipeline_to_transform_script
from repro.core import dialect as transform
from repro.execution.workloads import build_resnet_layer_module
from repro.mlmodels import MODEL_SPECS, build_model, count_ops
from repro.passes import PassManager
from repro.passes.canonicalize import frozen_canonicalization_patterns
from repro.passes.tosa_pipeline import TOSA_TO_LINALG_PIPELINE
from repro.profiling import Profiler
from repro.rewrite.greedy import apply_patterns_greedily
from repro.transforms.loop import unroll_loop

#: Table-1 rows: model -> (paper op count, paper MLIR ms, paper Transform ms)
PAPER_ROWS = {
    "squeezenet": (126, 16.6, 16.9),
    "gpt2": (2861, 185.4, 190.0),
    "mobilebert": (4134, 316.7, 317.7),
    "whisper_decoder": (847, 457.5, 462.3),
    "bert_base": (1182, 1315.3, 1348.6),
}

#: Models benchmarked through pytest-benchmark (full set incl. the
#: largest ones; each compile is O(seconds) at most).
MODELS = ["squeezenet", "whisper_decoder", "bert_base", "gpt2",
          "mobilebert"]


def compile_native(name):
    module = build_model(name)
    PassManager(list(TOSA_TO_LINALG_PIPELINE)).run(module)
    return module


def compile_via_transform(name):
    module = build_model(name)
    script = pipeline_to_transform_script(list(TOSA_TO_LINALG_PIPELINE))
    TransformInterpreter().apply(script, module)
    return module


@pytest.mark.parametrize("model", MODELS)
def test_table1_native_pipeline(benchmark, model):
    module = benchmark(compile_native, model)
    assert count_ops(module, "tosa.") == 0
    benchmark.extra_info["model"] = model
    benchmark.extra_info["paper_ops"] = PAPER_ROWS[model][0]


@pytest.mark.parametrize("model", MODELS)
def test_table1_transform_pipeline(benchmark, model):
    module = benchmark(compile_via_transform, model)
    assert count_ops(module, "tosa.") == 0
    benchmark.extra_info["model"] = model


def build_unrolled_resnet_payload():
    """The ResNet-layer nest with its k-loop fully unrolled (~1.8k ops).

    This is the greedy-driver stress payload: a large flat block that
    the pre-worklist driver re-walked once per fixpoint iteration while
    re-sorting the pattern list at every op visit.
    """
    module = build_resnet_layer_module()
    loops = [op for op in module.walk() if op.name == "scf.for"]
    unroll_loop(loops[-1], full=True)
    return module


def test_greedy_fixpoint_resnet_layer(benchmark):
    """PR 1 hot path: worklist-driver fixpoint on the ResNet payload.

    Seed (full-rewalk driver): 15.0 ms best-of-3 on the reference
    machine; the worklist driver must stay at least 2x faster. The
    wall-clock assertion is deliberately loose (machine-relative); the
    recorded numbers live in CHANGES.md.
    """
    frozen = frozen_canonicalization_patterns()

    def setup():
        return (build_unrolled_resnet_payload(),), {}

    def run(module):
        apply_patterns_greedily(module, frozen)
        return module

    module = benchmark.pedantic(run, setup=setup, rounds=10)
    assert any(op.name == "memref.load" for op in module.walk())


def test_greedy_fixpoint_resnet_profile():
    """The overhead-study breakdown: per-pattern and per-transform
    timings for the ResNet-layer greedy fixpoint, driven end-to-end
    through a transform script so both instruments fire."""
    import repro.enzyme  # noqa: F401 — fills TRANSFORM_PATTERN_REGISTRY

    profiler = Profiler()
    payload = build_unrolled_resnet_payload()

    script, builder, root = transform.sequence()
    transform.apply_patterns(
        builder, root,
        ["abs_of_reshape"],  # any registry pattern: exercises the op
    )
    transform.yield_(builder)
    interpreter = TransformInterpreter(profiler=profiler)
    interpreter.apply(script, payload)

    # The canonicalization fixpoint itself, profiled.
    apply_patterns_greedily(
        payload, frozen_canonicalization_patterns(), profiler=profiler
    )

    report = profiler.render()
    print("\n" + report)
    # Per-transform timings...
    assert "transform.apply_patterns" in report
    # ...and per-pattern timings with worklist counters.
    assert "fold-constant-arith" in report
    assert "Greedy-driver worklist" in report


def _timed(fn):
    """One sample with a clean heap: collect first, GC stays enabled so
    collector pauses hit both modes alike."""
    gc.collect()
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _measure_model(model, pairs):
    """Interleave (native, transform) samples pairwise and compare the
    *minimum* of each side: timing noise (scheduler, allocator, GC) is
    strictly additive, so best-of-N is the standard estimator for the
    true cost and is robust to one contended sample poisoning a small
    median."""
    natives, transforms = [], []
    for _ in range(pairs):
        natives.append(_timed(lambda: compile_native(model)))
        transforms.append(_timed(lambda: compile_via_transform(model)))
    best_native = min(natives)
    best_transform = min(transforms)
    return (
        best_native,
        best_transform,
        (best_transform / best_native - 1.0) * 100.0,
    )


def test_table1_overhead_summary(benchmark):
    """Regenerate the full Table-1 rows and assert the overhead bound."""
    rows = []
    for model in MODELS:
        pairs = 7 if MODEL_SPECS[model].n_ops < 2000 else 4
        native, transformed, overhead = _measure_model(model, pairs)
        rows.append((model, MODEL_SPECS[model].n_ops, native * 1e3,
                     transformed * 1e3, overhead))

    print("\nTable 1 — compile time, native pass manager vs Transform")
    print(f"{'model':17s}{'# ops':>7s}{'MLIR (ms)':>12s}"
          f"{'Transform (ms)':>16s}{'overhead':>10s}")
    for model, ops, native_ms, transform_ms, overhead in rows:
        paper_ops, paper_native, paper_transform = PAPER_ROWS[model]
        print(f"{model:17s}{ops:7d}{native_ms:12.1f}"
              f"{transform_ms:16.1f}{overhead:+9.1f}%"
              f"   (paper: {paper_native:.1f} / {paper_transform:.1f} ms,"
              f" {(paper_transform / paper_native - 1) * 100:+.1f}%)")

    mean_overhead = sum(row[4] for row in rows) / len(rows)
    print(f"mean overhead: {mean_overhead:+.2f}% "
          "(paper: <= 2.6% per model)")
    # Shape assertion: the interpreter adds only small overhead. Timer
    # noise on sub-second compiles dominates individual rows, so bound
    # the mean.
    assert mean_overhead < 8.0
    benchmark.extra_info["rows"] = [
        {"model": r[0], "ops": r[1], "native_ms": round(r[2], 1),
         "transform_ms": round(r[3], 1), "overhead_pct": round(r[4], 2)}
        for r in rows
    ]
    benchmark(lambda: None)
