"""Table 2 + case study 2: pre-/post-conditions and static checking.

Regenerates the Table-2 condition rows from the pass declarations,
statically checks the broken and fixed pipelines (reporting the leaked
``affine.apply`` exactly as §4.2 describes), and benchmarks the cost of
the static checker and of the dynamic (IRDL-verified) pipeline run.
"""

import pytest

from repro.core import (
    DynamicConditionChecker,
    TransformInterpreter,
    check_pipeline,
    pass_conditions,
    pipeline_to_transform_script,
)
from repro.dialects import arith, builtin, func, memref as md, scf
from repro.ir import Builder, F32, INDEX
from repro.ir.types import memref
from repro.passes import PassManager
from repro.rewrite.conversion import ConversionError

BROKEN = [
    "convert-scf-to-cf", "convert-arith-to-llvm", "convert-cf-to-llvm",
    "convert-func-to-llvm", "expand-strided-metadata",
    "finalize-memref-to-llvm", "reconcile-unrealized-casts",
]
FIXED = BROKEN[:5] + ["lower-affine", "convert-arith-to-llvm"] + BROKEN[5:]
INPUT_SPECS = {"func.func", "func.return", "scf.forall",
               "arith.constant", "memref.subview", "memref.store"}


def build_payload(dynamic_offset):
    module = builtin.module()
    arg_types = [memref(64, 64)] + ([INDEX] if dynamic_offset else [])
    f = func.func("view", arg_types)
    module.body.append(f)
    builder = Builder.at_end(f.body)
    offset = f.body.args[1] if dynamic_offset else 0
    view = md.subview(builder, f.body.args[0], [offset, 0], [4, 4],
                      [1, 1])
    c4 = arith.index_constant(builder, 4)
    forall = scf.forall(builder, [c4, c4])
    body = Builder.at_end(forall.body)
    md.store(body, arith.constant(body, 42.0, F32), view,
             forall.induction_vars)
    scf.yield_(body)
    func.return_(builder)
    return module


def test_table2_condition_rows(benchmark):
    """Print the Table-2 rows straight from the pass declarations."""
    print("\nTable 2 — declared pre-/post-conditions")
    for index, name in enumerate(BROKEN, start=1):
        conditions = pass_conditions(name)
        pre = sorted(conditions.preconditions)
        post = sorted(conditions.postconditions)[:6]
        print(f"({index}) {name}")
        print(f"    pre:  {pre}")
        print(f"    post: {post}{' ...' if len(conditions.postconditions) > 6 else ''}")
        assert conditions is not None
    benchmark(lambda: [pass_conditions(n) for n in BROKEN])


def test_static_checker_flags_broken_pipeline(benchmark):
    report = benchmark(check_pipeline, BROKEN, INPUT_SPECS, ["llvm.*"])
    assert not report.ok
    leaked = [str(issue) for issue in report.leftovers()]
    assert any("affine.apply" in text for text in leaked)
    print("\nstatic check (broken pipeline):")
    for text in leaked:
        print(f"  {text}")


def test_static_checker_passes_fixed_pipeline(benchmark):
    report = benchmark(check_pipeline, FIXED, INPUT_SPECS, ["llvm.*"])
    assert report.ok
    print("\nstatic check (fixed pipeline): OK — final IR is {llvm.*}")


def test_dynamic_failure_matches_paper_error(benchmark):
    """The runtime error the static checker predicted."""

    def run_broken():
        module = build_payload(dynamic_offset=True)
        try:
            PassManager(BROKEN).run(module)
        except ConversionError as error:
            return str(error)
        return None

    message = benchmark(run_broken)
    assert message is not None
    assert ("failed to legalize operation "
            "'builtin.unrealized_conversion_cast' that was explicitly "
            "marked illegal") in message
    print(f"\ndynamic error: {message}")


def test_fixed_pipeline_compiles_dynamic_offset(benchmark):
    def run_fixed():
        module = build_payload(dynamic_offset=True)
        PassManager(FIXED).run(module)
        return module

    module = benchmark(run_fixed)
    names = {op.name for op in module.walk() if op is not module}
    assert all(name.startswith("llvm.") for name in names)


def test_dynamic_condition_checking_overhead(benchmark):
    """Ablation: IRDL dynamic verification cost on the fixed pipeline."""

    def run_checked():
        module = build_payload(dynamic_offset=True)
        script = pipeline_to_transform_script(FIXED)
        checker = DynamicConditionChecker()
        checker.apply(script, module)
        return checker

    checker = benchmark(run_checked)
    assert checker.violations == []
