"""Case study 3: binary search for the counter-productive pattern.

The paper: over 100 StableHLO patterns, one ("fold reshape/transpose
into full reduce") is end-to-end counter-productive (up to 9% penalty)
because it destroys a fusion barrier. Each binary-search iteration via
the Transform dialect takes ~4 s instead of the ~10-minute C++ rebuild
(31 s link + 164 s packaging + compilation on a 4x24-core Xeon).
"""

import pytest

from repro.enzyme import (
    ALL_PATTERN_NAMES,
    CULPRIT_PATTERN,
    build_llm_block_module,
    evaluate_pattern_set,
    find_counterproductive_pattern,
)

#: The paper's C++ baseline per iteration: compile + 31 s link + 164 s
#: compressed packaging, "up to 10 minutes" overall.
PAPER_CPP_REBUILD_SECONDS = 600.0
PAPER_TRANSFORM_SECONDS = 4.0


def payload():
    return build_llm_block_module()


def test_case3_pattern_count(benchmark):
    assert len(ALL_PATTERN_NAMES) > 100
    print(f"\npattern set: {len(ALL_PATTERN_NAMES)} patterns "
          "(paper: 'over 100')")
    benchmark(lambda: len(ALL_PATTERN_NAMES))


def test_case3_culprit_effect(benchmark):
    """End-to-end effect of the pattern set, with/without the culprit."""

    def measure():
        none = evaluate_pattern_set(payload, [])
        good = evaluate_pattern_set(
            payload,
            [n for n in ALL_PATTERN_NAMES if n != CULPRIT_PATTERN],
        )
        full = evaluate_pattern_set(payload, ALL_PATTERN_NAMES)
        return none, good, full

    none, good, full = benchmark.pedantic(measure, rounds=1,
                                          iterations=1)
    penalty = (full.modelled_seconds / good.modelled_seconds - 1) * 100
    improvement = (none.modelled_seconds / good.modelled_seconds - 1) * 100
    print(f"\nmodelled runtimes: no patterns "
          f"{none.modelled_seconds * 1e3:.2f} ms | all-minus-culprit "
          f"{good.modelled_seconds * 1e3:.2f} ms | all patterns "
          f"{full.modelled_seconds * 1e3:.2f} ms")
    print(f"pattern set helps by {improvement:.1f}%; the culprit costs "
          f"{penalty:.1f}% (paper: up to 9%)")
    assert good.modelled_seconds < none.modelled_seconds
    assert 3.0 < penalty < 20.0
    benchmark.extra_info["culprit_penalty_pct"] = round(penalty, 2)


def test_case3_per_iteration_compile_time(benchmark):
    """One search iteration = re-interpreting the pattern script."""
    iteration = benchmark(
        evaluate_pattern_set, payload, ALL_PATTERN_NAMES
    )
    assert iteration.compile_seconds < PAPER_TRANSFORM_SECONDS
    speedup_vs_rebuild = (
        PAPER_CPP_REBUILD_SECONDS / max(iteration.compile_seconds, 1e-9)
    )
    print(f"\nper-iteration compilation: "
          f"{iteration.compile_seconds * 1e3:.1f} ms via transform "
          f"script (paper C++ rebuild: ~{PAPER_CPP_REBUILD_SECONDS:.0f} s"
          f" -> {speedup_vs_rebuild:.0f}x faster iteration)")


def test_case3_binary_search_finds_culprit(benchmark):
    result = benchmark.pedantic(
        find_counterproductive_pattern,
        args=(payload, ALL_PATTERN_NAMES),
        rounds=1, iterations=1,
    )
    assert result.culprit == CULPRIT_PATTERN
    total = result.total_compile_seconds
    paper_total = PAPER_CPP_REBUILD_SECONDS * len(result.iterations)
    print(f"\nbinary search: culprit = '{result.culprit}' found in "
          f"{len(result.iterations)} iterations, total compile time "
          f"{total:.2f} s (C++-rebuild equivalent: ~{paper_total / 60:.0f}"
          " minutes)")
    benchmark.extra_info["culprit"] = result.culprit
    benchmark.extra_info["iterations"] = len(result.iterations)
