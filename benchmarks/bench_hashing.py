"""Structural hashing: digest compares vs whole-module reprints, and
the function-tier hit rate on an overlapping batch.

Two measurements, mirroring the two consumers the digests rebuilt:

* **identity checks** — every service hot path (cache lookup,
  single-flight key, ``--jobs`` shard identity, reassembly backstop)
  used to answer "are these two modules the same compilation?" by
  printing both and comparing strings. On the unrolled ResNet-layer
  payload (~1.8k ops) this benchmark times R rounds of reprint-compare
  against R rounds of digest-compare (memoized after the first round —
  which is the point) and also reports the cold first-digest cost.
* **function-tier reuse** — a batch of multi-function payloads drawn
  from a shared pool of functions runs through a cached engine; the
  per-function digest tier must convert the overlap into > 0 function
  hits, with every assembled output byte-identical to a tier-disabled
  whole-module compilation.

Emits ``BENCH_hashing.json`` and asserts both bars: digest compares
faster than reprints, and a positive warm hit rate on the overlapping
batch. Run standalone (``python benchmarks/bench_hashing.py``) or
through pytest (``pytest benchmarks/bench_hashing.py -s``).
"""

import json
import os
import sys
import textwrap
import time

import repro.core  # noqa: F401 — registers transform ops
import repro.dialects  # noqa: F401 — registers payload ops
from repro.execution.workloads import build_resnet_layer_module
from repro.ir import op_digest, parse, print_op
from repro.service import (
    CompilationCache,
    CompileEngine,
    CompileJob,
    JobStatus,
)
from repro.transforms.loop import unroll_loop

#: Identity-check rounds (one per simulated cache lookup).
ROUNDS = 50


def build_unrolled_resnet_payload():
    """The ResNet-layer nest with its k-loop fully unrolled (~1.8k
    ops) — the PR 1 stress payload, here standing in for the large
    modules the service keys on every lookup."""
    module = build_resnet_layer_module()
    loops = [op for op in module.walk() if op.name == "scf.for"]
    unroll_loop(loops[-1], full=True)
    return module


def bench_identity_checks():
    payload = build_unrolled_resnet_payload()
    text = print_op(payload)
    # Two independent parses, as two jobs arriving over the wire.
    a = parse(text, "<a>")
    b = parse(text, "<b>")
    op_count = sum(1 for _ in a.walk())

    start = time.perf_counter()
    for _ in range(ROUNDS):
        assert print_op(a) == print_op(b)
    reprint_seconds = time.perf_counter() - start

    start = time.perf_counter()
    digest_a = op_digest(a)
    digest_b = op_digest(b)
    assert digest_a == digest_b
    digest_cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(ROUNDS):
        assert op_digest(a) == op_digest(b)
    digest_warm_seconds = time.perf_counter() - start

    return {
        "payload_ops": op_count,
        "rounds": ROUNDS,
        "reprint_seconds": reprint_seconds,
        "digest_cold_seconds": digest_cold_seconds,
        "digest_warm_seconds": digest_warm_seconds,
        "speedup_warm": reprint_seconds / digest_warm_seconds
        if digest_warm_seconds else float("inf"),
        # Even one cold digest plus R-1 memo hits vs R reprints.
        "speedup_including_cold":
            reprint_seconds
            / (digest_cold_seconds + digest_warm_seconds),
    }


SCHEDULE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops) {factor = 4 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


def _function(name, trip):
    return textwrap.dedent(f"""
      "func.func"() ({{
        %lb = "arith.constant"() {{value = 0 : index}} : () -> index
        %ub = "arith.constant"() {{value = {trip} : index}} : () -> index
        %st = "arith.constant"() {{value = 1 : index}} : () -> index
        "scf.for"(%lb, %ub, %st) ({{
        ^bb0(%iv: index):
          %a = "arith.constant"() {{value = 1.0 : f32}} : () -> f32
          %b = "arith.constant"() {{value = 2.0 : f32}} : () -> f32
          %c = "arith.addf"(%a, %b) : (f32, f32) -> f32
          "scf.yield"() : () -> ()
        }}) : (index, index, index) -> ()
        "func.return"() : () -> ()
      }}) {{sym_name = "{name}", function_type = () -> ()}} : () -> ()
    """).strip()


def _module(*funcs):
    body = "\n".join(funcs)
    return f'"builtin.module"() ({{\n{body}\n}}) : () -> ()'


def _overlapping_batch():
    """12 payloads drawn from a pool of 8 functions, 3 each — every
    function appears in several payloads, so after the first few
    executions the tier serves most of the work."""
    pool = [_function(f"fn{i}", 8 + 4 * i) for i in range(8)]
    return [
        _module(pool[i % 8], pool[(i + 2) % 8], pool[(i + 5) % 8])
        for i in range(12)
    ]


def bench_function_tier():
    payloads = _overlapping_batch()

    # Reference: tier disabled, whole-module compilation per payload.
    reference = []
    with CompileEngine(workers=0, cache=None, preflight=False,
                       function_tier=False) as engine:
        for payload in payloads:
            result = engine.run_job(CompileJob(payload_text=payload,
                                               script_text=SCHEDULE))
            assert result.status is JobStatus.SUCCESS
            reference.append(result.output)

    cache = CompilationCache(capacity=256)
    with CompileEngine(workers=0, cache=cache,
                       preflight=False) as engine:
        start = time.perf_counter()
        results = [
            engine.run_job(CompileJob(payload_text=payload,
                                      script_text=SCHEDULE))
            for payload in payloads
        ]
        elapsed = time.perf_counter() - start
        stats = engine.stats.as_dict()

    for expected, result in zip(reference, results):
        assert result.status is JobStatus.SUCCESS
        assert result.output == expected, (
            "function-tier output diverged from whole-module run"
        )
    function_lookups = (cache.stats.function_hits
                        + cache.stats.function_misses)
    return {
        "jobs": len(payloads),
        "seconds": elapsed,
        "executed": stats["executed"],
        "function_tier_jobs": stats["function_tier_hits"],
        "function_hits": cache.stats.function_hits,
        "function_misses": cache.stats.function_misses,
        "function_hit_rate": cache.stats.function_hits / function_lookups
        if function_lookups else 0.0,
        "function_puts": cache.stats.function_puts,
        "output_byte_identical": True,
    }


def run_benchmark():
    report = {
        "identity_checks": bench_identity_checks(),
        "function_tier": bench_function_tier(),
    }
    report["digest_faster_than_reprint"] = (
        report["identity_checks"]["reprint_seconds"]
        > report["identity_checks"]["digest_cold_seconds"]
        + report["identity_checks"]["digest_warm_seconds"]
    )
    return report


def test_hashing_benchmark():
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    assert report["digest_faster_than_reprint"]
    assert report["function_tier"]["function_hits"] > 0


def main():
    report = run_benchmark()
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_hashing.json")
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    if not report["digest_faster_than_reprint"]:
        print("FAIL: digest compare not faster than reprint",
              file=sys.stderr)
        return 1
    if report["function_tier"]["function_hits"] <= 0:
        print("FAIL: overlapping batch produced no function-tier hits",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
