"""Case study 4 (Fig. 7/8): fine-grained control of a ResNet-50 layer.

Three schedules for the 196x256x256 layer loop nest:

* **OpenMP-style tiling** (Fig. 7): the fixed tile(32,32) the pragma
  expresses — modelled by invoking the tiling utilities directly, the
  way a pragma-driven compiler would (no remainder control);
* **Transform tiling** (Fig. 8 lines 2-5): split the non-divisible
  i-loop (196 = 6*32 + 4) first, tile the divisible part, unroll the
  remainder — performance on par with OpenMP (paper: 0.48 s vs 0.49 s);
* **Transform + microkernel** (Fig. 8 line 7): replace the inner nest
  with a libxsmm call via ``alternatives`` — paper: 0.017 s, >20x.
"""

import pytest

from repro.core import TransformInterpreter, dialect as transform
from repro.execution.costmodel import CostModel
from repro.execution.workloads import build_resnet_layer_module
from repro.ir import Builder
from repro.transforms import split_loop, tile_loop_nest, unroll_loop

PAPER = {"openmp": 0.48, "transform": 0.49, "microkernel": 0.017}


def openmp_style_schedule():
    """Directly-applied tiling, as a pragma-lowering compiler would."""
    module = build_resnet_layer_module()
    i_loop = next(module.walk_ops("scf.for"))
    # OpenMP tile sizes(32, 32): the 196-trip loop is not divisible, so
    # the pragma implementation peels internally; model it as split +
    # tile of the divisible part with the remainder left as a loop.
    main, _rest = split_loop(i_loop, 32)
    tile_loop_nest(main, [32, 32])
    return module


def transform_schedule(with_library):
    module = build_resnet_layer_module()
    script, builder, root = transform.sequence()
    i_loop = transform.match_op(builder, root, "scf.for",
                                position="first")
    main, rest = transform.loop_split(builder, i_loop, 32)
    outer, inner = transform.loop_tile(builder, main, [32, 32])
    if with_library:
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        transform.to_library(first, inner, "libxsmm")
        transform.yield_(first)
    transform.loop_unroll(builder, rest, full=True)
    transform.yield_(builder)
    TransformInterpreter().apply(script, module)
    return module


def modelled_seconds(module):
    return CostModel().estimate_module(module)


def test_case4_openmp_vs_transform_parity(benchmark):
    """Paper: 0.48 s (OpenMP) vs 0.49 s (Transform) — near-identical."""
    openmp = modelled_seconds(openmp_style_schedule())
    scripted = modelled_seconds(benchmark(transform_schedule, False))
    ratio = scripted / openmp
    print(f"\nOpenMP-style: {openmp:.4f} s | Transform: {scripted:.4f} s"
          f" | ratio {ratio:.3f} (paper: 0.48 vs 0.49)")
    assert 0.9 < ratio < 1.1
    benchmark.extra_info["openmp_seconds"] = round(openmp, 5)
    benchmark.extra_info["transform_seconds"] = round(scripted, 5)


def test_case4_microkernel_speedup(benchmark):
    """Paper: 0.017 s with libxsmm — over 20x faster than tiling."""
    tiled = modelled_seconds(transform_schedule(False))
    micro_module = benchmark(transform_schedule, True)
    micro = modelled_seconds(micro_module)
    speedup = tiled / micro
    paper_speedup = PAPER["transform"] / PAPER["microkernel"]
    print(f"\ntiled: {tiled:.4f} s | microkernel: {micro:.4f} s | "
          f"{speedup:.1f}x (paper: 0.49 -> 0.017 s, "
          f"{paper_speedup:.0f}x)")
    assert speedup > 20
    # The replacement really happened (not just modelled).
    calls = [op for op in micro_module.walk()
             if op.name == "func.call" and op.attr("microkernel")]
    assert calls
    benchmark.extra_info["speedup"] = round(speedup, 1)


def test_case4_alternatives_fallback(benchmark):
    """When the library has no kernel, Fig. 8's alternatives leave the
    code unchanged instead of failing the whole compilation."""

    def schedule_with_bad_tile():
        module = build_resnet_layer_module()
        script, builder, root = transform.sequence()
        i_loop = transform.match_op(builder, root, "scf.for",
                                    position="first")
        main, rest = transform.loop_split(builder, i_loop, 32)
        outer, inner = transform.loop_tile(builder, main, [32, 32])
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        # The remainder nest is a 4x256x256 matmul: n=256 exceeds the
        # library's 64-wide kernel table, so the replacement fails
        # silenceably and the empty second region leaves it unchanged.
        transform.to_library(first, rest, "libxsmm")
        transform.yield_(first)
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, module)
        return module, result

    module, result = benchmark.pedantic(schedule_with_bad_tile,
                                        rounds=1, iterations=1)
    assert result.succeeded  # the failure was absorbed
    assert not [
        op for op in module.walk()
        if op.name == "func.call" and op.attr("microkernel")
    ]


def test_case4_schedule_application_time(benchmark):
    """Applying the Fig. 8 script is itself fast (compile-time cost)."""
    benchmark(transform_schedule, True)
