"""Shared benchmark configuration.

Run with ``pytest benchmarks/ --benchmark-only``. Each benchmark prints
the paper-table rows it regenerates (visible with ``-s``; also recorded
in ``extra_info`` in the pytest-benchmark table) and asserts the
qualitative *shape* the paper reports.
"""

import pytest

import repro.core  # noqa: F401
import repro.dialects  # noqa: F401
import repro.passes  # noqa: F401


def pytest_configure(config):
    # Keep benchmark runs short: these compile whole models per round.
    config.option.benchmark_min_rounds = 3
    config.option.benchmark_warmup = False
