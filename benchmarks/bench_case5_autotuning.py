"""Case study 5 (Fig. 9/10/11): Bayesian autotuning of tile sizes.

A parameterized transform script (tile sizes as transform *parameters*,
Fig. 9) over a constrained space (divisibility + vectorization
constraints, Fig. 10), searched with a BaCO-style Bayesian optimizer.
The paper's Fig. 11 shows the speedup evolving to a final 1.68x; we
regenerate the evolution series and assert meaningful convergence.
"""

import pytest

from repro.autotuning import (
    BayesianTuner,
    RandomSearchTuner,
    case_study_5_problem,
    tune_transform_script,
)

PAPER_FINAL_SPEEDUP = 1.68


@pytest.fixture(scope="module")
def problem():
    return case_study_5_problem()


def test_case5_space_structure(problem, benchmark):
    """Fig. 10: constrained tile-size / vectorization space."""
    size = benchmark(problem.space.size)
    print(f"\nsearch space: {size} valid configurations")
    tile1 = next(p for p in problem.space.parameters
                 if p.name == "TILE1")
    assert all(128 % v == 0 for v in tile1.values)
    # VEC=16 pruned by the divisibility constraint (k=104).
    assert not problem.space.is_valid(
        {"TILE1": 8, "TILE2": 8, "VEC": 16}
    )


def test_case5_objective_evaluation(problem, benchmark):
    """One tuning step: apply the parametric script + model runtime."""
    seconds = benchmark(
        problem.objective, {"TILE1": 16, "TILE2": 8, "VEC": 8}
    )
    assert seconds > 0


def test_case5_evolution(problem, benchmark):
    """Fig. 11: the speedup evolution of the Bayesian search."""

    def run():
        return tune_transform_script(
            problem, BayesianTuner(seed=1, n_initial=5), n_trials=25
        )

    result, summary = benchmark.pedantic(run, rounds=1, iterations=1)
    evolution = summary["speedup_evolution"]
    print("\nFig. 11 — speedup evolution (vs first sampled config):")
    print("  " + " ".join(f"{value:.2f}" for value in evolution))
    print(f"final speedup: {summary['final_speedup']:.2f}x "
          f"(paper: {PAPER_FINAL_SPEEDUP}x) | best config: "
          f"{summary['best_config']} | over naive code: "
          f"{summary['speedup_over_naive']:.2f}x")
    # Shape assertions: monotone evolution reaching a real speedup in
    # the paper's ballpark.
    assert all(b >= a - 1e-12 for a, b in zip(evolution, evolution[1:]))
    assert summary["final_speedup"] > 1.3
    assert summary["best_config"]["TILE1"] > 1
    benchmark.extra_info["final_speedup"] = round(
        summary["final_speedup"], 2
    )
    benchmark.extra_info["best_config"] = str(summary["best_config"])


def test_case5_bayesian_beats_or_matches_random(problem, benchmark):
    def run_both():
        _res_b, bayes = tune_transform_script(
            problem, BayesianTuner(seed=0, n_initial=5), n_trials=20
        )
        _res_r, random = tune_transform_script(
            problem, RandomSearchTuner(seed=0), n_trials=20
        )
        return bayes, random

    bayes, random = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nBayesian best {bayes['best_seconds'] * 1e3:.2f} ms vs "
          f"random best {random['best_seconds'] * 1e3:.2f} ms")
    assert bayes["best_seconds"] <= random["best_seconds"] * 1.3
