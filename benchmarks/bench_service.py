"""Compile-service throughput: workers, cache, and warm-path behavior.

A 64-job batch (16 distinct compilations, each submitted 4 times — the
shape of an autotuning sweep re-visiting its best candidates) runs

* strictly sequentially in process (``workers=0``, no cache) — the
  baseline;
* through the pooled engine at 1 / 2 / 4 workers with a cold cache,
  where single-flight deduplication and the content-addressed cache
  collapse the duplicates to 16 executions;
* once more against the already-warm cache, which must complete
  without invoking the interpreter at all;
* once more at 4 workers with tracing + the event log live, recording
  the observability overhead relative to the tracing-disabled run;
* twice through a live ``repro-serve`` daemon on a unix socket: the
  second batch against the warm server performs zero pool spawns and
  zero executions, and sequential warm submits yield the quoted
  warm-submit p50 round-trip latency.

Emits ``BENCH_service.json`` and asserts the PR's acceptance bars:
>= 2.5x throughput at 4 workers vs sequential (also the
tracing-disabled bar: tracer=None adds only branch checks to the hot
path), zero executions on the warm run, and pooled output
byte-identical to sequential.

Run standalone (``python benchmarks/bench_service.py``) or through
pytest (``pytest benchmarks/bench_service.py -s``).
"""

import json
import os
import sys
import textwrap
import time

import repro.core  # noqa: F401 — registers transform ops
import repro.dialects  # noqa: F401 — registers payload ops
from repro.service import (
    CompilationCache,
    CompileEngine,
    CompileJob,
    JobStatus,
)

DISTINCT = 16
REPEATS = 4

SCHEDULE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops) {factor = 16 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


def _payload(index):
    """Four unrollable loops; the trip count (always divisible by the
    unroll factor) makes each payload a distinct compilation — a
    distinct cache key — doing real body-duplication work."""
    funcs = []
    for f in range(4):
        trip = 64 + 16 * index
        funcs.append(textwrap.dedent(f"""
          "func.func"() ({{
            %lb = "arith.constant"() {{value = 0 : index}} : () -> index
            %ub = "arith.constant"() {{value = {trip} : index}} : () -> index
            %st = "arith.constant"() {{value = 1 : index}} : () -> index
            "scf.for"(%lb, %ub, %st) ({{
            ^bb0(%iv: index):
              %a = "arith.constant"() {{value = 1.0 : f32}} : () -> f32
              %b = "arith.constant"() {{value = 2.0 : f32}} : () -> f32
              %c = "arith.addf"(%a, %b) : (f32, f32) -> f32
              %d = "arith.mulf"(%c, %b) : (f32, f32) -> f32
              %e = "arith.addf"(%d, %a) : (f32, f32) -> f32
              "scf.yield"() : () -> ()
            }}) : (index, index, index) -> ()
            "func.return"() : () -> ()
          }}) {{sym_name = "w{index}_f{f}", function_type = () -> ()}} : () -> ()
        """).strip())
    body = "\n".join(funcs)
    return f'"builtin.module"() ({{\n{body}\n}}) : () -> ()'


def _jobs():
    """16 distinct payloads x 4 submissions, interleaved the way a
    sweep would resubmit them (not back-to-back)."""
    payloads = [_payload(i) for i in range(DISTINCT)]
    return [
        CompileJob(payload_text=payloads[i], script_text=SCHEDULE,
                   job_id=f"job-{rep}-{i}")
        for rep in range(REPEATS)
        for i in range(DISTINCT)
    ]


def run_benchmark():
    jobs = _jobs()
    total = len(jobs)
    report = {"batch_jobs": total, "distinct_jobs": DISTINCT,
              "runs": {}}

    # Baseline: one in-process interpreter invocation per job.
    with CompileEngine(workers=0, cache=None, preflight=False) as engine:
        start = time.perf_counter()
        baseline = [engine.run_job(job) for job in jobs]
        elapsed = time.perf_counter() - start
        assert engine.stats.executed == total
    # Clean successes only: a silenceable skip would mean the jobs do
    # no real work and the benchmark measures nothing.
    assert all(r.status is JobStatus.SUCCESS for r in baseline)
    report["runs"]["sequential"] = {
        "seconds": elapsed,
        "jobs_per_second": total / elapsed,
        "executed": total,
    }
    reference = {job.job_id: result.output
                 for job, result in zip(jobs, baseline)}

    warm_cache = None
    for workers in (1, 2, 4):
        # Whole-job and function-tier entries share one LRU: each
        # distinct job stores 1 whole-job entry + 4 per-function
        # entries (the payloads have 4 uniquely named functions), so
        # the cache must hold 5 entries per distinct job or the
        # function-tier puts evict the whole-job entries before the
        # sweep revisits them.
        cache = CompilationCache(capacity=2 * 5 * DISTINCT)
        # Pool startup is engine construction, not steady-state
        # throughput: build the engine outside the timed region.
        with CompileEngine(workers=workers, cache=cache,
                           preflight=False) as engine:
            start = time.perf_counter()
            results = engine.run_batch(jobs)
            elapsed = time.perf_counter() - start
            stats = engine.stats.as_dict()
        assert all(r.ok for r in results)
        for job, result in zip(jobs, results):
            assert result.output == reference[job.job_id], (
                f"pooled output diverged from sequential ({job.job_id})"
            )
        assert stats["executed"] == DISTINCT
        report["runs"][f"pool_{workers}_cold"] = {
            "seconds": elapsed,
            "jobs_per_second": total / elapsed,
            "executed": stats["executed"],
            "cache_hits": stats["cache_hits"],
            "coalesced": stats["coalesced"],
            "speedup_vs_sequential":
                report["runs"]["sequential"]["seconds"] / elapsed,
        }
        if workers == 4:
            warm_cache = cache

    # Fully warm: every job answered from the cache, interpreter idle.
    with CompileEngine(workers=4, cache=warm_cache,
                       preflight=False) as engine:
        start = time.perf_counter()
        results = engine.run_batch(jobs)
        elapsed = time.perf_counter() - start
        stats = engine.stats.as_dict()
    assert all(r.ok and r.cache_hit for r in results)
    assert stats["executed"] == 0, "warm run must not invoke the interpreter"
    report["runs"]["pool_4_warm"] = {
        "seconds": elapsed,
        "jobs_per_second": total / elapsed,
        "executed": 0,
        "cache_hits": stats["cache_hits"],
        "speedup_vs_sequential":
            report["runs"]["sequential"]["seconds"] / elapsed,
    }

    # Tracing overhead: the cold 4-worker run above IS the
    # tracing-disabled measurement (tracer=None costs only branch
    # checks, the same code the PR 7 baseline ran); repeat it with a
    # live tracer + event log and record the delta. The disabled bar
    # is the existing >= 2.5x speedup assertion — if the None-checks
    # regressed the hot path, that bar is what trips.
    from repro.observability import (
        EventLog,
        Tracer,
        validate_chrome_trace,
        validate_events,
    )
    from repro.profiling import Profiler

    tracer = Tracer()
    events = EventLog()
    cache = CompilationCache(capacity=2 * 5 * DISTINCT)
    with CompileEngine(workers=4, cache=cache, preflight=False,
                       profiler=Profiler(), tracer=tracer,
                       events=events) as engine:
        start = time.perf_counter()
        results = engine.run_batch(jobs)
        traced_elapsed = time.perf_counter() - start
    assert all(r.ok for r in results)
    assert not validate_chrome_trace(tracer.export_chrome())
    assert not validate_events(events.records())
    disabled = report["runs"]["pool_4_cold"]["seconds"]
    report["runs"]["pool_4_traced"] = {
        "seconds": traced_elapsed,
        "jobs_per_second": total / traced_elapsed,
        "spans": len(tracer.spans()),
        "events": len(events.records()),
    }
    report["tracing"] = {
        "disabled_seconds": disabled,
        "enabled_seconds": traced_elapsed,
        "enabled_overhead_pct":
            100.0 * (traced_elapsed - disabled) / disabled,
    }

    # Warm-server run: what repro-serve exists for. One daemon keeps
    # the pool and cache alive across batches, so while the first
    # batch through it pays the usual cold cache, the second performs
    # ZERO pool spawns and zero interpreter executions — and a
    # round-trip submit against the warm daemon is cheap enough to
    # quote as a p50 latency.
    import asyncio
    import statistics
    import tempfile

    from repro.service import AsyncServiceClient, CompileServer

    cache = CompilationCache(capacity=2 * 5 * DISTINCT)
    engine = CompileEngine(workers=4, cache=cache, preflight=False)

    async def serve_two_batches():
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
            sock = os.path.join(tmp, "bench.sock")
            async with CompileServer(engine, socket_path=sock,
                                     max_queue=64,
                                     client_quota=len(jobs)):
                client = await AsyncServiceClient.connect(sock)
                try:
                    start = time.perf_counter()
                    first = await asyncio.gather(*(
                        client.submit(job.payload_text,
                                      job.script_text,
                                      job_id=f"cold-{job.job_id}")
                        for job in jobs))
                    cold_elapsed = time.perf_counter() - start
                    after_cold = {
                        "spawns": engine._pool_generation,
                        "restarts": engine.stats.worker_restarts,
                        "executed": engine.stats.executed,
                    }
                    start = time.perf_counter()
                    second = await asyncio.gather(*(
                        client.submit(job.payload_text,
                                      job.script_text,
                                      job_id=f"warm-{job.job_id}")
                        for job in jobs))
                    warm_elapsed = time.perf_counter() - start
                    # Sequential warm submits: per-request round-trip
                    # latency through socket + scheduler + cache.
                    probe = jobs[0]
                    latencies = []
                    for index in range(32):
                        t0 = time.perf_counter()
                        result = await client.submit(
                            probe.payload_text, probe.script_text,
                            job_id=f"probe-{index}")
                        latencies.append(time.perf_counter() - t0)
                        assert result.ok and result.cache_hit
                    return (first, cold_elapsed, after_cold,
                            second, warm_elapsed, latencies)
                finally:
                    await client.close()

    try:
        (first, cold_elapsed, after_cold, second, warm_elapsed,
         latencies) = asyncio.run(serve_two_batches())
        spawns_delta = engine._pool_generation - after_cold["spawns"]
        restarts_delta = (engine.stats.worker_restarts
                          - after_cold["restarts"])
        executed_delta = engine.stats.executed - after_cold["executed"]
    finally:
        engine.shutdown()
    assert all(r.ok for r in first)
    assert all(r.ok and r.cache_hit for r in second)
    # The acceptance bar: the second batch against the live daemon
    # performs zero pool spawns (no new pool generation, no worker
    # restarts) and zero interpreter executions.
    assert spawns_delta == 0, "warm batch must not spawn a pool"
    assert restarts_delta == 0, "warm batch must not restart workers"
    assert executed_delta == 0, "warm batch must be answered warm"
    latencies.sort()
    report["runs"]["server_cold"] = {
        "seconds": cold_elapsed,
        "jobs_per_second": total / cold_elapsed,
        "pool_spawns": after_cold["spawns"],
        "executed": after_cold["executed"],
    }
    report["runs"]["server_warm"] = {
        "seconds": warm_elapsed,
        "jobs_per_second": total / warm_elapsed,
        "pool_spawns": 0,
        "executed": 0,
        "speedup_vs_sequential":
            report["runs"]["sequential"]["seconds"] / warm_elapsed,
    }
    report["warm_server"] = {
        "second_batch_pool_spawns": spawns_delta,
        "second_batch_executed": executed_delta,
        "warm_submit_p50_ms":
            1000.0 * statistics.median(latencies),
        "warm_submit_p90_ms":
            1000.0 * latencies[int(0.9 * (len(latencies) - 1))],
        "probes": len(latencies),
    }

    report["speedup_4_workers"] = \
        report["runs"]["pool_4_cold"]["speedup_vs_sequential"]
    report["output_byte_identical"] = True
    return report


def test_service_throughput():
    report = run_benchmark()
    print(json.dumps(report, indent=2))
    assert report["speedup_4_workers"] >= 2.5
    assert report["runs"]["pool_4_warm"]["executed"] == 0
    assert report["warm_server"]["second_batch_pool_spawns"] == 0
    assert report["warm_server"]["second_batch_executed"] == 0


def main():
    report = run_benchmark()
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_service.json")
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {out}")
    if report["speedup_4_workers"] < 2.5:
        print("FAIL: speedup at 4 workers below 2.5x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
