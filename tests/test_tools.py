"""Tests for the repro-opt tool surface (textual in, textual out)."""

import pytest

from repro.core import dialect as transform
from repro.execution.workloads import build_matmul_module
from repro.ir.printer import print_op
from repro.tools import ToolError, main, pipeline_opt, transform_opt


@pytest.fixture
def payload_text():
    return print_op(build_matmul_module(8, 4, 4))


def script_text(with_error=False):
    script, builder, root = transform.sequence()
    loop = transform.match_op(builder, root, "scf.for",
                              position="first")
    main_part, rest = transform.loop_split(builder, loop, 4)
    transform.loop_tile(builder, main_part, [4])
    transform.loop_unroll(builder, rest, full=True)
    if with_error:
        transform.loop_unroll(builder, rest, full=True)
    transform.yield_(builder)
    return print_op(script)


class TestTransformOpt:
    def test_round_trips_through_text(self, payload_text):
        output = transform_opt(payload_text, script_text())
        assert '"func.call"' not in output
        assert output.count('"scf.for"') == 4  # i0, i1, j, k

    def test_static_check_catches_script_error(self, payload_text):
        with pytest.raises(ToolError, match="verification failed"):
            transform_opt(payload_text, script_text(with_error=True),
                          check=True)

    def test_without_check_error_is_dynamic(self, payload_text):
        from repro.core import TransformInterpreterError

        with pytest.raises(TransformInterpreterError):
            transform_opt(payload_text, script_text(with_error=True))

    def test_check_runs_pipeline_conditions(self, payload_text):
        """A lowering script that leaks non-llvm ops fails --check."""
        from repro.core import pipeline_to_transform_script

        script = pipeline_to_transform_script(["convert-scf-to-cf"])
        with pytest.raises(ToolError, match="pipeline check failed"):
            transform_opt(payload_text, print_op(script), check=True)

    def test_output_reparses(self, payload_text):
        from repro.ir.parser import parse

        output = transform_opt(payload_text, script_text())
        parse(output).verify()

    def test_verify_reports_mlir_style_diagnostics(self, payload_text,
                                                   capsys):
        with pytest.raises(ToolError,
                           match="static verification failed"):
            transform_opt(payload_text, script_text(with_error=True),
                          verify=True)
        err = capsys.readouterr().err
        assert "uses an invalidated handle" in err
        assert "note:" in err


class TestPipelineOpt:
    def test_canonicalize(self, payload_text):
        output = pipeline_opt(payload_text, "canonicalize,cse")
        assert '"scf.for"' in output

    def test_unknown_pass(self, payload_text):
        with pytest.raises(ValueError):
            pipeline_opt(payload_text, "bogus-pass")


class TestCLI:
    def test_main_with_files(self, payload_text, tmp_path, capsys):
        payload_file = tmp_path / "payload.mlir"
        payload_file.write_text(payload_text)
        script_file = tmp_path / "schedule.mlir"
        script_file.write_text(script_text())
        code = main([str(payload_file), "--script", str(script_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert '"builtin.module"' in out

    def test_main_pipeline_mode(self, payload_text, tmp_path, capsys):
        payload_file = tmp_path / "payload.mlir"
        payload_file.write_text(payload_text)
        code = main([str(payload_file), "--pipeline", "canonicalize"])
        assert code == 0

    def test_main_check_failure_exit_code(self, payload_text, tmp_path,
                                          capsys):
        payload_file = tmp_path / "payload.mlir"
        payload_file.write_text(payload_text)
        script_file = tmp_path / "schedule.mlir"
        script_file.write_text(script_text(with_error=True))
        code = main([str(payload_file), "--script", str(script_file),
                     "--check"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_main_verify_failure_exit_code(self, payload_text,
                                           tmp_path, capsys):
        payload_file = tmp_path / "payload.mlir"
        payload_file.write_text(payload_text)
        script_file = tmp_path / "schedule.mlir"
        script_file.write_text(script_text(with_error=True))
        code = main([str(payload_file), "--script", str(script_file),
                     "--verify"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_main_writes_output_file(self, payload_text, tmp_path):
        payload_file = tmp_path / "payload.mlir"
        payload_file.write_text(payload_text)
        script_file = tmp_path / "schedule.mlir"
        script_file.write_text(script_text())
        out_file = tmp_path / "out.mlir"
        code = main([str(payload_file), "--script", str(script_file),
                     "-o", str(out_file)])
        assert code == 0
        assert '"scf.for"' in out_file.read_text()
