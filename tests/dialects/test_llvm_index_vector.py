"""Coverage tests for the llvm, index, vector and builtin dialects."""

import pytest

from repro.dialects import builtin, index as index_dialect, llvm, vector as vector_dialect
from repro.ir import Block, Builder, I64, INDEX, Operation
from repro.ir.core import IsTerminator, Pure, SymbolTrait
from repro.ir.types import LLVMPointerType, memref, vector


@pytest.fixture
def builder():
    return Builder.at_end(Block())


class TestLLVM:
    def test_constant(self, builder):
        value = llvm.constant(builder, 7, I64)
        assert value.type == I64
        assert value.defining_op().attr("value").value == 7

    def test_load_store(self, builder):
        pointer = builder.create(
            "llvm.alloca", result_types=[LLVMPointerType()]
        ).result
        loaded = llvm.load(builder, pointer, I64)
        assert loaded.type == I64
        llvm.store(builder, loaded, pointer)

    def test_getelementptr(self, builder):
        pointer = builder.create(
            "llvm.alloca", result_types=[LLVMPointerType()]
        ).result
        offset = llvm.constant(builder, 4, I64)
        gep = llvm.getelementptr(builder, pointer, [offset])
        assert gep.type == LLVMPointerType()

    def test_call(self, builder):
        value = llvm.constant(builder, 1, I64)
        call = llvm.call(builder, "malloc", [value],
                         [LLVMPointerType()])
        assert call.attr("callee").name == "malloc"

    def test_terminators_are_terminators(self):
        for name in ("llvm.br", "llvm.cond_br", "llvm.return",
                     "llvm.unreachable", "llvm.switch"):
            op = Operation.create(name)
            assert op.has_trait(IsTerminator), name

    def test_value_ops_are_pure(self):
        for name in ("llvm.add", "llvm.fmul", "llvm.icmp",
                     "llvm.getelementptr", "llvm.bitcast"):
            assert Operation.create(name).has_trait(Pure), name

    def test_memory_ops_not_pure(self):
        for name in ("llvm.load", "llvm.store", "llvm.call",
                     "llvm.alloca"):
            assert not Operation.create(name).has_trait(Pure), name

    def test_func_is_symbol(self):
        op = Operation.create("llvm.func",
                              attributes={"sym_name": "f"}, regions=1)
        assert op.has_trait(SymbolTrait)


class TestIndexDialect:
    def test_constant_add_mul(self, builder):
        a = index_dialect.constant(builder, 3)
        b = index_dialect.constant(builder, 4)
        total = index_dialect.add(builder, a, b)
        product = index_dialect.mul(builder, total, a)
        assert total.type == INDEX
        assert product.defining_op().name == "index.mul"

    def test_all_pure(self):
        for short in ("add", "sub", "mul", "divs", "ceildivs"):
            assert Operation.create(f"index.{short}").has_trait(Pure)


class TestVectorDialect:
    def test_load_store_roundtrip_types(self, builder):
        base = builder.create(
            "memref.alloc", result_types=[memref(64)]
        ).result
        zero = index_dialect.constant(builder, 0)
        loaded = vector_dialect.load(builder, vector(8), base, [zero])
        vector_dialect.store(builder, loaded, base, [zero])
        assert loaded.type == vector(8)

    def test_fma_type_propagates(self, builder):
        base = builder.create(
            "memref.alloc", result_types=[memref(64)]
        ).result
        zero = index_dialect.constant(builder, 0)
        v = vector_dialect.load(builder, vector(8), base, [zero])
        assert vector_dialect.fma(builder, v, v, v).type == vector(8)


class TestBuiltin:
    def test_module_factory(self):
        module = builtin.module()
        assert module.name == "builtin.module"
        assert module.body is module.regions[0].entry_block

    def test_module_traits(self):
        from repro.ir.core import (
            IsolatedFromAbove,
            NoTerminator,
            SymbolTableTrait,
        )

        module = builtin.module()
        assert module.has_trait(SymbolTableTrait)
        assert module.has_trait(NoTerminator)
        assert module.has_trait(IsolatedFromAbove)

    def test_unrealized_cast_builder(self, builder):
        value = index_dialect.constant(builder, 1)
        cast = builtin.unrealized_cast(builder, [value], [I64])
        assert cast.name == "builtin.unrealized_conversion_cast"
        assert cast.results[0].type == I64
        assert cast.has_trait(Pure)
