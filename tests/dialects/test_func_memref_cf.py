"""Tests for the func, memref and cf dialects."""

import pytest

from repro.dialects import arith, builtin, cf, func, memref as memref_dialect
from repro.ir import Block, Builder, F32, F64, I32, INDEX, Operation
from repro.ir.types import DYNAMIC, memref


@pytest.fixture
def builder():
    return Builder.at_end(Block())


class TestFunc:
    def test_definition(self):
        f = func.func("f", [I32, F32], [I32])
        assert f.sym_name == "f"
        assert not f.is_declaration
        assert [a.type for a in f.body.args] == [I32, F32]
        assert f.function_type.results == (I32,)

    def test_declaration(self):
        f = func.func("ext", [I32], declaration=True)
        assert f.is_declaration

    def test_signature_verifier(self):
        f = func.func("f", [I32])
        f.body.args[0].type = F32
        with pytest.raises(ValueError, match="signature"):
            f.verify_op()

    def test_call_and_return(self):
        module = builtin.module()
        callee = func.func("callee", [I32], [I32])
        module.body.append(callee)
        b = Builder.at_end(callee.body)
        func.return_(b, [callee.body.args[0]])
        caller = func.func("caller", [I32], [I32])
        module.body.append(caller)
        cb = Builder.at_end(caller.body)
        call = func.call(cb, "callee", [caller.body.args[0]], [I32])
        func.return_(cb, [call.results[0]])
        module.verify()
        assert call.callee == "callee"


class TestMemRef:
    def test_alloc(self, builder):
        ref = memref_dialect.alloc(builder, memref(4, 4))
        assert ref.type == memref(4, 4)

    def test_load_store(self, builder):
        ref = memref_dialect.alloc(builder, memref(4, 4))
        i = arith.index_constant(builder, 0)
        value = memref_dialect.load(builder, ref, [i, i])
        assert value.type == F32
        memref_dialect.store(builder, value, ref, [i, i])

    def test_load_index_count_verified(self, builder):
        ref = memref_dialect.alloc(builder, memref(4, 4))
        i = arith.index_constant(builder, 0)
        bad = Operation.create(
            "memref.load", operands=[ref, i], result_types=[F32]
        )
        with pytest.raises(ValueError, match="indices"):
            bad.verify_op()

    def test_store_index_count_verified(self, builder):
        ref = memref_dialect.alloc(builder, memref(4,))
        i = arith.index_constant(builder, 0)
        value = arith.constant(builder, 0.0, F32)
        bad = Operation.create(
            "memref.store", operands=[value, ref, i, i]
        )
        with pytest.raises(ValueError, match="index count"):
            bad.verify_op()

    def test_subview_static(self, builder):
        ref = memref_dialect.alloc(builder, memref(16, 16))
        view = memref_dialect.subview(
            builder, ref, [0, 0], [4, 4], [1, 1]
        )
        subview_op = view.defining_op()
        assert subview_op.has_trivial_metadata
        assert subview_op.static_sizes == (4, 4)
        assert view.type.shape == (4, 4)
        subview_op.verify_op()

    def test_subview_dynamic_offset(self, builder):
        ref = memref_dialect.alloc(builder, memref(16, 16))
        offset = arith.index_constant(builder, 3)
        view = memref_dialect.subview(
            builder, ref, [offset, 0], [4, 4], [1, 1]
        )
        subview_op = view.defining_op()
        assert not subview_op.has_trivial_metadata
        assert subview_op.static_offsets == (DYNAMIC, 0)
        assert subview_op.dynamic_operands == [offset]
        subview_op.verify_op()

    def test_subview_nonzero_static_offset_not_trivial(self, builder):
        ref = memref_dialect.alloc(builder, memref(16, 16))
        view = memref_dialect.subview(builder, ref, [4, 0], [4, 4], [1, 1])
        assert not view.defining_op().has_trivial_metadata

    def test_subview_operand_attr_consistency(self, builder):
        ref = memref_dialect.alloc(builder, memref(16,))
        from repro.ir.attributes import DenseIntAttr

        bad = Operation.create(
            "memref.subview",
            operands=[ref],
            result_types=[memref(4,)],
            attributes={
                "static_offsets": DenseIntAttr((DYNAMIC,)),
                "static_sizes": DenseIntAttr((4,)),
                "static_strides": DenseIntAttr((1,)),
            },
        )
        with pytest.raises(ValueError, match="dynamic operand count"):
            bad.verify_op()

    def test_dim(self, builder):
        ref = memref_dialect.alloc(builder, memref(4, 4))
        i = arith.index_constant(builder, 0)
        assert memref_dialect.dim(builder, ref, i).type == INDEX


class TestCF:
    def test_br(self):
        holder = Operation.create("test.holder", regions=1)
        entry = holder.regions[0].add_block()
        target = holder.regions[0].add_block(Block([INDEX]))
        b = Builder.at_end(entry)
        value = arith.index_constant(b, 0)
        br = cf.br(b, target, [value])
        assert br.dest is target
        br.verify_op()

    def test_br_arg_mismatch(self):
        holder = Operation.create("test.holder", regions=1)
        entry = holder.regions[0].add_block()
        target = holder.regions[0].add_block(Block([INDEX]))
        b = Builder.at_end(entry)
        bad = b.create("cf.br", successors=[target])
        with pytest.raises(ValueError, match="successor arguments"):
            bad.verify_op()

    def test_cond_br_args_split(self):
        holder = Operation.create("test.holder", regions=1)
        entry = holder.regions[0].add_block()
        then_block = holder.regions[0].add_block(Block([INDEX]))
        else_block = holder.regions[0].add_block(Block([INDEX, INDEX]))
        b = Builder.at_end(entry)
        cond = arith.constant(b, 1, I32)
        x = arith.index_constant(b, 1)
        y = arith.index_constant(b, 2)
        branch = cf.cond_br(b, cond, then_block, else_block,
                            true_args=[x], false_args=[x, y])
        assert branch.true_args == [x]
        assert branch.false_args == [x, y]
        branch.verify_op()
