"""Tests for the arith dialect."""

import pytest

from repro.dialects import arith
from repro.ir import Block, Builder, F64, I1, I32, INDEX, Operation


@pytest.fixture
def builder():
    return Builder.at_end(Block())


class TestConstant:
    def test_int(self, builder):
        value = arith.constant(builder, 5, I32)
        assert value.type == I32
        assert value.defining_op().value == 5

    def test_index(self, builder):
        value = arith.index_constant(builder, 7)
        assert value.type == INDEX

    def test_float_default_type(self, builder):
        value = arith.constant(builder, 1.5)
        assert value.type == F64

    def test_int_value_with_float_type_becomes_float(self, builder):
        value = arith.constant(builder, 1, F64)
        assert value.defining_op().value == 1.0

    def test_verifier_requires_value(self):
        op = Operation.create("arith.constant", result_types=[I32])
        with pytest.raises(ValueError, match="value"):
            op.verify()


class TestBinaryOps:
    def test_addi(self, builder):
        a = arith.constant(builder, 1, I32)
        b = arith.constant(builder, 2, I32)
        result = arith.addi(builder, a, b)
        assert result.type == I32
        assert result.defining_op().name == "arith.addi"

    def test_all_builders_produce_registered_ops(self, builder):
        a = arith.constant(builder, 1.0, F64)
        for fn in (arith.addf, arith.subf, arith.mulf, arith.divf,
                   arith.maximumf, arith.minimumf):
            assert fn(builder, a, a).defining_op().verify_op() is None

    def test_type_mismatch_rejected(self, builder):
        a = arith.constant(builder, 1, I32)
        b = arith.constant(builder, 2.0, F64)
        op = Operation.create("arith.addi", operands=[a, b],
                              result_types=[I32])
        with pytest.raises(ValueError, match="differ"):
            op.verify()

    def test_commutativity_trait(self, builder):
        from repro.ir.core import Commutative

        a = arith.constant(builder, 1, I32)
        assert arith.addi(builder, a, a).defining_op().has_trait(Commutative)
        assert not arith.subi(builder, a, a).defining_op().has_trait(
            Commutative
        )


class TestCmpAndSelect:
    def test_cmpi(self, builder):
        a = arith.index_constant(builder, 1)
        b = arith.index_constant(builder, 2)
        result = arith.cmpi(builder, "slt", a, b)
        assert result.type == I1
        assert result.defining_op().predicate == "slt"

    def test_invalid_predicate(self, builder):
        a = arith.index_constant(builder, 1)
        op = Operation.create(
            "arith.cmpi", operands=[a, a], result_types=[I1],
            attributes={"predicate": "nope"},
        )
        with pytest.raises(ValueError, match="predicate"):
            op.verify()

    def test_select(self, builder):
        cond = arith.constant(builder, 1, I1)
        a = arith.index_constant(builder, 1)
        b = arith.index_constant(builder, 2)
        assert arith.select(builder, cond, a, b).type == INDEX

    def test_index_cast(self, builder):
        a = arith.index_constant(builder, 1)
        assert arith.index_cast(builder, a, I32).type == I32
