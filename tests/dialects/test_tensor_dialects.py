"""Tests for linalg, tosa, stablehlo, tensor, vector, affine dialects."""

import pytest

from repro.dialects import (
    affine as affine_dialect,
    arith,
    linalg,
    stablehlo as hlo,
    tensor as tensor_dialect,
    tosa,
    vector as vector_dialect,
)
from repro.ir import Block, Builder, F32, INDEX, Operation
from repro.ir.affine import AffineMap, dim as affine_dim
from repro.ir.types import memref, tensor, vector


@pytest.fixture
def builder():
    return Builder.at_end(Block())


class TestLinalg:
    def test_generic_structure(self, builder):
        t = tensor(4, 4)
        a = tensor_dialect.empty(builder, t)
        out = tensor_dialect.empty(builder, t)
        generic = linalg.generic(builder, [a], [out],
                                 ["parallel", "parallel"], [t])
        assert generic.n_inputs == 1
        assert generic.inputs == [a]
        assert generic.outputs == [out]
        assert generic.iterator_types == ["parallel", "parallel"]
        assert len(generic.body.args) == 2
        assert generic.body.args[0].type == F32

    def test_generic_verifier_arg_count(self, builder):
        t = tensor(4, 4)
        a = tensor_dialect.empty(builder, t)
        bad = Operation.create(
            "linalg.generic", operands=[a], result_types=[t],
            attributes={"n_inputs": 1, "iterator_types": ["parallel"]},
            regions=1,
        )
        bad.regions[0].add_block(Block())
        with pytest.raises(ValueError, match="scalar argument"):
            bad.verify_op()

    def test_named_ops_split_operands(self, builder):
        t = tensor(4, 4)
        a = tensor_dialect.empty(builder, t)
        b = tensor_dialect.empty(builder, t)
        init = tensor_dialect.empty(builder, t)
        op = linalg.matmul(builder, a, b, init, [t])
        assert op.inputs == [a, b]
        assert op.outputs == [init]

    def test_fill(self, builder):
        t = tensor(4, 4)
        zero = arith.constant(builder, 0.0, F32)
        init = tensor_dialect.empty(builder, t)
        fill = linalg.fill(builder, zero, init, [t])
        assert fill.inputs == [zero]


class TestTosa:
    def test_builder(self, builder):
        t = tensor(2, 2)
        a = tosa.const(builder, t)
        b = tosa.op(builder, "add", [a, a], t)
        assert b.defining_op().name == "tosa.add"

    def test_unknown_op_rejected(self, builder):
        t = tensor(2, 2)
        a = tosa.const(builder, t)
        with pytest.raises(ValueError, match="unknown tosa op"):
            tosa.op(builder, "frobnicate", [a], t)

    def test_all_ops_registered(self):
        from repro.ir.core import OP_REGISTRY

        for short in tosa.ALL_OPS:
            assert f"tosa.{short}" in OP_REGISTRY


class TestStablehlo:
    def test_reduce_builds_combiner_region(self, builder):
        t = tensor(8)
        operand = builder.create(
            "stablehlo.constant", result_types=[t],
            attributes={"value": 0.0},
        ).result
        init = builder.create(
            "stablehlo.constant", result_types=[tensor(1)],
            attributes={"value": 0.0},
        ).result
        result = hlo.reduce(builder, operand, init, [0], tensor(1))
        reduce_op = result.defining_op()
        assert reduce_op.name == "stablehlo.reduce"
        body = reduce_op.regions[0].entry_block
        assert len(body.args) == 2
        assert body.ops[-1].name == "stablehlo.return"

    def test_reduce_kind(self, builder):
        t = tensor(8)
        operand = hlo.op(builder, "abs", [
            hlo.op(builder, "iota", [], t)
        ], t)
        init = hlo.op(builder, "iota", [], tensor(1))
        result = hlo.reduce(builder, operand, init, [0], tensor(1),
                            kind="maximum")
        body = result.defining_op().regions[0].entry_block
        assert body.ops[0].name == "stablehlo.maximum"


class TestVector:
    def test_load_store(self, builder):
        base = builder.create(
            "memref.alloc", result_types=[memref(64)]
        ).result
        i = arith.index_constant(builder, 0)
        v = vector_dialect.load(builder, vector(8), base, [i])
        assert v.type == vector(8)
        vector_dialect.store(builder, v, base, [i])

    def test_fma(self, builder):
        base = builder.create(
            "memref.alloc", result_types=[memref(64)]
        ).result
        i = arith.index_constant(builder, 0)
        v = vector_dialect.load(builder, vector(8), base, [i])
        assert vector_dialect.fma(builder, v, v, v).type == vector(8)


class TestAffineDialect:
    def test_apply(self, builder):
        i = arith.index_constant(builder, 5)
        map_ = AffineMap.from_exprs(1, 0, [affine_dim(0) * 4])
        result = affine_dialect.apply(builder, map_, [i])
        assert result.type == INDEX
        result.defining_op().verify_op()

    def test_apply_requires_single_result_map(self, builder):
        i = arith.index_constant(builder, 5)
        two = AffineMap.from_exprs(1, 0, [affine_dim(0), affine_dim(0)])
        from repro.ir.attributes import AffineMapAttr

        bad = Operation.create(
            "affine.apply", operands=[i], result_types=[INDEX],
            attributes={"map": AffineMapAttr(two)},
        )
        with pytest.raises(ValueError, match="single-result"):
            bad.verify_op()

    def test_operand_arity_check(self, builder):
        map_ = AffineMap.from_exprs(2, 0, [affine_dim(0)])
        from repro.ir.attributes import AffineMapAttr

        bad = Operation.create(
            "affine.min", operands=[], result_types=[INDEX],
            attributes={"map": AffineMapAttr(map_)},
        )
        with pytest.raises(ValueError, match="expected 2 operands"):
            bad.verify_op()

    def test_min_builder(self, builder):
        i = arith.index_constant(builder, 5)
        map_ = AffineMap.from_exprs(1, 0, [affine_dim(0), affine_dim(0) + 1])
        result = affine_dialect.min_(builder, map_, [i])
        assert result.defining_op().name == "affine.min"
