"""Tests for the scf dialect."""

import pytest

from repro.dialects import arith, scf
from repro.ir import Block, Builder, F64, INDEX, Operation


@pytest.fixture
def builder():
    return Builder.at_end(Block())


class TestForOp:
    def test_structure(self, builder):
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 10)
        step = arith.index_constant(builder, 2)
        loop = scf.for_(builder, lb, ub, step)
        assert loop.lower_bound is lb
        assert loop.upper_bound is ub
        assert loop.step is step
        assert loop.induction_var.type == INDEX
        assert loop.iter_args == []

    def test_iter_args(self, builder):
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 4)
        step = arith.index_constant(builder, 1)
        init = arith.constant(builder, 0.0, F64)
        loop = scf.for_(builder, lb, ub, step, [init])
        assert len(loop.results) == 1
        assert loop.results[0].type == F64
        assert len(loop.iter_args) == 1
        assert loop.init_args == [init]

    def test_trip_count(self, builder):
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 10)
        step = arith.index_constant(builder, 3)
        loop = scf.for_(builder, lb, ub, step)
        assert loop.trip_count() == 4  # ceil(10/3)
        assert loop.constant_bounds() == (0, 10, 3)

    def test_trip_count_unknown_for_dynamic_bounds(self, builder):
        block = Block([INDEX])
        inner = Builder.at_end(block)
        lb = arith.index_constant(inner, 0)
        step = arith.index_constant(inner, 1)
        loop = scf.for_(inner, lb, block.args[0], step)
        assert loop.trip_count() is None

    def test_verifier_checks_body_args(self, builder):
        lb = arith.index_constant(builder, 0)
        op = Operation.create("scf.for", operands=[lb, lb, lb], regions=1)
        op.regions[0].add_block(Block())  # missing induction variable
        with pytest.raises(ValueError, match="induction"):
            op.verify_op()

    def test_verifier_checks_result_count(self, builder):
        lb = arith.index_constant(builder, 0)
        op = Operation.create(
            "scf.for", operands=[lb, lb, lb], result_types=[INDEX],
            regions=1,
        )
        op.regions[0].add_block(Block([INDEX]))
        with pytest.raises(ValueError, match="iter_args"):
            op.verify_op()


class TestIfOp:
    def test_then_else(self, builder):
        cond = arith.constant(builder, 1, INDEX)
        if_op = scf.if_(builder, cond, with_else=True)
        assert if_op.then_block is not None
        assert if_op.else_block is not None

    def test_no_else(self, builder):
        cond = arith.constant(builder, 1, INDEX)
        if_op = scf.if_(builder, cond)
        assert if_op.else_block is None


class TestForallOp:
    def test_structure(self, builder):
        c4 = arith.index_constant(builder, 4)
        c8 = arith.index_constant(builder, 8)
        forall = scf.forall(builder, [c4, c8])
        assert forall.rank == 2
        assert len(forall.induction_vars) == 2

    def test_verifier(self, builder):
        c4 = arith.index_constant(builder, 4)
        bad = Operation.create("scf.forall", operands=[c4], regions=1)
        bad.regions[0].add_block(Block())
        with pytest.raises(ValueError, match="induction variable"):
            bad.verify_op()


class TestYield:
    def test_is_terminator(self, builder):
        from repro.ir.core import IsTerminator

        yield_op = scf.yield_(builder)
        assert yield_op.has_trait(IsTerminator)
