"""Tests for the context, symbol tables and diagnostics."""

import pytest

from repro.dialects import builtin, func
from repro.ir import (
    Builder,
    Context,
    Diagnostic,
    DiagnosticEngine,
    DiagnosticError,
    I32,
    Severity,
    SymbolTable,
    lookup_symbol,
    nearest_symbol_table,
)


class TestContext:
    def test_load_dialect(self):
        context = Context()
        context.load_dialect("arith")
        assert "arith" in context.loaded_dialects

    def test_load_twice_is_idempotent(self):
        context = Context()
        context.load_dialect("scf")
        context.load_dialect("scf")
        assert context.loaded_dialects.count("scf") == 1

    def test_unknown_dialect(self):
        with pytest.raises(ValueError):
            Context().load_dialect("nope")

    def test_load_all(self):
        context = Context(load_all=True)
        assert "transform" in context.loaded_dialects


class TestSymbolTable:
    def build(self):
        module = builtin.module()
        f = func.func("alpha", [I32])
        module.body.append(f)
        return module, f

    def test_lookup(self):
        module, f = self.build()
        table = SymbolTable(module)
        assert table.lookup("alpha") is f
        assert table.lookup("beta") is None

    def test_requires_symbol_table_trait(self):
        _module, f = self.build()
        with pytest.raises(ValueError):
            SymbolTable(f)

    def test_insert_renames_on_collision(self):
        module, _f = self.build()
        table = SymbolTable(module)
        duplicate = func.func("alpha", [])
        table.insert(duplicate)
        assert duplicate.sym_name == "alpha_0"
        assert table.lookup("alpha_0") is duplicate

    def test_symbols_dict(self):
        module, _f = self.build()
        SymbolTable(module).insert(func.func("beta", []))
        assert set(SymbolTable(module).symbols()) == {"alpha", "beta"}

    def test_nearest_symbol_table(self):
        module, f = self.build()
        inner_op = Builder.at_end(f.body).create("test.op")
        assert nearest_symbol_table(inner_op) is module

    def test_lookup_symbol_from_nested(self):
        module, f = self.build()
        call = Builder.at_end(f.body).create("test.op")
        assert lookup_symbol(call, "alpha") is f
        assert lookup_symbol(call, "missing") is None


class TestDiagnostics:
    def test_collects(self):
        engine = DiagnosticEngine()
        engine.error("bad")
        engine.warning("meh")
        engine.remark("fyi")
        assert len(engine.errors) == 1
        assert len(engine.warnings) == 1
        assert engine.has_errors()

    def test_strict_raises(self):
        engine = DiagnosticEngine(raise_on_error=True)
        with pytest.raises(DiagnosticError):
            engine.error("boom")

    def test_notes_render(self):
        diagnostic = Diagnostic(Severity.ERROR, "main problem")
        diagnostic.attach_note("more detail")
        rendered = str(diagnostic)
        assert "main problem" in rendered
        assert "note: more detail" in rendered

    def test_clear_and_render(self):
        engine = DiagnosticEngine()
        engine.error("x")
        assert "x" in engine.render()
        engine.clear()
        assert not engine.diagnostics
