"""Tests for attributes and conversion helpers."""

import pytest

from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseIntAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    attr,
    index_attr,
    int_attr,
    unwrap,
)
from repro.ir.types import F64, I32, I64, IndexType


class TestCoercion:
    def test_int(self):
        a = attr(42)
        assert isinstance(a, IntegerAttr)
        assert a.value == 42
        assert a.type == I64

    def test_bool_before_int(self):
        assert isinstance(attr(True), BoolAttr)
        assert isinstance(attr(False), BoolAttr)

    def test_float(self):
        a = attr(2.5)
        assert isinstance(a, FloatAttr)
        assert a.value == 2.5

    def test_str(self):
        assert attr("hello") == StringAttr("hello")

    def test_type(self):
        assert attr(I32) == TypeAttr(I32)

    def test_list(self):
        a = attr([1, 2, 3])
        assert isinstance(a, ArrayAttr)
        assert len(a) == 3
        assert a[0] == IntegerAttr(1)

    def test_dict(self):
        a = attr({"x": 1, "y": "z"})
        assert isinstance(a, DictAttr)
        assert a.as_dict()["x"] == IntegerAttr(1)

    def test_attribute_passthrough(self):
        original = StringAttr("s")
        assert attr(original) is original

    def test_nested_list(self):
        a = attr([[1], [2, 3]])
        assert isinstance(a[0], ArrayAttr)

    def test_unconvertible(self):
        with pytest.raises(TypeError):
            attr(object())


class TestUnwrap:
    def test_scalars(self):
        assert unwrap(IntegerAttr(7)) == 7
        assert unwrap(FloatAttr(1.5, F64)) == 1.5
        assert unwrap(StringAttr("x")) == "x"
        assert unwrap(BoolAttr(True)) is True

    def test_array(self):
        assert unwrap(attr([1, 2])) == [1, 2]

    def test_dense(self):
        assert unwrap(DenseIntAttr((4, 5))) == [4, 5]

    def test_symbol_ref(self):
        assert unwrap(SymbolRefAttr("foo")) == "foo"

    def test_unit(self):
        assert unwrap(UnitAttr()) is True

    def test_dict(self):
        assert unwrap(attr({"a": 1})) == {"a": 1}


class TestConstructors:
    def test_int_attr_width(self):
        assert int_attr(3, 32).type == I32

    def test_index_attr(self):
        assert index_attr(5).type == IndexType()

    def test_dense_iteration(self):
        dense = DenseIntAttr((1, 2, 3))
        assert list(dense) == [1, 2, 3]
        assert len(dense) == 3


class TestPrinting:
    def test_integer(self):
        assert str(IntegerAttr(3, I32)) == "3 : i32"

    def test_symbol_nested(self):
        assert str(SymbolRefAttr("a", ("b",))) == "@a::@b"

    def test_array(self):
        assert str(attr([1])) == "[1 : i64]"

    def test_unit(self):
        assert str(UnitAttr()) == "unit"
