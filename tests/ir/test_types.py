"""Tests for the type system."""

import pytest

from repro.ir.types import (
    DYNAMIC,
    F32,
    F64,
    FunctionType,
    I1,
    I32,
    INDEX,
    IndexType,
    IntegerType,
    LLVMPointerType,
    LLVMStructType,
    MemRefLayout,
    MemRefType,
    NONE,
    OpaqueType,
    TensorType,
    VectorType,
    memref,
    tensor,
    vector,
)


class TestScalarTypes:
    def test_integer_str(self):
        assert str(IntegerType(32)) == "i32"
        assert str(IntegerType(1)) == "i1"

    def test_signed_integer_str(self):
        assert str(IntegerType(8, signed=True)) == "si8"
        assert str(IntegerType(8, signed=False)) == "ui8"

    def test_index_and_float(self):
        assert str(INDEX) == "index"
        assert str(F32) == "f32"
        assert str(NONE) == "none"

    def test_equality_and_hash(self):
        assert IntegerType(32) == I32
        assert hash(IntegerType(32)) == hash(I32)
        assert IntegerType(32) != IntegerType(64)
        assert IntegerType(32) != F32

    def test_singletons_are_equal_to_fresh_instances(self):
        assert IndexType() == INDEX


class TestFunctionType:
    def test_single_result_str(self):
        ft = FunctionType((I32, F32), (I32,))
        assert str(ft) == "(i32, f32) -> i32"

    def test_multi_result_str(self):
        ft = FunctionType((I32,), (I32, F32))
        assert str(ft) == "(i32) -> (i32, f32)"

    def test_empty(self):
        assert str(FunctionType((), ())) == "() -> ()"


class TestShapedTypes:
    def test_tensor_str(self):
        assert str(tensor(4, 4)) == "tensor<4x4xf32>"
        assert str(TensorType((2, DYNAMIC), F64)) == "tensor<2x?xf64>"

    def test_vector_str(self):
        assert str(vector(8)) == "vector<8xf32>"

    def test_rank_and_elements(self):
        t = tensor(3, 5)
        assert t.rank == 2
        assert t.num_elements == 15
        assert t.has_static_shape

    def test_dynamic_shape_has_no_element_count(self):
        t = TensorType((DYNAMIC,), F32)
        assert not t.has_static_shape
        with pytest.raises(ValueError):
            t.num_elements

    def test_rank_zero_tensor(self):
        t = TensorType((), F32)
        assert t.rank == 0
        assert t.num_elements == 1


class TestMemRefType:
    def test_plain_str(self):
        assert str(memref(4, 4)) == "memref<4x4xf32>"

    def test_identity_strides(self):
        assert memref(4, 8).identity_strides() == (8, 1)
        assert memref(2, 3, 4).identity_strides() == (12, 4, 1)

    def test_identity_layout_detection(self):
        assert memref(4, 4).has_identity_layout
        strided = MemRefType((4, 4), F32, MemRefLayout(DYNAMIC, (DYNAMIC, DYNAMIC)))
        assert not strided.has_identity_layout

    def test_explicit_identity_layout(self):
        explicit = MemRefType((4, 8), F32, MemRefLayout(0, (8, 1)))
        assert explicit.has_identity_layout

    def test_strided_layout_str(self):
        layout = MemRefLayout(DYNAMIC, (DYNAMIC, 1))
        assert "strided<[?, 1], offset: ?>" in str(
            MemRefType((4, 4), F32, layout)
        )

    def test_memory_space_str(self):
        assert str(MemRefType((4,), F32, None, 3)) == "memref<4xf32, 3>"


class TestLLVMTypes:
    def test_pointer(self):
        assert str(LLVMPointerType()) == "!llvm.ptr"
        assert str(LLVMPointerType(1)) == "!llvm.ptr<1>"

    def test_struct(self):
        s = LLVMStructType((I32, LLVMPointerType()))
        assert str(s) == "!llvm.struct<(i32, !llvm.ptr)>"

    def test_opaque(self):
        assert str(OpaqueType("foo", "bar")) == "!foo.bar"
