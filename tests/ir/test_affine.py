"""Tests for affine expressions and maps, incl. hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.affine import (
    AffineBinary,
    AffineConstant,
    AffineDim,
    AffineMap,
    AffineSymbol,
    constant,
    dim,
    symbol,
)


class TestSimplification:
    def test_constant_folding_add(self):
        assert constant(2) + constant(3) == constant(5)

    def test_constant_folding_mul(self):
        assert constant(4) * constant(5) == constant(20)

    def test_add_zero(self):
        d0 = dim(0)
        assert d0 + 0 is d0
        assert 0 + d0 is d0

    def test_mul_one(self):
        d0 = dim(0)
        assert d0 * 1 is d0
        assert 1 * d0 is d0

    def test_mul_zero(self):
        assert dim(0) * 0 == constant(0)

    def test_sub_and_neg(self):
        expr = dim(0) - 3
        assert expr.evaluate([10]) == 7
        assert (-dim(0)).evaluate([4]) == -4

    def test_floordiv_by_one(self):
        d0 = dim(0)
        assert d0.floordiv(1) is d0

    def test_constant_floordiv_and_mod(self):
        assert constant(7).floordiv(2) == constant(3)
        assert constant(7) % constant(2) == constant(1)
        assert constant(7).ceildiv(2) == constant(4)


class TestEvaluation:
    def test_dims_and_symbols(self):
        expr = dim(0) * 8 + symbol(0)
        assert expr.evaluate([3], [4]) == 28

    def test_nested(self):
        expr = (dim(0) + dim(1)).floordiv(2)
        assert expr.evaluate([5, 3]) == 4

    def test_mod(self):
        expr = dim(0) % 8
        assert expr.evaluate([19]) == 3


class TestReplace:
    def test_dim_replacement(self):
        expr = dim(0) * 2 + dim(1)
        replaced = expr.replace([constant(3), dim(0)])
        assert replaced.evaluate([5]) == 11

    def test_symbol_replacement(self):
        expr = symbol(0) + 1
        assert expr.replace([], [constant(9)]) == constant(10)


class TestAffineMap:
    def test_identity(self):
        m = AffineMap.identity(3)
        assert m.evaluate([1, 2, 3]) == [1, 2, 3]
        assert m.is_permutation()

    def test_constant_map(self):
        assert AffineMap.constant_map(7).evaluate([]) == [7]

    def test_arity_check(self):
        m = AffineMap.identity(2)
        with pytest.raises(ValueError):
            m.evaluate([1])

    def test_compose(self):
        inner = AffineMap.from_exprs(1, 0, [dim(0) * 2])
        outer = AffineMap.from_exprs(1, 0, [dim(0) + 1])
        composed = outer.compose(inner)
        assert composed.evaluate([5]) == [11]

    def test_compose_arity_mismatch(self):
        two_results = AffineMap.from_exprs(1, 0, [dim(0), dim(0)])
        with pytest.raises(ValueError):
            two_results.compose(two_results)

    def test_permutation_detection(self):
        swap = AffineMap.from_exprs(2, 0, [dim(1), dim(0)])
        assert swap.is_permutation()
        not_perm = AffineMap.from_exprs(2, 0, [dim(0), dim(0)])
        assert not not_perm.is_permutation()

    def test_str(self):
        m = AffineMap.from_exprs(2, 1, [dim(0) * 8 + symbol(0)])
        assert str(m) == "(d0, d1)[s0] -> (((d0 * 8) + s0))"


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

ints = st.integers(min_value=-100, max_value=100)
pos_ints = st.integers(min_value=1, max_value=50)


@st.composite
def affine_exprs(draw, depth=0):
    """Random affine expressions over one dim and one symbol."""
    if depth > 3:
        choice = draw(st.integers(0, 2))
    else:
        choice = draw(st.integers(0, 5))
    if choice == 0:
        return constant(draw(ints))
    if choice == 1:
        return dim(0)
    if choice == 2:
        return symbol(0)
    lhs = draw(affine_exprs(depth=depth + 1))
    rhs = draw(affine_exprs(depth=depth + 1))
    if choice == 3:
        return lhs + rhs
    if choice == 4:
        return lhs * draw(ints)
    return lhs - rhs


@given(affine_exprs(), ints, ints)
def test_simplification_preserves_value(expr, d, s):
    """Operator-level simplifications never change evaluation results."""
    baseline = AffineBinary("add", expr, AffineConstant(0))
    assert expr.evaluate([d], [s]) == baseline.evaluate([d], [s])


@given(affine_exprs(), affine_exprs(), ints, ints)
def test_add_commutes_on_evaluation(a, b, d, s):
    assert (a + b).evaluate([d], [s]) == (b + a).evaluate([d], [s])


@given(affine_exprs(), ints, ints, pos_ints)
def test_floordiv_matches_python(expr, d, s, divisor):
    value = expr.evaluate([d], [s])
    assert expr.floordiv(divisor).evaluate([d], [s]) == value // divisor


@given(ints, ints, ints)
def test_map_replace_equals_compose(a, b, point):
    inner = AffineMap.from_exprs(1, 0, [dim(0) * a + b])
    outer = AffineMap.from_exprs(1, 0, [dim(0) + 1])
    composed = outer.compose(inner)
    assert composed.evaluate([point]) == [
        outer.evaluate(inner.evaluate([point]))[0]
    ]
