"""Tests for builders and (lazy) insertion points."""

from repro.ir import Block, Builder, INDEX, InsertionPoint, Operation, index_attr


def const(value=0):
    return Operation.create(
        "arith.constant", result_types=[INDEX],
        attributes={"value": index_attr(value)},
    )


class TestInsertionPoint:
    def test_at_end(self):
        block = Block()
        ip = InsertionPoint.at_end(block)
        a, b = const(1), const(2)
        ip.insert(a)
        ip.insert(b)
        assert block.ops == [a, b]

    def test_at_start(self):
        block = Block()
        existing = block.append(const(0))
        ip = InsertionPoint.at_start(block)
        a, b = const(1), const(2)
        ip.insert(a)
        ip.insert(b)
        assert block.ops == [a, b, existing]

    def test_before_keeps_order(self):
        block = Block()
        anchor = block.append(const(0))
        ip = InsertionPoint.before(anchor)
        a, b = const(1), const(2)
        ip.insert(a)
        ip.insert(b)
        assert block.ops == [a, b, anchor]

    def test_after_keeps_order(self):
        block = Block()
        anchor = block.append(const(0))
        tail = block.append(const(9))
        ip = InsertionPoint.after(anchor)
        a, b = const(1), const(2)
        ip.insert(a)
        ip.insert(b)
        assert block.ops == [anchor, a, b, tail]

    def test_anchor_gone_appends_at_end(self):
        block = Block()
        anchor = block.append(const(0))
        ip = InsertionPoint.before(anchor)
        block.remove(anchor)
        fresh = const(1)
        ip.insert(fresh)
        assert block.ops == [fresh]


class TestBuilder:
    def test_create_inserts(self):
        block = Block()
        builder = Builder.at_end(block)
        op = builder.create("test.op")
        assert block.ops == [op]

    def test_reposition(self):
        block = Block()
        builder = Builder.at_end(block)
        first = builder.create("test.first")
        builder.set_insertion_point_before(first)
        second = builder.create("test.second")
        assert block.ops == [second, first]

    def test_before_and_after_factories(self):
        block = Block()
        anchor = block.append(const())
        Builder.before(anchor).create("test.before")
        Builder.after(anchor).create("test.after")
        assert [op.name for op in block.ops] == [
            "test.before", "arith.constant", "test.after"
        ]

    def test_clone_at_insertion_point(self):
        block = Block()
        builder = Builder.at_end(block)
        original = const(7)
        copy = builder.clone(original)
        assert copy is not original
        assert copy.attr("value").value == 7
        assert block.ops == [copy]

    def test_builder_without_ip_raises(self):
        import pytest

        with pytest.raises(ValueError):
            Builder().create("test.op")
