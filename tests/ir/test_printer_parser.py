"""Round-trip tests for the textual printer and parser."""

import pytest

from repro.ir import (
    Block,
    Builder,
    F32,
    FunctionType,
    I32,
    INDEX,
    Operation,
    ParseError,
    index_attr,
    parse,
    print_op,
)
from repro.ir.types import memref


def roundtrip(op: Operation) -> None:
    text = print_op(op)
    reparsed = parse(text)
    assert print_op(reparsed) == text


class TestPrinting:
    def test_simple_op(self):
        op = Operation.create(
            "arith.constant", result_types=[I32],
            attributes={"value": 1},
        )
        assert print_op(op) == \
            '%0 = "arith.constant"() {value = 1 : i64} : () -> i32'

    def test_operands_and_results(self):
        a = Operation.create("test.a", result_types=[I32])
        op = Operation.create(
            "arith.addi", operands=[a.result, a.result],
            result_types=[I32],
        )
        assert '"arith.addi"(%1, %1)' in print_op(op)

    def test_multiple_results(self):
        op = Operation.create("test.multi", result_types=[I32, F32])
        text = print_op(op)
        assert text.startswith("%0, %1 = ")
        assert text.endswith("() -> (i32, f32)")

    def test_region_printing(self):
        op = Operation.create("test.region", regions=1)
        block = op.regions[0].add_block(Block([INDEX]))
        block.append(Operation.create("test.inner"))
        text = print_op(op)
        assert "^bb0(%0: index):" in text
        assert '"test.inner"' in text


class TestRoundTrips:
    def test_flat_ops(self):
        holder = Operation.create("test.holder", regions=1)
        block = holder.regions[0].add_block()
        builder = Builder.at_end(block)
        c = builder.create("arith.constant", result_types=[INDEX],
                           attributes={"value": index_attr(3)})
        builder.create("arith.addi", operands=[c.result, c.result],
                       result_types=[INDEX])
        roundtrip(holder)

    def test_nested_regions(self, matmul_module):
        roundtrip(matmul_module)

    def test_attributes_roundtrip(self):
        op = Operation.create(
            "test.attrs",
            attributes={
                "i": 3,
                "s": "hello",
                "b": True,
                "arr": [1, 2],
                "t": I32,
                "f": 2.5,
            },
        )
        roundtrip(op)

    def test_memref_types_roundtrip(self):
        op = Operation.create(
            "test.mem",
            result_types=[memref(4, 8), memref(2, 2, element_type=F32)],
        )
        roundtrip(op)

    def test_function_type_attr_roundtrip(self):
        op = Operation.create(
            "func.func",
            regions=1,
            attributes={
                "sym_name": "f",
                "function_type": FunctionType((I32,), ()),
            },
        )
        op.regions[0].add_block(Block([I32]))
        roundtrip(op)

    def test_successors_roundtrip(self):
        func = Operation.create("test.holder", regions=1)
        entry = func.regions[0].add_block()
        target = func.regions[0].add_block()
        builder = Builder.at_end(entry)
        builder.create("cf.br", successors=[target])
        target.append(Operation.create("test.end"))
        roundtrip(func)

    def test_case_study_payload_roundtrip(self):
        from repro.execution.workloads import build_uneven_loop_module

        roundtrip(build_uneven_loop_module())

    def test_transform_script_roundtrip(self):
        from repro.core import dialect as transform

        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        roundtrip(script)


class TestParseErrors:
    def test_undefined_value(self):
        with pytest.raises(ParseError, match="undefined value"):
            parse('"test.op"(%undefined) : (i32) -> ()')

    def test_operand_count_mismatch(self):
        with pytest.raises(ParseError, match="operand count"):
            parse('"test.op"() : (i32) -> ()')

    def test_trailing_input(self):
        with pytest.raises(ParseError, match="trailing"):
            parse('"test.a"() : () -> ()\n"test.b"() : () -> ()')

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse('"test.op"() : () -> floof')

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse("@@@@")


class TestParseForms:
    def test_strided_memref(self):
        op = parse(
            '%0 = "t.x"() : () -> memref<4x4xf32, strided<[?, 1], offset: ?>>'
        )
        result_type = op.results[0].type
        assert result_type.layout is not None

    def test_dynamic_shape(self):
        op = parse('%0 = "t.x"() : () -> tensor<?x4xf32>')
        assert op.results[0].type.shape[0] == -1

    def test_transform_types(self):
        op = parse('%0 = "t.x"() : () -> !transform.any_op')
        from repro.core.types import AnyOpType

        assert isinstance(op.results[0].type, AnyOpType)

    def test_transform_op_handle_type(self):
        op = parse('%0 = "t.x"() : () -> !transform.op<\"scf.for\">')
        from repro.core.types import OperationHandleType

        assert op.results[0].type == OperationHandleType("scf.for")

    def test_dense_attr(self):
        op = parse(
            '"t.x"() {d = dense<[1, 2]> : i64} : () -> ()'
        )
        assert list(op.attr("d").values) == [1, 2]

    def test_symbol_ref(self):
        op = parse('"t.x"() {callee = @foo} : () -> ()')
        assert op.attr("callee").name == "foo"
