"""Structural digests: the print-identity contract, memoization, and
ancestor-only invalidation (plus the printer id()-reuse regression)."""

import gc
import random
import textwrap

import pytest

import repro.core  # noqa: F401 — registers transform ops
import repro.dialects  # noqa: F401 — registers payload ops
from repro.ir import attributes_digest, op_digest, parse, print_op
from repro.ir.core import DIGEST_STATS
from repro.ir.printer import _NameManager
from repro.testing.fuzz import PayloadFuzzer

MODULE = textwrap.dedent("""
    "builtin.module"() ({
      "func.func"() ({
      ^bb0(%a: i32, %b: i32):
        %0 = "arith.addi"(%a, %b) : (i32, i32) -> i32
        %1 = "arith.muli"(%0, %a) : (i32, i32) -> i32
        "func.return"(%1) : (i32) -> ()
      }) {sym_name = "f0", function_type = (i32, i32) -> i32} : () -> ()
      "func.func"() ({
      ^bb0(%a: i32, %b: i32):
        %0 = "arith.addi"(%a, %b) : (i32, i32) -> i32
        %1 = "arith.muli"(%0, %a) : (i32, i32) -> i32
        "func.return"(%1) : (i32) -> ()
      }) {sym_name = "f0", function_type = (i32, i32) -> i32} : () -> ()
    }) : () -> ()
""").strip()

BRANCHY = textwrap.dedent("""
    "func.func"() ({
    ^bb0(%c: i1, %x: i32):
      "cf.cond_br"(%c)[^bb1, ^bb2] : (i1) -> ()
    ^bb1:
      "cf.br"()[^bb3] : () -> ()
    ^bb2:
      "cf.br"()[^bb3] : () -> ()
    ^bb3:
      "func.return"(%x) : (i32) -> ()
    }) {sym_name = "g", function_type = (i1, i32) -> i32} : () -> ()
""").strip()


def _funcs(module):
    return list(module.regions[0].entry_block.ops)


class TestContract:
    def test_same_text_same_digest(self):
        assert op_digest(parse(MODULE)) == op_digest(parse(MODULE))

    def test_clone_shares_digest_and_print(self):
        module = parse(MODULE)
        clone = module.clone()
        assert op_digest(clone) == op_digest(module)
        assert print_op(clone) == print_op(module)

    def test_identical_sibling_functions_share_digest(self):
        f0, f1 = _funcs(parse(MODULE))
        assert op_digest(f0) == op_digest(f1)
        assert print_op(f0) == print_op(f1)

    def test_attribute_value_changes_digest(self):
        a, b = parse(MODULE), parse(MODULE)
        _funcs(b)[0].set_attr("sym_name", "other")
        assert op_digest(a) != op_digest(b)

    def test_int_vs_bool_attribute_distinct(self):
        a, b = parse(MODULE), parse(MODULE)
        _funcs(a)[0].set_attr("mark", 1)
        _funcs(b)[0].set_attr("mark", True)
        assert op_digest(a) != op_digest(b)

    def test_operand_order_changes_digest(self):
        a, b = parse(MODULE), parse(MODULE)
        mul = _funcs(b)[0].regions[0].entry_block.ops[1]
        mul.set_operands(list(reversed(mul.operands)))
        assert op_digest(a) != op_digest(b)

    def test_which_definition_matters_not_just_types(self):
        # add(%a, %b) vs add(%a, %a): same op name, same types — the
        # digest must encode *which* value each use refers to.
        a, b = parse(MODULE), parse(MODULE)
        add = _funcs(b)[0].regions[0].entry_block.ops[0]
        args = _funcs(b)[0].regions[0].entry_block.args
        add.set_operands([args[0], args[0]])
        assert op_digest(a) != op_digest(b)

    def test_successor_targets_matter(self):
        a = parse(BRANCHY)
        b = parse(BRANCHY)
        blocks = b.regions[0].blocks
        cond = blocks[0].ops[0]
        cond.successors[0], cond.successors[1] = (
            cond.successors[1], cond.successors[0],
        )
        b.invalidate_digest()
        assert op_digest(a) != op_digest(b)
        assert print_op(a) != print_op(b)

    def test_block_order_matters(self):
        a, b = parse(BRANCHY), parse(BRANCHY)
        region = b.regions[0]
        moved = region.blocks[1]
        region.remove_block(moved)
        region.insert_block(2, moved)
        assert op_digest(a) != op_digest(b)

    def test_attributes_digest_is_attrs_only(self):
        a, b = parse(MODULE), parse(MODULE)
        # Deep change: module attrs digest unaffected, op digest is.
        _funcs(b)[0].set_attr("extra", 7)
        assert attributes_digest(a) == attributes_digest(b)
        assert op_digest(a) != op_digest(b)
        b.set_attr("mark", 1)
        assert attributes_digest(a) != attributes_digest(b)


class TestMemoization:
    def test_second_digest_is_a_memo_hit(self):
        module = parse(MODULE)
        op_digest(module)
        hits = DIGEST_STATS.hits
        op_digest(module)
        assert DIGEST_STATS.hits == hits + 1

    def test_mutation_invalidates_ancestors_only(self):
        module = parse(MODULE)
        op_digest(module)
        f0, f1 = _funcs(module)
        add = f0.regions[0].entry_block.ops[0]
        sibling_digest = op_digest(f1)
        add.set_attr("mark", 1)
        # Exactly the ancestor chain is cleared...
        assert add._digest is None
        assert f0._digest is None
        assert module._digest is None
        # ... and nothing else.
        assert f1._digest is not None
        assert add.parent.ops[1]._digest is not None
        assert op_digest(f1) == sibling_digest

    def test_recompute_touches_only_the_dirty_chain(self):
        module = parse(MODULE)
        op_digest(module)
        f0 = _funcs(module)[0]
        add = f0.regions[0].entry_block.ops[0]
        add.set_attr("mark", 2)
        recomputes = DIGEST_STATS.recomputes
        op_digest(module)
        # module + func + the mutated op = 3 recomputes; every other
        # subtree comes out of its memo.
        assert DIGEST_STATS.recomputes - recomputes == 3

    def test_erase_invalidates(self):
        module = parse(MODULE)
        before = op_digest(module)
        f0 = _funcs(module)[0]
        f0.regions[0].entry_block.ops[-1].erase()  # func.return
        assert op_digest(module) != before

    def test_invalidation_counter_advances(self):
        module = parse(MODULE)
        op_digest(module)
        count = DIGEST_STATS.invalidations
        _funcs(module)[0].set_attr("mark", 3)
        assert DIGEST_STATS.invalidations == count + 1

    def test_never_hashed_ir_mutation_is_cheap(self):
        module = parse(MODULE)
        count = DIGEST_STATS.invalidations
        _funcs(module)[0].set_attr("mark", 4)
        # No digest was ever computed: nothing to clear, not counted.
        assert DIGEST_STATS.invalidations == count

    def test_rewriter_catch_all_invalidates(self):
        from repro.rewrite.pattern import PatternRewriter

        module = parse(MODULE)
        before = op_digest(module)
        f0 = _funcs(module)[0]
        rewriter = PatternRewriter()
        # A raw attribute-dict write bypasses every core hook;
        # modify_op_in_place is the contract for exactly this case.
        rewriter.modify_op_in_place(
            f0, lambda: f0.attributes.update(
                {"mark": f0.attributes["sym_name"]}
            )
        )
        assert op_digest(module) != before


class TestFuzzCorpusProperty:
    """The contract over the fuzz corpus, both directions: equal
    digests => byte-identical prints, and a single-op mutation changes
    the ancestor digests and only those."""

    SEEDS = range(12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_equal_digest_implies_identical_print(self, seed):
        module = PayloadFuzzer(random.Random(seed)).module()
        regenerated = PayloadFuzzer(random.Random(seed)).module()
        assert op_digest(module) == op_digest(regenerated)
        assert print_op(module) == print_op(regenerated)
        # Within one module: group every op by digest; any two ops
        # sharing a digest must print byte-identically.
        groups = {}
        for op in module.walk():
            groups.setdefault(op_digest(op), set()).add(print_op(op))
        for prints in groups.values():
            assert len(prints) == 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mutation_changes_exactly_the_ancestor_chain(self, seed):
        rng = random.Random(seed ^ 0x5EED)
        module = PayloadFuzzer(rng).module()
        ops = list(module.walk())
        before = {id(op): op_digest(op) for op in ops}
        victim = rng.choice(ops)
        victim.set_attr("fuzz_mark", rng.randint(0, 1 << 30))
        chain = {id(victim)}
        node = victim.parent_op
        while node is not None:
            chain.add(id(node))
            node = node.parent_op
        for op in ops:
            if id(op) in chain:
                assert op_digest(op) != before[id(op)]
            else:
                assert op_digest(op) == before[id(op)]


class TestPrinterNameTables:
    """Regression for the id()-reuse class: the printer's name tables
    must hold the Value/Block objects (strong references), never bare
    ``id()`` integers that a dead object's successor can inherit."""

    def test_names_survive_value_death(self):
        manager = _NameManager()
        module = parse(MODULE)
        block = _funcs(module)[0].regions[0].entry_block
        mul = block.ops[1]
        first = manager.name_value(mul.results[0])
        # Kill the op (and our handles to it), then allocate a burst
        # of fresh values: with id()-keyed tables one of them can
        # inherit the dead result's integer and alias its name.
        block.ops[-1].erase()  # func.return, mul's only user
        mul.erase()
        del mul, block
        gc.collect()
        fresh = parse(MODULE)
        names = {first}
        count = 1
        for op in fresh.walk():
            for result in op.results:
                names.add(manager.name_value(result))
                count += 1
        assert len(names) == count

    def test_print_after_erase_and_allocate_roundtrips(self):
        module = parse(MODULE)
        print_op(module)
        f0 = _funcs(module)[0]
        f0.regions[0].entry_block.ops[-1].erase()
        gc.collect()
        replacement = parse(MODULE)
        text = print_op(module)
        assert print_op(parse(text)) == text
        assert print_op(parse(print_op(replacement))) == \
            print_op(replacement)
