"""Tests for the core IR objects: values, operations, blocks, regions."""

import pytest

from repro.ir import (
    Block,
    Builder,
    F32,
    I32,
    INDEX,
    IsTerminator,
    Operation,
    Pure,
    Region,
    index_attr,
)
from repro.ir.core import OP_REGISTRY, register_op


def make_const(value=0):
    return Operation.create(
        "arith.constant", result_types=[INDEX],
        attributes={"value": index_attr(value)},
    )


class TestOperationBasics:
    def test_create_unregistered(self):
        op = Operation.create("test.unknown", result_types=[I32])
        assert type(op) is Operation
        assert op.name == "test.unknown"

    def test_create_registered_dispatches_class(self):
        op = make_const()
        assert type(op).__name__ == "ConstantOp"
        assert op.value == 0

    def test_result_accessor(self):
        op = make_const()
        assert op.result is op.results[0]

    def test_result_accessor_requires_single(self):
        op = Operation.create("test.multi", result_types=[I32, I32])
        with pytest.raises(ValueError):
            op.result

    def test_attributes(self):
        op = Operation.create("test.op", attributes={"flag": True})
        assert op.attr("flag").value is True
        op.set_attr("n", 3)
        assert op.attr("n").value == 3
        op.remove_attr("n")
        assert op.attr("n") is None

    def test_has_trait(self):
        const = make_const()
        assert const.has_trait(Pure)
        assert not const.has_trait(IsTerminator)


class TestUseDefChains:
    def test_uses_tracked(self):
        const = make_const()
        user = Operation.create("test.use", operands=[const.result])
        assert const.result.has_uses()
        assert const.result.users == [user]

    def test_replace_all_uses(self):
        a, b = make_const(1), make_const(2)
        user = Operation.create("test.use", operands=[a.result, a.result])
        a.result.replace_all_uses_with(b.result)
        assert user.operands == [b.result, b.result]
        assert not a.result.has_uses()
        assert len(b.result.uses) == 2

    def test_set_operand(self):
        a, b = make_const(1), make_const(2)
        user = Operation.create("test.use", operands=[a.result])
        user.set_operand(0, b.result)
        assert not a.result.has_uses()
        assert user.operand(0) is b.result

    def test_set_operands_replaces_list(self):
        a, b, c = make_const(1), make_const(2), make_const(3)
        user = Operation.create("test.use", operands=[a.result])
        user.set_operands([b.result, c.result])
        assert not a.result.has_uses()
        assert user.num_operands == 2

    def test_replace_uses_where(self):
        a, b = make_const(1), make_const(2)
        first = Operation.create("test.one", operands=[a.result])
        second = Operation.create("test.two", operands=[a.result])
        a.result.replace_uses_where(
            b.result, lambda use: use.owner is first
        )
        assert first.operand(0) is b.result
        assert second.operand(0) is a.result

    def test_has_one_use(self):
        a = make_const()
        Operation.create("test.use", operands=[a.result])
        assert a.result.has_one_use()


class TestErase:
    def test_erase_refuses_with_uses(self):
        a = make_const()
        block = Block()
        block.append(a)
        Operation.create("test.use", operands=[a.result])
        with pytest.raises(ValueError):
            a.erase()

    def test_erase_drops_operand_uses(self):
        a = make_const()
        block = Block()
        block.append(a)
        user = block.append(Operation.create("test.use",
                                             operands=[a.result]))
        user.erase()
        assert not a.result.has_uses()
        assert len(block.ops) == 1

    def test_erase_nested_drops_references(self):
        a = make_const()
        block = Block()
        block.append(a)
        outer = block.append(Operation.create("test.region", regions=1))
        inner_block = outer.regions[0].add_block()
        inner_block.append(
            Operation.create("test.use", operands=[a.result])
        )
        outer.erase()
        assert not a.result.has_uses()


class TestClone:
    def test_clone_remaps_operands(self):
        a, b = make_const(1), make_const(2)
        user = Operation.create("test.use", operands=[a.result])
        clone = user.clone({a.result: b.result})
        assert clone.operand(0) is b.result
        assert clone is not user

    def test_clone_regions_and_block_args(self):
        outer = Operation.create("test.loop", regions=1)
        body = outer.regions[0].add_block(Block([INDEX]))
        inner = body.append(
            Operation.create("test.use", operands=[body.args[0]])
        )
        clone = outer.clone()
        new_body = clone.regions[0].entry_block
        assert len(new_body.args) == 1
        assert new_body.ops[0].operand(0) is new_body.args[0]
        assert new_body.ops[0] is not inner

    def test_clone_extends_value_map_with_results(self):
        a = make_const()
        value_map = {}
        clone = a.clone(value_map)
        assert value_map[a.result] is clone.result


class TestStructure:
    def build_nested(self):
        outer = Operation.create("test.outer", regions=1)
        block = outer.regions[0].add_block()
        inner = block.append(Operation.create("test.inner"))
        return outer, block, inner

    def test_parent_op(self):
        outer, _block, inner = self.build_nested()
        assert inner.parent_op is outer
        assert outer.parent_op is None

    def test_ancestors(self):
        outer, _block, inner = self.build_nested()
        assert list(inner.ancestors()) == [outer]

    def test_is_ancestor_of(self):
        outer, _block, inner = self.build_nested()
        assert outer.is_ancestor_of(inner)
        assert outer.is_ancestor_of(outer)
        assert not inner.is_ancestor_of(outer)

    def test_is_before_in_block(self):
        block = Block()
        a = block.append(make_const(1))
        b = block.append(make_const(2))
        assert a.is_before_in_block(b)
        assert not b.is_before_in_block(a)

    def test_move_before_after(self):
        block = Block()
        a = block.append(make_const(1))
        b = block.append(make_const(2))
        b.move_before(a)
        assert block.ops == [b, a]
        b.move_after(a)
        assert block.ops == [a, b]

    def test_walk_preorder(self):
        outer, _block, inner = self.build_nested()
        assert [op.name for op in outer.walk()] == [
            "test.outer", "test.inner"
        ]

    def test_walk_reverse(self):
        block = Block()
        block.append(make_const(1))
        block.append(make_const(2))
        holder = Operation.create("test.holder", regions=1)
        holder.regions[0].add_block(block)
        names = [
            op.attr("value").value
            for op in holder.walk(reverse=True)
            if op.name == "arith.constant"
        ]
        assert names == [2, 1]


class TestBlock:
    def test_add_and_erase_arg(self):
        block = Block([INDEX])
        arg = block.add_arg(F32)
        assert arg.index == 1
        block.erase_arg(0)
        assert block.args[0] is arg
        assert arg.index == 0

    def test_erase_arg_with_uses_fails(self):
        block = Block([INDEX])
        Operation.create("test.use", operands=[block.args[0]])
        with pytest.raises(ValueError):
            block.erase_arg(0)

    def test_insert_before_after(self):
        block = Block()
        a = block.append(make_const(1))
        b = make_const(2)
        block.insert_before(a, b)
        assert block.ops == [b, a]
        c = make_const(3)
        block.insert_after(b, c)
        assert block.ops == [b, c, a]

    def test_append_reparents(self):
        block_a, block_b = Block(), Block()
        op = block_a.append(make_const())
        block_b.append(op)
        assert op.parent is block_b
        assert not block_a.ops

    def test_terminator(self):
        block = Block()
        assert block.terminator is None
        block.append(Operation.create("func.return"))
        assert block.terminator is not None


class TestRegion:
    def test_entry_block(self):
        region = Region()
        with pytest.raises(ValueError):
            region.entry_block
        block = region.add_block()
        assert region.entry_block is block

    def test_is_empty(self):
        region = Region()
        assert region.is_empty
        block = region.add_block()
        assert region.is_empty
        block.append(make_const())
        assert not region.is_empty

    def test_clone_into_remaps_successors(self):
        holder = Operation.create("test.holder", regions=1)
        region = holder.regions[0]
        entry = region.add_block()
        target = region.add_block()
        entry.append(
            Operation.create("cf.br", successors=[target])
        )
        new_holder = Operation.create("test.holder", regions=1)
        region.clone_into(new_holder.regions[0], {})
        new_entry = new_holder.regions[0].blocks[0]
        new_target = new_holder.regions[0].blocks[1]
        assert new_entry.ops[0].successors == [new_target]


class TestVerifier:
    def test_terminator_must_be_last(self):
        block = Block()
        holder = Operation.create("test.holder", regions=1)
        holder.regions[0].add_block(block)
        block.append(Operation.create("func.return"))
        block.append(make_const())
        with pytest.raises(ValueError, match="not last in block"):
            holder.verify()

    def test_registered_verifier_runs(self):
        bad = Operation.create("arith.addi", result_types=[I32])
        with pytest.raises(ValueError, match="two operands"):
            bad.verify()

    def test_registry_contains_core_dialects(self):
        for name in ("scf.for", "func.func", "memref.load",
                     "transform.sequence"):
            assert name in OP_REGISTRY
