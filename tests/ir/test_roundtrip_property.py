"""Property-based printer/parser round-trip on randomized IR."""

from hypothesis import given, settings, strategies as st

from repro.ir import (
    Block,
    Builder,
    F32,
    F64,
    I1,
    I32,
    I64,
    INDEX,
    Operation,
    parse,
    print_op,
)
from repro.ir.types import memref, tensor, vector

SCALARS = [I1, I32, I64, F32, F64, INDEX]
SHAPED = [memref(4, 4), tensor(2, 8), vector(8), memref(16)]

types = st.sampled_from(SCALARS + SHAPED)
attr_values = st.one_of(
    st.integers(-1000, 1000),
    st.booleans(),
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_0123456789", min_size=1,
        max_size=12,
    ),
    st.lists(st.integers(-5, 5), max_size=4),
)
attr_names = st.sampled_from(
    ["value", "flag", "count", "label", "sizes", "mode"]
)
op_names = st.sampled_from(
    ["test.alpha", "test.beta", "test.gamma", "custom.thing"]
)


@st.composite
def random_flat_module(draw):
    """A module holding a random DAG of unregistered ops."""
    module = Operation.create("builtin.module", regions=1)
    block = module.regions[0].add_block()
    builder = Builder.at_end(block)
    available = []
    for _ in range(draw(st.integers(1, 10))):
        n_operands = draw(st.integers(0, min(2, len(available))))
        operands = [
            draw(st.sampled_from(available)) for _ in range(n_operands)
        ] if available else []
        n_results = draw(st.integers(0, 2))
        result_types = [draw(types) for _ in range(n_results)]
        attributes = {
            draw(attr_names): draw(attr_values)
            for _ in range(draw(st.integers(0, 2)))
        }
        op = builder.create(
            draw(op_names),
            operands=operands,
            result_types=result_types,
            attributes=attributes or None,
        )
        available.extend(op.results)
    return module


@settings(max_examples=60, deadline=None)
@given(random_flat_module())
def test_flat_roundtrip(module):
    text = print_op(module)
    assert print_op(parse(text)) == text


@st.composite
def random_nested_module(draw, depth=0):
    module = Operation.create("builtin.module", regions=1)
    block = module.regions[0].add_block()
    _fill_block(draw, block, depth=0)
    return module


def _fill_block(draw, block, depth):
    builder = Builder.at_end(block)
    available = list(block.args)
    for _ in range(draw(st.integers(1, 5))):
        with_region = depth < 2 and draw(st.booleans())
        operands = (
            [draw(st.sampled_from(available))]
            if available and draw(st.booleans())
            else []
        )
        op = builder.create(
            draw(op_names),
            operands=operands,
            result_types=[draw(types)] if draw(st.booleans()) else [],
            regions=1 if with_region else 0,
        )
        if with_region:
            n_args = draw(st.integers(0, 2))
            inner = op.regions[0].add_block(
                Block([draw(types) for _ in range(n_args)])
            )
            _fill_block(draw, inner, depth + 1)
        available.extend(op.results)


@settings(max_examples=40, deadline=None)
@given(random_nested_module())
def test_nested_roundtrip(module):
    text = print_op(module)
    assert print_op(parse(text)) == text


@settings(max_examples=25, deadline=None)
@given(random_nested_module())
def test_clone_print_equivalence(module):
    """Cloning is a semantic no-op: identical textual form."""
    assert print_op(module.clone()) == print_op(module)


@settings(max_examples=25, deadline=None)
@given(random_flat_module())
def test_reparse_is_idempotent(module):
    once = print_op(parse(print_op(module)))
    twice = print_op(parse(once))
    assert once == twice


# ---------------------------------------------------------------------------
# The compile service ships IR between processes as text; these cases
# pin the transport contract on realistic payloads and on the float
# attribute corners the textual form has historically mangled.
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_fuzz_payload_roundtrip(seed):
    """Fuzzer-generated payload modules survive print -> parse -> print
    byte-identically (the service's process-boundary invariant)."""
    import random

    from repro.testing.fuzz import PayloadFuzzer

    module = PayloadFuzzer(random.Random(seed)).module()
    text = print_op(module)
    reparsed = parse(text)
    reparsed.verify()
    assert print_op(reparsed) == text


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_transformed_fuzz_payload_roundtrip(seed):
    """Round-trip stability also holds after transformation — the
    direction results travel back from workers."""
    import random

    from repro.passes.manager import parse_pipeline
    from repro.testing.fuzz import PayloadFuzzer

    module = PayloadFuzzer(random.Random(seed)).module()
    parse_pipeline("canonicalize").run(module)
    text = print_op(module)
    assert print_op(parse(text)) == text


def _attr_module(**attributes):
    module = Operation.create("builtin.module", regions=1)
    block = module.regions[0].add_block()
    Builder.at_end(block).create("test.attrs", attributes=attributes)
    return module


special_floats = st.sampled_from([
    float("inf"), float("-inf"), 1e-30, 1e30, -2.5e-7, 0.0, -0.0, 123.456,
])


@settings(max_examples=40, deadline=None)
@given(special_floats)
def test_special_float_attr_roundtrip(value):
    text = print_op(_attr_module(value=value))
    assert print_op(parse(text)) == text


def test_nan_attr_roundtrip():
    # NaN compares unequal to itself, so byte-compare the prints.
    text = print_op(_attr_module(value=float("nan")))
    assert print_op(parse(text)) == text


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.one_of(
        st.floats(allow_nan=False, allow_infinity=False,
                  width=32).map(float),
        st.sampled_from([float("inf"), float("-inf"), 1e-30]),
    ),
    min_size=1, max_size=6,
))
def test_dense_float_attr_roundtrip(values):
    from repro.ir.attributes import DenseFloatAttr
    from repro.ir.types import vector

    attr = DenseFloatAttr(values, vector(len(values)))
    text = print_op(_attr_module(value=attr))
    assert print_op(parse(text)) == text


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(-2**31, 2**31 - 1), min_size=1, max_size=6))
def test_dense_int_attr_roundtrip(values):
    from repro.ir.attributes import DenseIntAttr
    from repro.ir.types import vector

    attr = DenseIntAttr(values, vector(len(values), element_type=I64))
    text = print_op(_attr_module(value=attr))
    assert print_op(parse(text)) == text
