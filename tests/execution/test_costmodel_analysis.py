"""Tests for the cost model's IR analysis helpers (stride/coefficient)."""

import pytest

from repro.dialects import arith, builtin, func, memref as md, scf
from repro.execution.costmodel import (
    CostModel,
    MachineSpec,
    _coefficient,
    _strides_per_loop,
    _LoopInfo,
)
from repro.ir import Builder, INDEX
from repro.ir.types import memref


def loop_with_body(extra_args=()):
    module = builtin.module()
    f = func.func("f", [memref(64, 64), *extra_args])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    lb = arith.index_constant(builder, 0)
    ub = arith.index_constant(builder, 16)
    step = arith.index_constant(builder, 1)
    loop = scf.for_(builder, lb, ub, step)
    return module, f, loop, Builder.at_end(loop.body)


class TestCoefficient:
    def test_direct_iv(self):
        _m, _f, loop, _b = loop_with_body()
        iv = loop.induction_var
        assert _coefficient(iv, iv) == 1

    def test_independent_value(self):
        _m, f, loop, body = loop_with_body((INDEX,))
        other = f.body.args[1]
        assert _coefficient(other, loop.induction_var) == 0

    def test_addition(self):
        _m, f, loop, body = loop_with_body((INDEX,))
        iv = loop.induction_var
        summed = arith.addi(body, iv, f.body.args[1])
        assert _coefficient(summed, iv) == 1

    def test_scaled(self):
        _m, _f, loop, body = loop_with_body()
        iv = loop.induction_var
        eight = arith.index_constant(body, 8)
        scaled = arith.muli(body, iv, eight)
        assert _coefficient(scaled, iv) == 8

    def test_scaled_then_shifted(self):
        _m, _f, loop, body = loop_with_body()
        iv = loop.induction_var
        four = arith.index_constant(body, 4)
        one = arith.index_constant(body, 1)
        expr = arith.addi(body, arith.muli(body, iv, four), one)
        assert _coefficient(expr, iv) == 4

    def test_nonaffine_is_unknown(self):
        _m, _f, loop, body = loop_with_body()
        iv = loop.induction_var
        squared = arith.muli(body, iv, iv)
        assert _coefficient(squared, iv) is None

    def test_subtraction(self):
        _m, _f, loop, body = loop_with_body()
        iv = loop.induction_var
        doubled = arith.addi(body, iv, iv)
        diff = arith.subi(body, doubled, iv)
        assert _coefficient(diff, iv) == 1


class TestStrides:
    def test_row_and_column_strides(self):
        module, f, loop, body = loop_with_body()
        iv = loop.induction_var
        zero = arith.index_constant(body, 0)
        row_access = md.load(body, f.body.args[0], [iv, zero])
        col_access = md.load(body, f.body.args[0], [zero, iv])
        info = _LoopInfo(loop, 16)
        row_strides = _strides_per_loop(
            row_access.defining_op(), f.body.args[0],
            [iv, zero], [info],
        )
        col_strides = _strides_per_loop(
            col_access.defining_op(), f.body.args[0],
            [zero, iv], [info],
        )
        assert row_strides[id(loop)] == 64  # row-major leading dim
        assert col_strides[id(loop)] == 1

    def test_step_scales_stride(self):
        module = builtin.module()
        f = func.func("f", [memref(64, 64)])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 16)
        step = arith.index_constant(builder, 4)
        loop = scf.for_(builder, lb, ub, step)
        body = Builder.at_end(loop.body)
        zero = arith.index_constant(body, 0)
        access = md.load(body, f.body.args[0],
                         [zero, loop.induction_var])
        strides = _strides_per_loop(
            access.defining_op(), f.body.args[0],
            [zero, loop.induction_var], [_LoopInfo(loop, 4)],
        )
        assert strides[id(loop)] == 4  # unit column stride x step 4

    def test_invariant_access_stride_zero(self):
        module, f, loop, body = loop_with_body()
        zero = arith.index_constant(body, 0)
        access = md.load(body, f.body.args[0], [zero, zero])
        strides = _strides_per_loop(
            access.defining_op(), f.body.args[0], [zero, zero],
            [_LoopInfo(loop, 16)],
        )
        assert strides[id(loop)] == 0


class TestVectorEfficiency:
    def test_effective_width_interpolates(self):
        model = CostModel(MachineSpec(vector_efficiency=0.5))
        assert model._effective_width(1) == 1.0
        assert model._effective_width(8) == 4.5

    def test_full_efficiency(self):
        model = CostModel(MachineSpec(vector_efficiency=1.0))
        assert model._effective_width(8) == 8.0

    def test_zero_efficiency_means_no_speedup(self):
        model = CostModel(MachineSpec(vector_efficiency=0.0))
        assert model._effective_width(16) == 1.0
