"""Tests for the payload reference interpreter."""

import numpy as np
import pytest

from repro.dialects import arith, builtin, cf, func, memref as md, scf
from repro.execution.interpreter import (
    ExecutionError,
    PayloadInterpreter,
    run_function,
)
from repro.execution.workloads import (
    build_batch_matmul_module,
    build_matmul_module,
    reference_matmul,
)
from repro.ir import Block, Builder, F64, I1, I32, INDEX
from repro.ir.types import memref


def simple_func(arg_types=(), result_types=()):
    module = builtin.module()
    f = func.func("f", list(arg_types), list(result_types))
    module.body.append(f)
    return module, f, Builder.at_end(f.body)


class TestScalars:
    def test_arith(self):
        module, f, b = simple_func(result_types=[I32])
        two = arith.constant(b, 2, I32)
        three = arith.constant(b, 3, I32)
        total = arith.addi(b, two, three)
        product = arith.muli(b, total, total)
        func.return_(b, [product])
        assert run_function(module, "f") == [25]

    def test_cmp_select(self):
        module, f, b = simple_func(result_types=[I32])
        two = arith.constant(b, 2, I32)
        three = arith.constant(b, 3, I32)
        less = arith.cmpi(b, "slt", two, three)
        chosen = arith.select(b, less, two, three)
        func.return_(b, [chosen])
        assert run_function(module, "f") == [2]

    def test_float_ops(self):
        module, f, b = simple_func(result_types=[F64])
        x = arith.constant(b, 7.0, F64)
        y = arith.constant(b, 2.0, F64)
        func.return_(b, [arith.divf(b, x, y)])
        assert run_function(module, "f") == [3.5]


class TestControlFlow:
    def test_loop_with_iter_args(self):
        module, f, b = simple_func(result_types=[F64])
        lb = arith.index_constant(b, 0)
        ub = arith.index_constant(b, 5)
        step = arith.index_constant(b, 1)
        init = arith.constant(b, 0.0, F64)
        one = arith.constant(b, 1.0, F64)
        loop = scf.for_(b, lb, ub, step, [init])
        body = Builder.at_end(loop.body)
        updated = arith.addf(body, loop.iter_args[0], one)
        scf.yield_(body, [updated])
        func.return_(b, [loop.results[0]])
        assert run_function(module, "f") == [5.0]

    def test_if_else(self):
        module, f, b = simple_func([I1], [INDEX])
        if_op = scf.if_(b, f.body.args[0], [INDEX], with_else=True)
        tb = Builder.at_end(if_op.then_block)
        scf.yield_(tb, [arith.index_constant(tb, 1)])
        eb = Builder.at_end(if_op.else_block)
        scf.yield_(eb, [arith.index_constant(eb, 2)])
        func.return_(b, [if_op.results[0]])
        assert run_function(module, "f", True) == [1]
        assert run_function(module, "f", False) == [2]

    def test_cfg_branches(self):
        module, f, b = simple_func([I1], [INDEX])
        then_block = Block()
        else_block = Block()
        merge = Block([INDEX])
        f.regions[0].add_block(then_block)
        f.regions[0].add_block(else_block)
        f.regions[0].add_block(merge)
        cf.cond_br(b, f.body.args[0], then_block, else_block)
        tb = Builder.at_end(then_block)
        cf.br(tb, merge, [arith.index_constant(tb, 10)])
        eb = Builder.at_end(else_block)
        cf.br(eb, merge, [arith.index_constant(eb, 20)])
        func.return_(Builder.at_end(merge), [merge.args[0]])
        assert run_function(module, "f", True) == [10]
        assert run_function(module, "f", False) == [20]

    def test_forall(self):
        module, f, b = simple_func([memref(3, 3, element_type=F64)])
        c3 = arith.index_constant(b, 3)
        forall = scf.forall(b, [c3, c3])
        body = Builder.at_end(forall.body)
        one = arith.constant(body, 1.0, F64)
        md.store(body, one, f.body.args[0], forall.induction_vars)
        scf.yield_(body)
        func.return_(b)
        buffer = np.zeros((3, 3))
        run_function(module, "f", buffer)
        assert (buffer == 1.0).all()


class TestMemory:
    def test_alloc_load_store(self):
        module, f, b = simple_func(result_types=[F64])
        buffer = md.alloc(b, memref(4, element_type=F64))
        i = arith.index_constant(b, 2)
        value = arith.constant(b, 9.0, F64)
        md.store(b, value, buffer, [i])
        loaded = md.load(b, buffer, [i])
        func.return_(b, [loaded])
        assert run_function(module, "f") == [9.0]

    def test_subview_is_a_view(self):
        module, f, b = simple_func([memref(8, 8, element_type=F64)])
        view = md.subview(b, f.body.args[0], [2, 2], [2, 2], [1, 1])
        zero = arith.index_constant(b, 0)
        value = arith.constant(b, 5.0, F64)
        md.store(b, value, view, [zero, zero])
        func.return_(b)
        buffer = np.zeros((8, 8))
        run_function(module, "f", buffer)
        assert buffer[2, 2] == 5.0
        assert buffer.sum() == 5.0

    def test_subview_dynamic_offset(self):
        module, f, b = simple_func(
            [memref(8, 8, element_type=F64), INDEX]
        )
        view = md.subview(b, f.body.args[0],
                          [f.body.args[1], 0], [2, 2], [1, 1])
        zero = arith.index_constant(b, 0)
        value = arith.constant(b, 5.0, F64)
        md.store(b, value, view, [zero, zero])
        func.return_(b)
        buffer = np.zeros((8, 8))
        run_function(module, "f", buffer, 3)
        assert buffer[3, 0] == 5.0


class TestPrograms:
    def test_matmul(self):
        module = build_matmul_module(5, 4, 3)
        a, b, c, expected = reference_matmul(5, 4, 3)
        run_function(module, "matmul", a, b, c)
        assert np.allclose(c, expected)

    def test_batch_matmul(self):
        module = build_batch_matmul_module(2, 3, 3, 3)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((2, 3, 3))
        b = rng.standard_normal((2, 3, 3))
        c = np.zeros((2, 3, 3))
        run_function(module, "batch_matmul", a, b, c)
        assert np.allclose(c, a @ b)

    def test_lowered_cfg_matmul_matches(self):
        """The program still computes the same thing after scf->cf."""
        from repro.passes import PassManager

        module = build_matmul_module(4, 4, 4)
        PassManager(["convert-scf-to-cf"]).run(module)
        a, b, c, expected = reference_matmul(4, 4, 4)
        run_function(module, "matmul", a, b, c)
        assert np.allclose(c, expected)


class TestErrors:
    def test_unknown_function(self):
        module = builtin.module()
        with pytest.raises(ExecutionError, match="no function"):
            run_function(module, "ghost")

    def test_arg_count_mismatch(self):
        module, _f, b = simple_func([I32])
        func.return_(b)
        with pytest.raises(ExecutionError, match="expects 1 args"):
            run_function(module, "f")

    def test_step_budget(self):
        module, f, b = simple_func()
        lb = arith.index_constant(b, 0)
        ub = arith.index_constant(b, 10_000_000)
        step = arith.index_constant(b, 1)
        loop = scf.for_(b, lb, ub, step)
        body = Builder.at_end(loop.body)
        arith.index_constant(body, 1)
        scf.yield_(body)
        func.return_(b)
        interp = PayloadInterpreter(module, max_steps=1000)
        with pytest.raises(ExecutionError, match="budget"):
            interp.run("f")

    def test_unsupported_op(self):
        module, _f, b = simple_func()
        b.create("tosa.add")
        func.return_(b)
        with pytest.raises(ExecutionError, match="does not support"):
            run_function(module, "f")
