"""Tests for the analytic cost model: transformation effects must have
the right *sign and rough magnitude* (the substitution for hardware)."""

import pytest

from repro.core import dialect as transform
from repro.core.interpreter import TransformInterpreter
from repro.execution.costmodel import CacheLevel, CostModel, MachineSpec
from repro.execution.workloads import (
    build_matmul_module,
    build_resnet_layer_module,
)
from repro.ir import Builder


def estimate(module):
    return CostModel().estimate_module(module)


def apply_script(payload, build):
    script, builder, root = transform.sequence()
    build(builder, root)
    transform.yield_(builder)
    TransformInterpreter().apply(script, payload)
    return payload


class TestBasics:
    def test_bigger_workload_costs_more(self):
        small = estimate(build_matmul_module(16, 16, 16))
        large = estimate(build_matmul_module(64, 64, 64))
        assert large > small * 10

    def test_estimate_scales_linearly_in_one_dim(self):
        base = estimate(build_matmul_module(16, 16, 16))
        doubled = estimate(build_matmul_module(32, 16, 16))
        assert 1.5 < doubled / base < 3.0

    def test_no_function_raises(self):
        from repro.dialects import builtin

        with pytest.raises(ValueError):
            estimate(builtin.module())

    def test_machine_spec_is_configurable(self):
        slow = MachineSpec(clock_hz=1.0e9)
        fast = MachineSpec(clock_hz=4.0e9)
        module = build_matmul_module(16, 16, 16)
        assert CostModel(slow).estimate_module(module) > \
            CostModel(fast).estimate_module(module)


class TestTransformEffects:
    def test_tiling_improves_large_matmul(self):
        baseline = estimate(build_resnet_layer_module())

        def tile(builder, root):
            loop = transform.match_op(builder, root, "scf.for",
                                      position="first")
            main, rest = transform.loop_split(builder, loop, 32)
            transform.loop_tile(builder, main, [32, 32])
            transform.loop_unroll(builder, rest, full=True)

        tiled = estimate(
            apply_script(build_resnet_layer_module(), tile)
        )
        assert tiled < baseline
        assert baseline / tiled > 1.1  # a real, not epsilon, win

    def test_microkernel_much_faster_than_tiled(self):
        """The case-study-4 shape: >20x (paper: 0.49s -> 0.017s)."""
        def tile_only(builder, root):
            loop = transform.match_op(builder, root, "scf.for",
                                      position="first")
            main, rest = transform.loop_split(builder, loop, 32)
            transform.loop_tile(builder, main, [32, 32])
            transform.loop_unroll(builder, rest, full=True)

        def tile_and_library(builder, root):
            loop = transform.match_op(builder, root, "scf.for",
                                      position="first")
            main, rest = transform.loop_split(builder, loop, 32)
            outer, inner = transform.loop_tile(builder, main, [32, 32])
            alts = transform.alternatives(builder, 2)
            first = Builder.at_end(alts.regions[0].entry_block)
            transform.to_library(first, inner, "libxsmm")
            transform.yield_(first)
            transform.loop_unroll(builder, rest, full=True)

        tiled = estimate(
            apply_script(build_resnet_layer_module(), tile_only)
        )
        micro = estimate(
            apply_script(build_resnet_layer_module(), tile_and_library)
        )
        assert tiled / micro > 20

    def test_vectorization_helps_contiguous_loop(self):
        baseline = estimate(build_matmul_module(32, 32, 32))

        def vectorize(builder, root):
            k_loop = transform.match_op(builder, root, "scf.for",
                                        position="last")
            transform.loop_vectorize(builder, k_loop, 8)

        vectorized = estimate(
            apply_script(build_matmul_module(32, 32, 32), vectorize)
        )
        assert vectorized < baseline

    def test_unrolling_reduces_loop_overhead(self):
        baseline = estimate(build_matmul_module(32, 4, 4))

        def unroll(builder, root):
            loop = transform.match_op(builder, root, "scf.for",
                                      position="last")
            transform.loop_unroll(builder, loop, factor=4)

        unrolled = estimate(
            apply_script(build_matmul_module(32, 4, 4), unroll)
        )
        assert unrolled < baseline

    def test_different_tilings_differ(self):
        """The autotuner's signal: tile size changes the estimate."""
        estimates = {}
        for tile in (4, 16, 64):
            def do_tile(builder, root, tile=tile):
                loop = transform.match_op(builder, root, "scf.for",
                                          position="first")
                transform.loop_tile(builder, loop, [tile, tile])

            estimates[tile] = estimate(
                apply_script(build_matmul_module(128, 128, 64), do_tile)
            )
        assert len(set(estimates.values())) == 3


class TestCacheModel:
    def test_small_cache_hurts(self):
        tiny = MachineSpec(l1=CacheLevel(1024, 4.0),
                           l2=CacheLevel(16 * 1024, 14.0))
        module = build_matmul_module(64, 64, 64)
        default_cost = CostModel().estimate_module(module)
        tiny_cost = CostModel(tiny).estimate_module(module)
        assert tiny_cost > default_cost

    def test_fits_in_cache_insensitive_to_l2(self):
        module = build_matmul_module(8, 8, 8)  # fits everywhere
        big_l2 = MachineSpec(l2=CacheLevel(64 * 1024 * 1024, 14.0))
        a = CostModel().estimate_module(module)
        b = CostModel(big_l2).estimate_module(module)
        assert a == pytest.approx(b, rel=1e-6)
