"""Cross-module integration scenarios: the full system working together."""

import numpy as np
import pytest

from repro.core import (
    DynamicConditionChecker,
    TransformInterpreter,
    analyze_invalidation,
    check_transform_script,
    dialect as transform,
    expand_includes,
    payload_op_specs,
    pipeline_to_transform_script,
    simplify_script,
)
from repro.execution.interpreter import PayloadInterpreter
from repro.execution.workloads import (
    build_matmul_module,
    reference_matmul,
)
from repro.ir import Builder, Operation
from repro.ir.parser import parse
from repro.ir.printer import print_op


class TestTextualEndToEnd:
    """Payload and script exist only as text, like real mlir files."""

    def test_text_script_transforms_text_payload(self):
        payload = parse(print_op(build_matmul_module(36, 32, 32)))
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        main, rest = transform.loop_split(builder, loop, 32)
        transform.loop_tile(builder, main, [32, 32])
        transform.loop_unroll(builder, rest, full=True)
        transform.yield_(builder)
        reparsed_script = parse(print_op(script))

        result = TransformInterpreter().apply(reparsed_script, payload)
        assert result.succeeded
        a, b, c, expected = reference_matmul(36, 32, 32)
        PayloadInterpreter(payload).run("matmul", a, b, c)
        assert np.allclose(c, expected)

    def test_transformed_ir_roundtrips_and_reruns(self):
        payload = build_matmul_module(8, 8, 8)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_tile(builder, loop, [4])
        transform.yield_(builder)
        TransformInterpreter().apply(script, payload)
        reparsed = parse(print_op(payload))
        reparsed.verify()
        a, b, c, expected = reference_matmul(8, 8, 8, seed=5)
        PayloadInterpreter(reparsed).run("matmul", a, b, c)
        assert np.allclose(c, expected)


class TestFullCompilationFlow:
    """TOSA model -> linalg -> loops -> tiled -> LLVM, one script."""

    def build_script(self):
        script, builder, root = transform.sequence()
        # Stage 1: the Table-1 pipeline, pass by pass.
        current = root
        for name in ("tosa-optional-decompositions", "canonicalize",
                     "tosa-make-broadcastable", "tosa-to-linalg-named",
                     "tosa-to-linalg", "tosa-to-arith",
                     "tosa-to-tensor", "canonicalize", "cse"):
            current = transform.apply_registered_pass(
                builder, current, name
            )
        transform.yield_(builder)
        return script

    def test_tosa_model_through_transform_script(self):
        from repro.mlmodels import build_model, count_ops

        payload = build_model("squeezenet")
        script = self.build_script()
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded
        assert count_ops(payload, "tosa.") == 0
        assert count_ops(payload, "linalg.") > 0

    def test_matmul_lowered_tiled_offloaded_and_lowered_to_llvm(self):
        """linalg.matmul -> loops -> split/tile -> microkernel ->
        full LLVM lowering — a single script drives all of it."""
        from repro.dialects import builtin, func, linalg
        from repro.ir.types import memref

        payload = builtin.module()
        f = func.func("kernel", [memref(64, 64), memref(64, 64),
                                 memref(64, 64)])
        payload.body.append(f)
        fb = Builder.at_end(f.body)
        linalg.matmul(fb, *f.body.args)
        func.return_(fb)

        script, builder, root = transform.sequence()
        matmul = transform.match_op(builder, root, "linalg.matmul",
                                    position="first")
        loops = builder.create(
            "transform.structured.lower_to_loops",
            operands=[matmul], result_types=[transform.ANY_OP],
        ).results[0]
        outer, inner = transform.loop_tile(builder, loops, [32, 32])
        alts = transform.alternatives(builder, 2)
        attempt = Builder.at_end(alts.regions[0].entry_block)
        transform.to_library(attempt, inner, "libxsmm")
        transform.yield_(attempt)
        # Stage 3: all the way down to LLVM.
        current = root
        for name in ("convert-scf-to-cf", "convert-arith-to-llvm",
                     "convert-cf-to-llvm", "convert-func-to-llvm",
                     "expand-strided-metadata", "lower-affine",
                     "convert-arith-to-llvm", "finalize-memref-to-llvm",
                     "reconcile-unrealized-casts"):
            current = transform.apply_registered_pass(
                builder, current, name
            )
        transform.yield_(builder)

        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded
        names = {op.name for op in payload.walk() if op is not payload}
        assert all(name.startswith("llvm.") for name in names), names

    def test_static_checks_accept_the_full_flow_script(self):
        script = self.build_script()
        assert analyze_invalidation(script) == []


class TestSafetyNetsCompose:
    def test_checked_interpreter_on_generated_pipeline(self):
        from tests.passes.test_lowerings import (
            FIXED_PIPELINE,
            build_subview_payload,
        )

        payload = build_subview_payload(dynamic_offset=True)
        script = pipeline_to_transform_script(FIXED_PIPELINE)
        report = check_transform_script(
            script, payload_op_specs(payload), ["llvm.*"]
        )
        assert report.ok
        checker = DynamicConditionChecker(strict=True)
        checker.apply(script, payload)
        assert checker.violations == []

    def test_simplify_then_run_equals_run(self):
        def run(pre_simplify):
            payload = build_matmul_module(8, 8, 8)
            script, builder, root = transform.sequence()
            loop = transform.match_op(builder, root, "scf.for",
                                      position="first")
            transform.param_constant(builder, 3)  # dead
            outer, inner = transform.loop_tile(builder, loop, [4])
            transform.loop_unroll(builder, inner, factor=1)  # no-op
            transform.yield_(builder)
            if pre_simplify:
                simplify_script(script)
            TransformInterpreter().apply(script, payload)
            return print_op(payload)

        assert run(False) == run(True)

    def test_macro_expansion_then_invalidation_analysis(self):
        """Static analysis sees through expanded macros."""
        module = Operation.create("builtin.module", regions=1)
        module.regions[0].add_block()
        macro, macro_builder, macro_args = transform.named_sequence(
            "consume_it", n_args=1
        )
        transform.loop_unroll(macro_builder, macro_args[0], full=True)
        transform.yield_(macro_builder)
        module.regions[0].entry_block.append(macro)
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.include(builder, "consume_it", [loop])
        transform.print_(builder, loop)  # use-after-consume, hidden
        transform.yield_(builder)
        module.regions[0].entry_block.append(seq)

        # Before expansion the include hides the consumption...
        expand_includes(module)
        # ...after expansion the analysis catches it.
        issues = analyze_invalidation(module)
        assert len(issues) == 1
        assert issues[0].use_op.name == "transform.print"


class TestInterpreterAgainstCostModel:
    def test_cost_model_and_interpreter_agree_on_winner(self):
        """For small instances we can *run* both schedules: the one the
        cost model prefers must not be slower in interpreted steps."""
        from repro.execution.costmodel import CostModel

        def build(tiled):
            payload = build_matmul_module(32, 32, 16)
            if tiled:
                script, builder, root = transform.sequence()
                loop = transform.match_op(builder, root, "scf.for",
                                          position="first")
                transform.loop_tile(builder, loop, [8, 8])
                transform.yield_(builder)
                TransformInterpreter().apply(script, payload)
            return payload

        plain, tiled = build(False), build(True)
        cost_plain = CostModel().estimate_module(plain)
        cost_tiled = CostModel().estimate_module(tiled)
        # Semantics identical either way:
        a, b, c, expected = reference_matmul(32, 32, 16)
        PayloadInterpreter(tiled).run("matmul", a, b, c)
        assert np.allclose(c, expected)
        # The model sees the tiling benefit on this footprint:
        assert cost_tiled != cost_plain
