"""Tests for tuning transform scripts end-to-end (case study 5)."""

import pytest

from repro.autotuning import (
    BayesianTuner,
    RandomSearchTuner,
    case_study_5_problem,
    tune_transform_script,
)


@pytest.fixture(scope="module")
def problem():
    # Smaller than the benchmark instance to keep tests fast.
    return case_study_5_problem(batch=2, m=32, n=32, k=24)


class TestProblem:
    def test_space_has_constraints(self, problem):
        # VEC=16 invalid because 24 % 16 != 0.
        assert not problem.space.is_valid(
            {"TILE1": 4, "TILE2": 4, "VEC": 16}
        )
        assert problem.space.is_valid(
            {"TILE1": 4, "TILE2": 4, "VEC": 8}
        )

    def test_tile_values_divide_dimension(self, problem):
        tile1 = next(
            p for p in problem.space.parameters if p.name == "TILE1"
        )
        assert all(32 % v == 0 for v in tile1.values)

    def test_objective_runs(self, problem):
        seconds = problem.objective({"TILE1": 4, "TILE2": 4, "VEC": 1})
        assert seconds > 0

    def test_objective_differs_across_configs(self, problem):
        first = problem.objective({"TILE1": 1, "TILE2": 1, "VEC": 1})
        second = problem.objective({"TILE1": 8, "TILE2": 8, "VEC": 8})
        assert first != second

    def test_baseline(self, problem):
        assert problem.baseline_seconds() > 0


class TestTuning:
    def test_bayesian_improves_over_naive(self, problem):
        result, summary = tune_transform_script(
            problem, BayesianTuner(seed=0, n_initial=3), n_trials=12
        )
        assert summary["speedup_over_naive"] > 1.0
        assert summary["best_seconds"] <= result.trials[0].value

    def test_evolution_is_monotone(self, problem):
        _result, summary = tune_transform_script(
            problem, RandomSearchTuner(seed=0), n_trials=10
        )
        evolution = summary["speedup_evolution"]
        assert len(evolution) == 10
        assert all(b >= a - 1e-12 for a, b in
                   zip(evolution, evolution[1:]))
        assert evolution[0] == pytest.approx(1.0)

    def test_best_config_is_valid(self, problem):
        result, summary = tune_transform_script(
            problem, RandomSearchTuner(seed=1), n_trials=8
        )
        assert problem.space.is_valid(summary["best_config"])
