"""Tests for constrained search spaces and the tuners."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autotuning import (
    BayesianTuner,
    Parameter,
    RandomSearchTuner,
    SearchSpace,
)


def make_space():
    return SearchSpace(
        parameters=[
            Parameter.of("x", [1, 2, 4, 8]),
            Parameter.of("y", [1, 2, 4, 8]),
        ],
        constraints=[lambda c: c["x"] * c["y"] <= 16],
    )


class TestParameter:
    def test_divisors(self):
        p = Parameter.divisors_of("t", 12)
        assert p.values == (1, 2, 3, 4, 6, 12)

    def test_divisors_minimum(self):
        p = Parameter.divisors_of("t", 12, minimum=3)
        assert p.values == (3, 4, 6, 12)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Parameter.of("t", [])


class TestSearchSpace:
    def test_validity(self):
        space = make_space()
        assert space.is_valid({"x": 2, "y": 8})
        assert not space.is_valid({"x": 8, "y": 8})  # constraint
        assert not space.is_valid({"x": 3, "y": 1})  # not in values

    def test_enumeration_respects_constraints(self):
        space = make_space()
        configs = list(space.all_configs())
        assert all(c["x"] * c["y"] <= 16 for c in configs)
        assert space.size() == len(configs)

    def test_sampling_valid(self):
        space = make_space()
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert space.is_valid(space.sample(rng))

    def test_unsatisfiable_constraint(self):
        space = SearchSpace(
            [Parameter.of("x", [1])], [lambda c: False]
        )
        with pytest.raises(RuntimeError, match="unsatisfiable"):
            space.sample(np.random.default_rng(0), max_attempts=10)

    def test_encode_normalized(self):
        space = make_space()
        encoded = space.encode({"x": 1, "y": 8})
        assert encoded[0] == 0.0
        assert encoded[1] == 1.0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace([Parameter.of("x", [1]), Parameter.of("x", [2])])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_sample_always_valid(self, seed):
        space = make_space()
        config = space.sample(np.random.default_rng(seed))
        assert space.is_valid(config)


def quadratic(config):
    """Minimum at x=4, y=2."""
    return (config["x"] - 4) ** 2 + (config["y"] - 2) ** 2


class TestRandomSearch:
    def test_finds_reasonable_point(self):
        space = make_space()
        result = RandomSearchTuner(seed=0).minimize(
            quadratic, space, n_trials=30
        )
        assert result.best.value <= 1.0

    def test_best_so_far_monotone(self):
        space = make_space()
        result = RandomSearchTuner(seed=1).minimize(
            quadratic, space, n_trials=20
        )
        curve = result.best_so_far()
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_trials_recorded(self):
        space = make_space()
        result = RandomSearchTuner(seed=2).minimize(
            quadratic, space, n_trials=10
        )
        assert len(result.trials) == 10


class TestBayesianTuner:
    def test_finds_optimum(self):
        space = make_space()
        result = BayesianTuner(seed=0, n_initial=4).minimize(
            quadratic, space, n_trials=20
        )
        assert result.best.value == 0.0
        assert result.best.config == {"x": 4, "y": 2}

    def test_at_least_matches_random(self):
        space = SearchSpace(
            [Parameter.of("x", list(range(1, 33))),
             Parameter.of("y", list(range(1, 33)))],
        )

        def rosenbrockish(config):
            return (
                (config["x"] - 20) ** 2 + (config["y"] - 7) ** 2
                + 0.1 * config["x"] * config["y"]
            )

        bayes = BayesianTuner(seed=3, n_initial=5).minimize(
            rosenbrockish, space, n_trials=25
        )
        random = RandomSearchTuner(seed=3).minimize(
            rosenbrockish, space, n_trials=25
        )
        assert bayes.best.value <= random.best.value * 1.25

    def test_respects_constraints(self):
        space = make_space()
        result = BayesianTuner(seed=1).minimize(
            quadratic, space, n_trials=15
        )
        assert all(
            space.is_valid(trial.config) for trial in result.trials
        )

    def test_speedup_evolution(self):
        space = make_space()
        result = BayesianTuner(seed=0).minimize(
            lambda c: quadratic(c) + 1.0, space, n_trials=10
        )
        evolution = result.speedup_evolution(baseline=10.0)
        assert len(evolution) == 10
        assert all(b >= a - 1e-12 for a, b in
                   zip(evolution, evolution[1:]))
