"""Tests for transactional transform execution (§3.4, Fig. 8).

Covers :class:`~repro.core.transaction.PayloadTransaction` directly and
its integration into ``transform.alternatives``: payload and handle
state roll back together, result handles map from the winning region's
yield, and handles into the checkpointed subtree survive a rollback.
"""

import pytest

from repro.core import dialect as transform
from repro.core.interpreter import TransformInterpreter
from repro.core.state import HandleInvalidatedError, TransformState
from repro.core.transaction import PayloadTransaction
from repro.execution.workloads import build_matmul_module
from repro.ir import Builder
from repro.ir.printer import print_op


def loops_of(module):
    return [op for op in module.walk() if op.name == "scf.for"]


class TestPayloadTransaction:
    def test_rollback_restores_payload_bytes(self):
        payload = build_matmul_module(2, 2, 2)
        state = TransformState(payload)
        before = print_op(payload)
        txn = PayloadTransaction(state)
        loops_of(payload)[0].set_attr("mutated", 1)
        assert print_op(payload) != before
        txn.rollback()
        assert print_op(payload) == before

    def test_commit_keeps_changes(self):
        payload = build_matmul_module(2, 2, 2)
        state = TransformState(payload)
        txn = PayloadTransaction(state)
        loops_of(payload)[0].set_attr("mutated", 1)
        after = print_op(payload)
        txn.commit()
        assert print_op(payload) == after

    def test_rollback_restores_handle_state(self):
        payload = build_matmul_module(2, 2, 2)
        state = TransformState(payload)
        root_handle = object()
        state.set_payload(root_handle, [payload])
        txn = PayloadTransaction(state)
        extra = object()
        state.set_payload(extra, loops_of(payload)[:1])
        txn.rollback()
        # The handle created inside the transaction is gone; the
        # pre-existing one still resolves.
        with pytest.raises(HandleInvalidatedError):
            state.get_payload(extra)
        assert state.get_payload(root_handle) == [payload]

    def test_context_manager_rolls_back_on_error(self):
        payload = build_matmul_module(2, 2, 2)
        state = TransformState(payload)
        before = print_op(payload)
        with pytest.raises(RuntimeError, match="boom"):
            with PayloadTransaction(state):
                loops_of(payload)[0].set_attr("mutated", 1)
                raise RuntimeError("boom")
        assert print_op(payload) == before


class TestAlternativesRollback:
    def _run(self, payload, script):
        return TransformInterpreter().apply(script, payload)

    def test_failed_alternative_leaves_payload_byte_identical(self):
        payload = build_matmul_module(4, 4, 4)
        before = print_op(payload)
        script, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        loop = transform.match_op(first, root, "scf.for", position="first")
        transform.loop_unroll(first, loop, full=True)
        first.create("transform.test.emit_silenceable",
                     attributes={"message": "reject attempt 1"})
        transform.yield_(first)
        transform.yield_(Builder.at_end(alts.regions[1].entry_block))
        transform.yield_(builder)
        result = self._run(payload, script)
        assert result.succeeded
        assert print_op(payload) == before

    def test_second_alternative_sees_restored_payload(self):
        payload = build_matmul_module(4, 4, 4)
        n_loops = len(loops_of(payload))
        script, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        loop = transform.match_op(first, root, "scf.for", position="first")
        transform.loop_unroll(first, loop, full=True)
        first.create("transform.test.emit_silenceable")
        transform.yield_(first)
        second = Builder.at_end(alts.regions[1].entry_block)
        # Counts loops in the *restored* payload: position="second"
        # only exists if the unroll from region 1 was rolled back.
        inner = transform.match_op(second, root, "scf.for",
                                   position="second")
        transform.annotate(second, inner, "chosen", 1)
        transform.yield_(second)
        transform.yield_(builder)
        result = self._run(payload, script)
        assert result.succeeded
        assert len(loops_of(payload)) == n_loops
        assert loops_of(payload)[1].attr("chosen") is not None

    def test_nested_alternatives_roll_back_independently(self):
        payload = build_matmul_module(4, 4, 4)
        before = print_op(payload)
        script, builder, root = transform.sequence()
        outer = transform.alternatives(builder, 2)
        first = Builder.at_end(outer.regions[0].entry_block)
        # Inner alternatives whose only region mutates then fails: the
        # inner rollback restores the payload, and the inner op itself
        # reports silenceably, which makes the *outer* region 1 fail
        # and roll back too.
        inner_alts = transform.alternatives(first, 1)
        inner = Builder.at_end(inner_alts.regions[0].entry_block)
        loop = transform.match_op(inner, root, "scf.for", position="first")
        transform.loop_unroll(inner, loop, full=True)
        inner.create("transform.test.emit_silenceable")
        transform.yield_(inner)
        loop2 = transform.match_op(first, root, "scf.for",
                                   position="first")
        transform.loop_unroll(first, loop2, factor=2)
        first.create("transform.test.emit_silenceable")
        transform.yield_(first)
        transform.yield_(Builder.at_end(outer.regions[1].entry_block))
        transform.yield_(builder)
        result = self._run(payload, script)
        assert result.succeeded
        assert print_op(payload) == before

    def test_handle_into_subtree_survives_rollback(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        # Created BEFORE the alternatives, pointing deep into the
        # subtree the transaction clones and restores.
        load = transform.match_op(builder, root, "memref.load",
                                  position="first")
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        loop = transform.match_op(first, root, "scf.for", position="first")
        transform.loop_unroll(first, loop, full=True)
        first.create("transform.test.emit_silenceable")
        transform.yield_(first)
        transform.yield_(Builder.at_end(alts.regions[1].entry_block))
        # After rollback the old handle must still resolve and point at
        # an op that is attached to the payload tree.
        transform.annotate(builder, load, "survived", 1)
        transform.yield_(builder)
        result = self._run(payload, script)
        assert result.succeeded
        marked = [op for op in payload.walk()
                  if op.attr("survived") is not None]
        assert [op.name for op in marked] == ["memref.load"]

    def test_result_handles_map_from_winning_region(self):
        """Regression: alternatives results were never mapped, so a
        consumer of the result handle crashed on an unknown handle."""
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 2, n_results=1)
        first = Builder.at_end(alts.regions[0].entry_block)
        first.create("transform.test.emit_silenceable")
        transform.yield_(first)
        second = Builder.at_end(alts.regions[1].entry_block)
        loop = transform.match_op(second, root, "scf.for",
                                  position="first")
        transform.yield_(second, [loop])
        # Consume the alternatives result outside the op.
        transform.annotate(builder, alts.results[0], "via_result", 1)
        transform.yield_(builder)
        result = self._run(payload, script)
        assert result.succeeded
        marked = [op for op in payload.walk()
                  if op.attr("via_result") is not None]
        assert [op.name for op in marked] == ["scf.for"]


class TestDestroyedMidIteration:
    def test_unroll_of_whole_nest_fails_silenceably(self):
        """Fuzzer-found regression: a handle matching every loop of a
        nest crashes ``loop.unroll {full}`` with an IndexError once the
        outer unroll destroys the inner loops. It must be a clean
        silenceable failure instead."""
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        nest = transform.match_op(builder, root, "scf.for", position="all")
        transform.loop_unroll(builder, nest, full=True)
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.is_silenceable
        assert "destroyed while processing" in result.message
        payload.verify()

    def test_tile_of_whole_nest_fails_silenceably(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        nest = transform.match_op(builder, root, "scf.for", position="all")
        transform.loop_tile(builder, nest, [2, 2])
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.is_silenceable
        assert "destroyed while processing" in result.message
        payload.verify()

    def test_recoverable_inside_alternatives(self):
        """The silenceable classification matters: inside alternatives
        the whole-nest unroll rolls back and the fallback runs."""
        payload = build_matmul_module(2, 2, 2)
        before = print_op(payload)
        script, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        nest = transform.match_op(first, root, "scf.for", position="all")
        transform.loop_unroll(first, nest, full=True)
        transform.yield_(first)
        transform.yield_(Builder.at_end(alts.regions[1].entry_block))
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded
        assert print_op(payload) == before
