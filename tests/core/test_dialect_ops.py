"""Per-op behaviour tests for the transform dialect operations."""

import pytest

from repro.core import dialect as transform
from repro.core.errors import TransformInterpreterError
from repro.core.interpreter import TransformInterpreter
from repro.execution.workloads import build_matmul_module
from repro.ir import Builder, Operation


def loops_of(module):
    return [op for op in module.walk() if op.name == "scf.for"]


def run(script, payload):
    return TransformInterpreter().apply(script, payload)


class TestMatchOp:
    def test_match_all(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        transform.print_(builder, loops, "m")
        transform.yield_(builder)
        interp = TransformInterpreter()
        interp.apply(script, payload)
        assert interp.output[0].count('"scf.for"') >= 3

    def test_positions(self):
        payload = build_matmul_module(4, 4, 4)
        i_loop, j_loop, k_loop = loops_of(payload)
        from repro.core.state import TransformState

        for position, expected in (("first", i_loop),
                                   ("second", j_loop),
                                   ("last", k_loop)):
            script, builder, root = transform.sequence()
            matched = transform.match_op(builder, root, "scf.for",
                                         position=position)
            transform.yield_(builder)
            interp = TransformInterpreter()
            state = TransformState(payload)
            state.set_payload(script.body.args[0], [payload])
            interp.run_block(script.body, state)
            assert state.get_payload(matched) == [expected]

    def test_match_multiple_names(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        matched = transform.match_op(
            builder, root, ["memref.load", "memref.store"]
        )
        transform.print_(builder, matched, "accesses")
        transform.yield_(builder)
        interp = TransformInterpreter()
        interp.apply(script, payload)
        assert interp.output[0].count("memref.") == 4

    def test_positioned_match_without_result_is_silenceable(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        transform.match_op(builder, root, "tosa.add", position="first")
        transform.yield_(builder)
        result = run(script, payload)
        assert result.is_silenceable


class TestParams:
    def test_param_constant_scalar_and_list(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        scalar = transform.param_constant(builder, 8)
        lst = transform.param_constant(builder, [4, 2])
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        # Use the scalar param as an unroll factor (2 divides 2).
        builder.create(
            "transform.loop.unroll", operands=[loop, lst],
        )
        transform.yield_(builder)
        result = run(script, payload)
        assert result.is_silenceable  # 4 does not divide trip 2

    def test_param_drives_split(self):
        payload = build_matmul_module(10, 2, 2)
        script, builder, root = transform.sequence()
        divisor = transform.param_constant(builder, 4)
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        main, rest = transform.loop_split(builder, loop, divisor)
        transform.yield_(builder)
        assert run(script, payload).succeeded
        trip_counts = sorted(
            l.trip_count() for l in loops_of(payload)[:2]
        )
        assert 8 in [l.trip_count() for l in loops_of(payload)]

    def test_num_payload_ops(self):
        from repro.core.state import TransformState

        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        count = builder.create(
            "transform.num_payload_ops", operands=[loops],
            result_types=[transform.PARAM_I64],
        )
        transform.yield_(builder)
        state = TransformState(payload)
        state.set_payload(script.body.args[0], [payload])
        TransformInterpreter().run_block(script.body, state)
        assert state.get_param(count.results[0]) == [3]


class TestLoopOps:
    def test_tile_single(self):
        payload = build_matmul_module(8, 4, 4)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_tile(builder, loop, [4])
        transform.yield_(builder)
        assert run(script, payload).succeeded
        assert len(loops_of(payload)) == 4

    def test_tile_without_sizes_is_definite(self):
        payload = build_matmul_module(8, 4, 4)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        builder.create(
            "transform.loop.tile", operands=[loop],
            result_types=[transform.ANY_OP, transform.ANY_OP],
        )
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError):
            run(script, payload)

    def test_tile_indivisible_is_silenceable(self):
        payload = build_matmul_module(10, 4, 4)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_tile(builder, loop, [4])
        transform.yield_(builder)
        assert run(script, payload).is_silenceable

    def test_interchange(self):
        payload = build_matmul_module(4, 8, 2)
        script, builder, root = transform.sequence()
        outer = transform.match_op(builder, root, "scf.for",
                                   position="first")
        inner = transform.match_op(builder, root, "scf.for",
                                   position="second")
        transform.loop_interchange(builder, outer, inner)
        transform.yield_(builder)
        assert run(script, payload).succeeded
        assert loops_of(payload)[0].trip_count() == 8

    def test_hoist(self):
        from repro.execution.workloads import build_uneven_loop_module

        payload = build_uneven_loop_module()
        script, builder, root = transform.sequence()
        outer = transform.match_op(builder, root, "scf.for",
                                   position="first")
        function = transform.match_op(builder, root, "func.func",
                                      position="last")
        transform.loop_hoist(builder, outer, function)
        transform.yield_(builder)
        assert run(script, payload).succeeded

    def test_vectorize_sets_attr(self):
        payload = build_matmul_module(4, 4, 8)
        script, builder, root = transform.sequence()
        k_loop = transform.match_op(builder, root, "scf.for",
                                    position="last")
        transform.loop_vectorize(builder, k_loop, 8)
        transform.yield_(builder)
        assert run(script, payload).succeeded
        assert loops_of(payload)[-1].attr("vector_width").value == 8

    def test_vectorize_indivisible_is_silenceable(self):
        payload = build_matmul_module(4, 4, 6)
        script, builder, root = transform.sequence()
        k_loop = transform.match_op(builder, root, "scf.for",
                                    position="last")
        transform.loop_vectorize(builder, k_loop, 8)
        transform.yield_(builder)
        assert run(script, payload).is_silenceable


class TestHandleOps:
    def test_merge_handles(self):
        from repro.core.state import TransformState

        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        first = transform.match_op(builder, root, "scf.for",
                                   position="first")
        last = transform.match_op(builder, root, "scf.for",
                                  position="last")
        merged = builder.create(
            "transform.merge_handles", operands=[first, last],
            result_types=[transform.ANY_OP],
        )
        transform.yield_(builder)
        state = TransformState(payload)
        state.set_payload(script.body.args[0], [payload])
        TransformInterpreter().run_block(script.body, state)
        assert len(state.get_payload(merged.results[0])) == 2

    def test_split_handle(self):
        from repro.core.state import TransformState

        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        split = builder.create(
            "transform.split_handle", operands=[loops],
            result_types=[transform.ANY_OP] * 3,
        )
        transform.yield_(builder)
        state = TransformState(payload)
        state.set_payload(script.body.args[0], [payload])
        TransformInterpreter().run_block(script.body, state)
        for result in split.results:
            assert len(state.get_payload(result)) == 1

    def test_split_handle_arity_mismatch(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        builder.create(
            "transform.split_handle", operands=[loops],
            result_types=[transform.ANY_OP] * 2,
        )
        transform.yield_(builder)
        assert run(script, payload).is_silenceable

    def test_get_parent_op(self):
        from repro.core.state import TransformState

        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        load = transform.match_op(builder, root, "memref.load",
                                  position="first")
        parent = builder.create(
            "transform.get_parent_op", operands=[load],
            result_types=[transform.ANY_OP],
            attributes={"op_name": "func.func"},
        )
        transform.yield_(builder)
        state = TransformState(payload)
        state.set_payload(script.body.args[0], [payload])
        TransformInterpreter().run_block(script.body, state)
        assert state.get_payload(parent.results[0])[0].name == "func.func"


class TestPassAndPatternApplication:
    def test_apply_registered_pass(self):
        payload = build_matmul_module(4, 4, 4)
        # Introduce dead code the pass will clean.
        f = next(payload.walk_ops("func.func"))
        Builder.at_start(f.body).create(
            "arith.constant", result_types=[],
        )
        script, builder, root = transform.sequence()
        transform.apply_registered_pass(builder, root, "canonicalize")
        transform.yield_(builder)
        assert run(script, payload).succeeded

    def test_unknown_pass_is_definite(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        transform.apply_registered_pass(builder, root, "no-such-pass")
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError, match="unknown pass"):
            run(script, payload)

    def test_apply_patterns_with_registry(self):
        from repro.core.dialect import register_transform_pattern
        from repro.rewrite.pattern import pattern

        @pattern("memref.load", label="strip-loads")
        def strip(op, rewriter):
            if op.attr("visited") is not None:
                return False
            rewriter.modify_op_in_place(
                op, lambda: op.set_attr("visited", True)
            )
            return True

        register_transform_pattern("test_strip_loads", lambda: strip)
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        transform.apply_patterns(builder, root, ["test_strip_loads"])
        transform.yield_(builder)
        assert run(script, payload).succeeded
        loads = list(payload.walk_ops("memref.load"))
        assert all(load.attr("visited") is not None for load in loads)

    def test_unknown_pattern_is_definite(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        transform.apply_patterns(builder, root, ["no_such_pattern"])
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError,
                           match="unknown pattern"):
            run(script, payload)

    def test_pattern_names_listed(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        op = transform.apply_patterns(builder, root, ["a", "b", "c"])
        assert op.pattern_names() == ["a", "b", "c"]
