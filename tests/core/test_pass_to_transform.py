"""Tests for pass-pipeline <-> transform-script conversion (§4.1)."""

import pytest

from repro.core import (
    TransformInterpreter,
    dialect as transform,
    pipeline_to_transform_script,
    transform_script_to_pipeline,
)
from repro.passes import PassManager, parse_pipeline


class TestConversion:
    def test_from_name_list(self):
        script = pipeline_to_transform_script(["canonicalize", "cse"])
        applied = transform_script_to_pipeline(script)
        assert applied == ["canonicalize", "cse"]

    def test_from_pipeline_string(self):
        script = pipeline_to_transform_script("canonicalize,cse")
        assert transform_script_to_pipeline(script) == [
            "canonicalize", "cse"
        ]

    def test_from_pass_manager_keeps_options(self):
        manager = PassManager().add("inline", always=True)
        script = pipeline_to_transform_script(manager)
        op = next(script.walk_ops("transform.apply_registered_pass"))
        from repro.ir.attributes import unwrap

        assert unwrap(op.attr("options"))["always"] is True

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            pipeline_to_transform_script(["nope"])

    def test_passes_chained_through_handles(self):
        script = pipeline_to_transform_script(
            ["canonicalize", "cse", "canonicalize"]
        )
        ops = list(script.walk_ops("transform.apply_registered_pass"))
        assert len(ops) == 3
        # Each op consumes the previous op's result handle.
        assert ops[1].operand(0) is ops[0].results[0]
        assert ops[2].operand(0) is ops[1].results[0]

    def test_script_is_a_module_with_sequence(self):
        script = pipeline_to_transform_script(["cse"])
        assert script.name == "builtin.module"
        assert any(
            op.name == "transform.sequence" for op in script.walk()
        )


class TestEquivalence:
    """The identical compilation flow, native vs interpreted (Table 1)."""

    PIPELINE = ["tosa-optional-decompositions", "canonicalize",
                "tosa-make-broadcastable", "tosa-to-linalg-named",
                "tosa-to-linalg", "tosa-to-arith", "tosa-to-tensor",
                "canonicalize", "cse"]

    def test_same_final_ir_shape(self):
        from repro.ir.printer import print_op
        from repro.mlmodels import build_model

        native = build_model("squeezenet")
        PassManager(self.PIPELINE).run(native)

        interpreted = build_model("squeezenet")
        script = pipeline_to_transform_script(self.PIPELINE)
        TransformInterpreter().apply(script, interpreted)

        native_names = sorted(op.name for op in native.walk())
        interpreted_names = sorted(op.name for op in interpreted.walk())
        assert native_names == interpreted_names
        # Byte-identical IR, in fact:
        assert print_op(native) == print_op(interpreted)
