"""Tests for IRDL-backed dynamic pre-/post-condition checking (§3.3)."""

import pytest

from repro.core import DynamicConditionChecker, dialect as transform
from repro.core.errors import TransformInterpreterError
from repro.passes.manager import Pass, register_pass
from tests.passes.test_lowerings import (
    BROKEN_PIPELINE,
    build_subview_payload,
)


class _RogueAffinePass(Pass):
    """Declares no affine ops in its postconditions but creates one."""

    NAME = "test-rogue-affine"
    PRECONDITIONS = {"memref.subview"}
    POSTCONDITIONS = {"arith.constant"}  # a lie: it also emits affine

    def run(self, op):
        from repro.dialects import affine as affine_dialect, arith
        from repro.ir import Builder
        from repro.ir.affine import AffineMap, symbol

        f = next(op.walk_ops("func.func"))
        builder = Builder.at_start(f.body)
        value = arith.index_constant(builder, 1)
        affine_dialect.apply(
            builder, AffineMap(0, 1, (symbol(0) * 2,)), [value]
        )


if "test-rogue-affine" not in __import__(
    "repro.passes.manager", fromlist=["PASS_REGISTRY"]
).PASS_REGISTRY:
    register_pass(_RogueAffinePass)


def run_pipeline_checked(payload, pass_names, strict=False):
    script, builder, root = transform.sequence()
    current = root
    for name in pass_names:
        current = transform.apply_registered_pass(builder, current, name)
    transform.yield_(builder)
    checker = DynamicConditionChecker(strict=strict)
    checker.apply(script, payload)
    return checker


class TestPostconditionChecking:
    def test_accurate_conditions_report_nothing(self):
        payload = build_subview_payload(dynamic_offset=True)
        checker = run_pipeline_checked(
            payload, ["expand-strided-metadata"]
        )
        assert checker.violations == []

    def test_inaccurate_conditions_detected(self):
        """The dynamic check catches C++-level bugs in declarations."""
        payload = build_subview_payload(dynamic_offset=True)
        checker = run_pipeline_checked(payload, ["test-rogue-affine"])
        messages = [str(v) for v in checker.violations]
        assert any("affine.apply" in m for m in messages)

    def test_strict_mode_aborts(self):
        payload = build_subview_payload(dynamic_offset=True)
        with pytest.raises(TransformInterpreterError,
                           match="condition check failed"):
            run_pipeline_checked(payload, ["test-rogue-affine"],
                                 strict=True)


class TestIRDLConstrainedPostconditions:
    def test_remaining_subviews_verified_trivial(self):
        """After expand-strided-metadata, every remaining subview must
        satisfy memref.subview.constr — verified by the generated IRDL
        verifier."""
        payload = build_subview_payload(dynamic_offset=False)
        checker = run_pipeline_checked(
            payload, ["expand-strided-metadata"]
        )
        # The static-offset subview is trivial: no violations.
        assert checker.violations == []

    def test_violating_subview_detected(self):
        from repro.passes.manager import PASS_REGISTRY

        class _BrokenExpand(Pass):
            """Claims the subview.constr postcondition but leaves a
            non-trivial subview in place."""

            NAME = "test-broken-expand"
            PRECONDITIONS = {"memref.subview"}
            POSTCONDITIONS = {"memref.subview.constr"}

            def run(self, op):
                pass  # does nothing; the non-trivial subview remains

        if "test-broken-expand" not in PASS_REGISTRY:
            register_pass(_BrokenExpand)
        payload = build_subview_payload(dynamic_offset=True)
        checker = run_pipeline_checked(payload, ["test-broken-expand"])
        messages = [str(v) for v in checker.violations]
        assert any("IRDL constraint violated" in m for m in messages)
        assert any("cardinality" in m or "operands" in m or
                   "offsets" in m for m in messages)
