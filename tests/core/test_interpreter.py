"""Tests for the transform interpreter: execution, errors, recovery."""

import pytest

from repro.core import dialect as transform
from repro.core.errors import TransformInterpreterError, TransformResult
from repro.core.interpreter import TransformInterpreter
from repro.dialects import builtin, func
from repro.execution.workloads import build_matmul_module
from repro.ir import Builder, Operation


def loops_of(module):
    return [op for op in module.walk() if op.name == "scf.for"]


class TestEntryPoints:
    def test_sequence_binds_root(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        printed = transform.print_(builder, root, "root")
        transform.yield_(builder)
        interp = TransformInterpreter()
        result = interp.apply(script, payload)
        assert result.succeeded
        assert "builtin.module" in interp.output[0]

    def test_named_sequence_entry(self):
        payload = build_matmul_module(4, 4, 4)
        script = Operation.create("builtin.module", regions=1)
        script.regions[0].add_block()
        seq, builder, args = transform.named_sequence("__transform_main")
        script.regions[0].entry_block.append(seq)
        loop = transform.match_op(builder, args[0], "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=False, factor=2)
        transform.yield_(builder)
        TransformInterpreter().apply(script, payload,
                                     entry_point="__transform_main")
        assert loops_of(payload)[0].trip_count() == 2

    def test_missing_entry_raises(self):
        payload = build_matmul_module(2, 2, 2)
        script = Operation.create("builtin.module", regions=1)
        script.regions[0].add_block()
        with pytest.raises(TransformInterpreterError, match="entry"):
            TransformInterpreter().apply(script, payload)

    def test_non_transform_op_is_definite_error(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        builder.create("arith.constant", result_types=[],
                       attributes={"value": 0})
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError,
                           match="not a transform operation"):
            TransformInterpreter().apply(script, payload)


class TestErrors:
    def test_definite_aborts(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        builder.create("transform.test.emit_definite",
                       attributes={"message": "boom"})
        marker = transform.match_op(builder, root, "scf.for")
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError, match="boom"):
            TransformInterpreter().apply(script, payload)

    def test_silenceable_skips_rest_of_region(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        builder.create("transform.test.emit_silenceable",
                       attributes={"message": "soft"})
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.is_silenceable
        # The unroll after the failure never ran.
        assert len(loops_of(payload)) == 3

    def test_stats_recorded(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        interp = TransformInterpreter()
        interp.apply(script, payload)
        assert interp.stats.transforms_executed >= 3
        assert interp.stats.handles_invalidated == 1
        assert interp.stats.wall_seconds > 0

    def test_failed_apply_not_counted_in_stats(self):
        """Regression (PR 1): a transform whose apply() fails must not
        count as executed nor claim its result handles as created."""
        from repro.core.types import ANY_OP

        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        transform.match_op(builder, root, "scf.for", position="first")
        builder.create("transform.test.emit_silenceable",
                       attributes={"message": "soft"},
                       result_types=[ANY_OP])
        transform.yield_(builder)
        interp = TransformInterpreter()
        result = interp.apply(script, payload)
        assert result.is_silenceable
        # Only the successful match_op counts; neither the failing op
        # nor the (silenceably failed) enclosing sequence do.
        assert interp.stats.transforms_executed == 1
        assert interp.stats.handles_created == 1

    def test_invalidation_stat_counts_aliases(self):
        """Regression (PR 1): consuming one operand used to bump the
        stat by exactly 1; it must count every handle actually killed,
        aliases included."""
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        # All memref.load ops live inside the outermost loop, so this
        # handle aliases the loop handle.
        transform.match_op(builder, root, "memref.load")
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        interp = TransformInterpreter()
        interp.apply(script, payload)
        # The consumed loop handle + the nested-alias load handle.
        assert interp.stats.handles_invalidated == 2

    def test_nested_sequence_not_mistaken_for_entry(self):
        """Regression (PR 1): entry discovery must only consider
        top-level ops. A transform.sequence nested inside a
        named_sequence body is a step of that entry, not the entry —
        the old walk()-based scan picked it and skipped the rest of
        the enclosing body."""
        payload = build_matmul_module(2, 2, 2)
        script = Operation.create("builtin.module", regions=1)
        script.regions[0].add_block()
        seq, builder, args = transform.named_sequence("__transform_main")
        script.regions[0].entry_block.append(seq)
        transform.print_(builder, args[0], "from-main")
        nested, nested_builder, _nested_root = transform.sequence()
        transform.print_(nested_builder, _nested_root, "from-nested")
        transform.yield_(nested_builder)
        builder.insert(nested)
        transform.yield_(builder)

        interp = TransformInterpreter()
        result = interp.apply(script, payload)
        assert result.succeeded
        # The named sequence ran as the entry (its print fired), and
        # the nested sequence ran as one of its steps — in that order.
        assert any("from-main" in line for line in interp.output)
        assert any("from-nested" in line for line in interp.output)
        main_at = next(i for i, line in enumerate(interp.output)
                       if "from-main" in line)
        nested_at = next(i for i, line in enumerate(interp.output)
                         if "from-nested" in line)
        assert main_at < nested_at


class TestAlternatives:
    def make_script(self, first_region_fails: bool):
        script, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        if first_region_fails:
            first.create("transform.test.emit_silenceable")
        first.create("transform.print", operands=[root],
                     attributes={"message": "first"})
        second = Builder.at_end(alts.regions[1].entry_block)
        second.create("transform.print", operands=[root],
                      attributes={"message": "second"})
        transform.yield_(builder)
        return script

    def test_first_alternative_wins_when_ok(self):
        payload = build_matmul_module(2, 2, 2)
        interp = TransformInterpreter()
        interp.apply(self.make_script(first_region_fails=False), payload)
        assert any("first" in line for line in interp.output)
        assert not any("second" in line for line in interp.output)

    def test_silenceable_failure_falls_through(self):
        payload = build_matmul_module(2, 2, 2)
        interp = TransformInterpreter()
        interp.apply(self.make_script(first_region_fails=True), payload)
        assert any("second" in line for line in interp.output)

    def test_empty_region_is_noop_success(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        first.create("transform.test.emit_silenceable")
        # Second region left empty: "leave the code unchanged".
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded

    def test_all_alternatives_failing_is_silenceable(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 1)
        first = Builder.at_end(alts.regions[0].entry_block)
        first.create("transform.test.emit_silenceable",
                     attributes={"message": "inner"})
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.is_silenceable
        assert "inner" in result.message

    def test_definite_error_not_suppressed(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 2)
        first = Builder.at_end(alts.regions[0].entry_block)
        first.create("transform.test.emit_definite")
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError):
            TransformInterpreter().apply(script, payload)


class TestForeach:
    def test_runs_body_per_payload_op(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        all_loops = transform.match_op(builder, root, "scf.for")
        foreach_op, body_builder, element = transform.foreach(
            builder, all_loops
        )
        transform.print_(body_builder, element, "visiting")
        transform.yield_(body_builder)
        transform.yield_(builder)
        interp = TransformInterpreter()
        interp.apply(script, payload)
        visits = [line for line in interp.output if "visiting" in line]
        assert len(visits) == 3


class TestInclude:
    def test_macro_invocation(self):
        payload = build_matmul_module(4, 4, 4)
        script = Operation.create("builtin.module", regions=1)
        script.regions[0].add_block()
        macro, macro_builder, macro_args = transform.named_sequence(
            "unroll_first", n_args=1
        )
        loop = transform.match_op(macro_builder, macro_args[0],
                                  "scf.for", position="first")
        transform.loop_unroll(macro_builder, loop, factor=2)
        transform.yield_(macro_builder)
        script.regions[0].entry_block.append(macro)

        seq, builder, root = transform.sequence()
        transform.include(builder, "unroll_first", [root])
        transform.yield_(builder)
        script.regions[0].entry_block.append(seq)

        TransformInterpreter().apply(script, payload)
        assert loops_of(payload)[0].trip_count() == 2

    def test_unknown_target_is_definite(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        transform.include(builder, "nope", [root])
        transform.yield_(builder)
        module = Operation.create("builtin.module", regions=1)
        module.regions[0].add_block().append(script)
        with pytest.raises(TransformInterpreterError,
                           match="no named sequence"):
            TransformInterpreter().apply(module, payload)


class TestTypeChecking:
    def test_typed_handle_enforced_dynamically(self):
        from repro.core.types import OperationHandleType

        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        # Match func.func but claim it is an scf.for handle.
        bad = builder.create(
            "transform.match_op",
            operands=[root],
            result_types=[OperationHandleType("scf.for")],
            attributes={"names": ["func.func"], "position": "first"},
        )
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError,
                           match="does not satisfy"):
            TransformInterpreter().apply(script, payload)

    def test_cast_refines_handle(self):
        from repro.core.types import ANY_OP, OperationHandleType

        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first", result_type=ANY_OP)
        builder.create(
            "transform.cast", operands=[loop],
            result_types=[OperationHandleType("scf.for")],
        )
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded

    def test_cast_mismatch_is_silenceable(self):
        from repro.core.types import ANY_OP, OperationHandleType

        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        f = transform.match_op(builder, root, "func.func",
                               position="first", result_type=ANY_OP)
        builder.create(
            "transform.cast", operands=[f],
            result_types=[OperationHandleType("scf.for")],
        )
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.is_silenceable
