"""Coverage for transform handle types and the error model."""

import pytest

from repro.core.errors import (
    FailureKind,
    TransformInterpreterError,
    TransformResult,
)
from repro.core.types import (
    ANY_OP,
    AnyOpType,
    AnyValueType,
    OperationHandleType,
    PARAM_I64,
    ParamType,
)
from repro.ir import Operation, parse


class TestHandleTypes:
    def test_any_op_accepts_everything(self):
        assert ANY_OP.accepts_op_name("scf.for")
        assert ANY_OP.accepts_op_name("whatever.op")

    def test_operation_handle_restricts(self):
        handle = OperationHandleType("scf.for")
        assert handle.accepts_op_name("scf.for")
        assert not handle.accepts_op_name("scf.if")

    def test_printing(self):
        assert str(ANY_OP) == "!transform.any_op"
        assert str(OperationHandleType("scf.for")) == \
            '!transform.op<"scf.for">'
        assert str(PARAM_I64) == "!transform.param<i64>"
        assert str(AnyValueType()) == "!transform.any_value"

    def test_equality(self):
        assert AnyOpType() == ANY_OP
        assert OperationHandleType("a.b") == OperationHandleType("a.b")
        assert OperationHandleType("a.b") != OperationHandleType("a.c")
        assert ParamType("i64") == PARAM_I64

    def test_parse_param_type(self):
        op = parse('%0 = "t.x"() : () -> !transform.param<i64>')
        assert op.results[0].type == PARAM_I64

    def test_unknown_transform_type_rejected(self):
        from repro.ir import ParseError

        with pytest.raises((ParseError, ValueError)):
            parse('%0 = "t.x"() : () -> !transform.bogus')


class TestTransformResult:
    def test_success(self):
        result = TransformResult.success()
        assert result.succeeded
        assert not result.is_silenceable
        assert not result.is_definite
        assert str(result) == "success"

    def test_silenceable_carries_context(self):
        op = Operation.create("transform.loop.tile")
        result = TransformResult.silenceable("nope", op, [op])
        assert result.is_silenceable
        assert result.transform_op is op
        assert result.payload_ops == [op]
        assert "nope" in str(result)
        assert "transform.loop.tile" in str(result)

    def test_definite(self):
        result = TransformResult.definite("fatal")
        assert result.is_definite
        assert result.kind is FailureKind.DEFINITE

    def test_interpreter_error_wraps_result(self):
        result = TransformResult.definite("fatal")
        error = TransformInterpreterError(result)
        assert error.result is result
        assert "fatal" in str(error)
