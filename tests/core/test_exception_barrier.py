"""Tests for crash containment and diagnostic routing.

Arbitrary Python exceptions escaping a transform's ``apply`` (or a
pattern rewrite under the greedy driver) must become structured
*definite* failures with a transform-stack backtrace and an MLIR-style
diagnostic — never a raw traceback — unless ``strict`` asks for one.
"""

import pytest

from repro.core import dialect as transform
from repro.core.dialect import TransformOp
from repro.core.errors import TransformInterpreterError
from repro.core.interpreter import TransformInterpreter
from repro.dialects import builtin, func
from repro.execution.workloads import build_matmul_module
from repro.ir import Builder
from repro.ir.core import register_op
from repro.rewrite.greedy import (
    GreedyRewriteConfig,
    PatternApplicationError,
    apply_patterns_greedily,
)
from repro.rewrite.pattern import pattern


@register_op
class _CrashOp(TransformOp):
    """Testing aid: apply() raises an arbitrary Python exception."""

    NAME = "transform.test.crash"

    def apply(self, interpreter, state):
        raise ZeroDivisionError("kaboom")


def crash_script():
    script, builder, root = transform.sequence()
    anchor = transform.match_op(builder, root, "scf.for", position="first")
    loop_op, body, arg = transform.foreach(builder, anchor)
    body.create("transform.test.crash")
    transform.yield_(body)
    transform.yield_(builder)
    return script


class TestInterpreterBarrier:
    def test_exception_becomes_definite_failure(self):
        payload = build_matmul_module(2, 2, 2)
        interp = TransformInterpreter()
        with pytest.raises(TransformInterpreterError) as excinfo:
            interp.apply(crash_script(), payload)
        result = excinfo.value.result
        assert result.is_definite
        assert "uncaught ZeroDivisionError" in result.message
        assert "kaboom" in result.message
        assert isinstance(result.cause, ZeroDivisionError)
        assert interp.stats.exceptions_contained == 1

    def test_backtrace_names_enclosing_transforms(self):
        payload = build_matmul_module(2, 2, 2)
        with pytest.raises(TransformInterpreterError) as excinfo:
            TransformInterpreter().apply(crash_script(), payload)
        names = [op.name for op in excinfo.value.result.backtrace]
        assert names == ["transform.sequence", "transform.foreach",
                         "transform.test.crash"]

    def test_error_message_is_diagnostic_chain(self):
        payload = build_matmul_module(2, 2, 2)
        with pytest.raises(TransformInterpreterError) as excinfo:
            TransformInterpreter().apply(crash_script(), payload)
        message = str(excinfo.value)
        assert "error:" in message
        assert "contained Python exception: ZeroDivisionError" in message
        assert "while executing 'transform.foreach'" in message
        assert "while executing 'transform.sequence'" in message

    def test_diagnostic_recorded_on_engine(self):
        payload = build_matmul_module(2, 2, 2)
        interp = TransformInterpreter()
        with pytest.raises(TransformInterpreterError):
            interp.apply(crash_script(), payload)
        assert interp.diagnostics.has_errors()
        assert "uncaught ZeroDivisionError" in interp.diagnostics.render()

    def test_strict_reraises_raw_exception(self):
        payload = build_matmul_module(2, 2, 2)
        with pytest.raises(ZeroDivisionError, match="kaboom"):
            TransformInterpreter(strict=True).apply(crash_script(), payload)

    def test_silenceable_failure_emits_warning_diagnostic(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        builder.create("transform.test.emit_silenceable",
                       attributes={"message": "soft"})
        transform.yield_(builder)
        interp = TransformInterpreter()
        result = interp.apply(script, payload)
        assert result.is_silenceable
        assert not interp.diagnostics.has_errors()
        assert any("soft" in str(w) for w in interp.diagnostics.warnings)


class TestMatchPositionValidation:
    def test_unknown_position_is_definite(self):
        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        builder.create(
            "transform.match_op",
            operands=[root],
            attributes={"names": ["scf.for"], "position": "middle"},
            result_types=[transform.ANY_OP],
        )
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError,
                           match="unknown position 'middle'"):
            TransformInterpreter().apply(script, payload)


@pattern("test.a", label="crashy")
def _crashy(op, rewriter):
    raise ValueError("pattern exploded")


def module_with_test_a():
    module = builtin.module()
    f = func.func("f", [])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    builder.create("test.a")
    func.return_(builder)
    return module


class TestGreedyDriverBarrier:
    def test_crash_wrapped_as_pattern_application_error(self):
        module = module_with_test_a()
        with pytest.raises(PatternApplicationError) as excinfo:
            apply_patterns_greedily(module, [_crashy])
        assert "pattern 'crashy' crashed on 'test.a'" in str(excinfo.value)
        assert isinstance(excinfo.value.cause, ValueError)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_strict_config_reraises_raw(self):
        module = module_with_test_a()
        with pytest.raises(ValueError, match="pattern exploded"):
            apply_patterns_greedily(
                module, [_crashy],
                config=GreedyRewriteConfig(strict=True),
            )
