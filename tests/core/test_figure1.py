"""Reproduction of the paper's Fig. 1 worked example.

The script hoists code out of the outer loop (line 3), splits the inner
uneven loop by 8 (line 6), tiles the divisible part (line 8), fully
unrolls the remainder (line 10) — and the duplicated unroll of line 11
is caught both statically (§3.4) and dynamically (§3.1).
"""

import pytest

from repro.core import analyze_invalidation, dialect as transform
from repro.core.errors import TransformInterpreterError
from repro.core.interpreter import TransformInterpreter
from repro.execution.workloads import build_uneven_loop_module
from repro.ir import Builder


def build_figure1_script(with_error: bool = False):
    """The @split_then_tile_and_unroll script of Fig. 1a."""
    script, builder, func_handle = transform.sequence()
    # line 2: %outer = match.op "scf.for" {first} in %func
    outer = transform.match_op(builder, func_handle, "scf.for",
                               position="first")
    # line 3: %hoisted = loop.hoist from %outer to %func
    function = transform.match_op(builder, func_handle, "func.func",
                                  position="last")
    transform.loop_hoist(builder, outer, function)
    # line 4: %inner = match.op "scf.for" {first} in %outer
    inner = transform.match_op(builder, outer, "scf.for",
                               position="first")
    # line 5: %param = param.constant 8
    param = transform.param_constant(builder, 8)
    # line 6: %part:2 = loop.split %inner ub_div_by=%param
    part_1, part_2 = transform.loop_split(builder, inner, param)
    # line 8: %tiled:2 = loop.tile %part#1 tile_sizes=[%param]
    tiled_1, tiled_2 = transform.loop_tile(builder, part_1, param)
    # line 10: %unrolled = loop.unroll %part#2 {full}
    transform.loop_unroll(builder, part_2, full=True)
    if with_error:
        # line 11: a second unroll of the consumed handle.
        transform.loop_unroll(builder, part_2, full=True)
    transform.yield_(builder)
    return script


class TestFigure1:
    def test_script_applies_successfully(self):
        payload = build_uneven_loop_module()
        script = build_figure1_script()
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded
        payload.verify()

    def test_transformed_structure(self):
        payload = build_uneven_loop_module()
        TransformInterpreter().apply(build_figure1_script(), payload)
        loops = [op for op in payload.walk() if op.name == "scf.for"]
        trip_counts = sorted(
            loop.trip_count() for loop in loops
            if loop.trip_count() is not None
        )
        # outer j-loop (4096), tile loop (2040/8 = 255), point loop (8);
        # the remainder (2 iterations) is fully unrolled away.
        assert 4096 in trip_counts
        assert 255 in trip_counts
        assert 8 in trip_counts

    def test_hoisting_moved_constants_to_function(self):
        payload = build_uneven_loop_module()
        TransformInterpreter().apply(build_figure1_script(), payload)
        function = [
            op for op in payload.walk_ops("func.func")
            if not op.is_declaration
        ][0]
        entry_constants = [
            op for op in function.body.ops if op.name == "arith.constant"
        ]
        # The constants that used to live inside the j-loop body.
        assert len(entry_constants) >= 3

    def test_remainder_fully_unrolled(self):
        payload = build_uneven_loop_module()
        TransformInterpreter().apply(build_figure1_script(), payload)
        # 2042 = 255*8 + 2: the remainder contributes 2 unrolled copies;
        # together with the in-loop body that's >= 3 calls to @use.
        calls = list(payload.walk_ops("func.call"))
        assert len(calls) == 3

    def test_line11_static_error(self):
        """'This statically reports an error!' — via the §3.4 analysis."""
        script = build_figure1_script(with_error=True)
        issues = analyze_invalidation(script)
        assert len(issues) == 1
        assert issues[0].use_op.name == "transform.loop.unroll"
        assert issues[0].consume_op.name == "transform.loop.unroll"

    def test_line11_dynamic_error(self):
        payload = build_uneven_loop_module()
        script = build_figure1_script(with_error=True)
        with pytest.raises(TransformInterpreterError,
                           match="invalidated"):
            TransformInterpreter().apply(script, payload)

    def test_clean_script_has_no_static_issues(self):
        script = build_figure1_script(with_error=False)
        assert analyze_invalidation(script) == []
