"""Tests for the transform state: mapping, invalidation, rewrite events."""

import pytest

from repro.core.state import HandleInvalidatedError, TransformState
from repro.core.types import ANY_OP
from repro.dialects import arith, builtin, func, scf
from repro.ir import Block, Builder, INDEX, Operation


def handle():
    """A fresh SSA value usable as a transform handle."""
    return Operation.create("test.handle", result_types=[ANY_OP]).result


def build_payload():
    module = builtin.module()
    f = func.func("f", [])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    lb = arith.index_constant(builder, 0)
    ub = arith.index_constant(builder, 4)
    step = arith.index_constant(builder, 1)
    loop = scf.for_(builder, lb, ub, step)
    body = Builder.at_end(loop.body)
    inner = body.create("test.inner")
    scf.yield_(body)
    func.return_(builder)
    return module, f, loop, inner


class TestMapping:
    def test_set_get(self):
        module, f, loop, _inner = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_payload(h, [loop])
        assert state.get_payload(h) == [loop]

    def test_unmapped_handle_raises(self):
        module, *_ = build_payload()
        state = TransformState(module)
        with pytest.raises(HandleInvalidatedError, match="unmapped"):
            state.get_payload(handle())

    def test_params(self):
        module, *_ = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_param(h, [32, 32])
        assert state.get_param(h) == [32, 32]

    def test_get_payload_returns_copy(self):
        module, _f, loop, _inner = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_payload(h, [loop])
        state.get_payload(h).append(None)
        assert state.get_payload(h) == [loop]


class TestInvalidation:
    def test_direct(self):
        module, _f, loop, _inner = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_payload(h, [loop])
        state.invalidate(h, "'transform.loop.unroll'")
        assert state.is_invalidated(h)
        with pytest.raises(HandleInvalidatedError, match="unroll"):
            state.get_payload(h)

    def test_nested_alias_invalidated(self):
        """Consuming the loop handle invalidates handles to nested ops."""
        module, _f, loop, inner = build_payload()
        state = TransformState(module)
        loop_handle, inner_handle = handle(), handle()
        state.set_payload(loop_handle, [loop])
        state.set_payload(inner_handle, [inner])
        state.invalidate(loop_handle, "consumed")
        assert state.is_invalidated(inner_handle)
        assert "aliasing" in state.invalidation_reason(inner_handle)

    def test_enclosing_handle_survives(self):
        """Consuming a nested handle keeps enclosing handles valid: the
        ancestors still exist, only their contents changed (§3.1)."""
        module, f, loop, inner = build_payload()
        state = TransformState(module)
        func_handle, inner_handle = handle(), handle()
        state.set_payload(func_handle, [f])
        state.set_payload(inner_handle, [inner])
        state.invalidate(inner_handle, "consumed")
        assert not state.is_invalidated(func_handle)
        assert state.get_payload(func_handle) == [f]

    def test_disjoint_handle_survives(self):
        module, f, loop, _inner = build_payload()
        state = TransformState(module)
        loop_handle, other_handle = handle(), handle()
        other_op = f.body.ops[0]  # a constant, not nested in the loop
        state.set_payload(loop_handle, [loop])
        state.set_payload(other_handle, [other_op])
        state.invalidate(loop_handle, "consumed")
        assert not state.is_invalidated(other_handle)
        assert state.get_payload(other_handle) == [other_op]

    def test_same_payload_aliases(self):
        module, _f, loop, _inner = build_payload()
        state = TransformState(module)
        first, second = handle(), handle()
        state.set_payload(first, [loop])
        state.set_payload(second, [loop])
        state.invalidate(first, "consumed")
        assert state.is_invalidated(second)

    def test_remapping_clears_invalidation(self):
        module, _f, loop, _inner = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_payload(h, [loop])
        state.invalidate(h, "consumed")
        state.set_payload(h, [loop])
        assert not state.is_invalidated(h)


class TestRewriteEvents:
    def test_erase_event_empties_mapping(self):
        module, _f, loop, inner = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_payload(h, [inner])
        state.notify_op_erased(inner)
        assert state.get_payload(h) == []

    def test_replace_event_repoints_handle(self):
        module, f, loop, inner = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_payload(h, [inner])
        replacement = Builder.before(inner).create(
            "test.replacement", result_types=[INDEX]
        )
        state.notify_op_replaced(inner, replacement.results)
        assert state.get_payload(h) == [replacement]

    def test_replace_with_non_op_value_drops(self):
        module, f, loop, inner = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_payload(h, [inner])
        block = Block([INDEX])
        state.notify_op_replaced(inner, [block.args[0]])
        assert state.get_payload(h) == []

    def test_replace_event_repoints_duplicate_entries(self):
        """Regression (PR 1): a handle may legitimately map the same op
        more than once (e.g. via merging). The old index-based repoint
        walked stale indices after the first substitution, leaving later
        duplicates pointing at the erased op."""
        module, _f, loop, inner = build_payload()
        state = TransformState(module)
        other = Builder.before(inner).create("test.other")
        h = handle()
        state.set_payload(h, [inner, other, inner])
        replacement = Builder.before(inner).create(
            "test.replacement", result_types=[INDEX]
        )
        state.notify_op_replaced(inner, replacement.results)
        assert state.get_payload(h) == [replacement, other, replacement]

    def test_erase_event_drops_duplicate_entries(self):
        module, _f, loop, inner = build_payload()
        state = TransformState(module)
        other = Builder.before(inner).create("test.other")
        h = handle()
        state.set_payload(h, [inner, other, inner])
        state.notify_op_erased(inner)
        assert state.get_payload(h) == [other]

    def test_replace_event_only_touches_mapping_handles(self):
        """Handles not mapping the replaced op must be left alone (the
        reverse index makes this O(affected), but correctness first)."""
        module, f, loop, inner = build_payload()
        state = TransformState(module)
        h_inner, h_loop = handle(), handle()
        state.set_payload(h_inner, [inner])
        state.set_payload(h_loop, [loop])
        replacement = Builder.before(inner).create(
            "test.replacement", result_types=[INDEX]
        )
        state.notify_op_replaced(inner, replacement.results)
        assert state.get_payload(h_loop) == [loop]
        # And a second replacement chases the repointed index.
        final = Builder.before(replacement).create(
            "test.final", result_types=[INDEX]
        )
        state.notify_op_replaced(replacement, final.results)
        assert state.get_payload(h_inner) == [final]

    def test_invalidate_returns_alias_count(self):
        """invalidate() reports how many handles it newly killed: the
        consumed handle itself plus every alias."""
        module, _f, loop, inner = build_payload()
        state = TransformState(module)
        loop_handle, inner_handle, alias = handle(), handle(), handle()
        state.set_payload(loop_handle, [loop])
        state.set_payload(inner_handle, [inner])
        state.set_payload(alias, [loop])
        count = state.invalidate(loop_handle, "consumed")
        assert count == 3  # consumed + nested alias + direct alias
        # Re-invalidating already-dead handles reports zero new kills.
        assert state.invalidate(loop_handle, "consumed again") == 0

    def test_pattern_driver_integration(self):
        """Handles survive greedy pattern application (paper §3.1)."""
        from repro.rewrite.greedy import apply_patterns_greedily
        from repro.rewrite.pattern import pattern

        module, _f, loop, inner = build_payload()
        state = TransformState(module)
        h = handle()
        state.set_payload(h, [inner])

        @pattern("test.inner")
        def replace_inner(op, rewriter):
            new_op = rewriter.replace_op_with(op, "test.renamed")
            return True

        apply_patterns_greedily(module, [replace_inner],
                                extra_listeners=[state])
        payload = state.get_payload(h)
        assert len(payload) == 1
        assert payload[0].name == "test.renamed"
