"""Tests for transformations *of* transform scripts (§3.4)."""

import pytest

from repro.core import (
    ScriptTransformError,
    dialect as transform,
    expand_includes,
    infer_ad_dialects,
    simplify_script,
)
from repro.core.interpreter import TransformInterpreter
from repro.execution.workloads import build_matmul_module
from repro.ir import Builder, Operation


def script_module():
    module = Operation.create("builtin.module", regions=1)
    module.regions[0].add_block()
    return module


class TestIncludeExpansion:
    def build_macro_script(self):
        module = script_module()
        macro, macro_builder, macro_args = transform.named_sequence(
            "tile_it", n_args=1
        )
        loop = transform.match_op(macro_builder, macro_args[0],
                                  "scf.for", position="first")
        transform.loop_tile(macro_builder, loop, [4])
        transform.yield_(macro_builder)
        module.regions[0].entry_block.append(macro)
        seq, builder, root = transform.sequence()
        transform.include(builder, "tile_it", [root])
        transform.yield_(builder)
        module.regions[0].entry_block.append(seq)
        return module, seq

    def test_expands_inline(self):
        module, seq = self.build_macro_script()
        count = expand_includes(module)
        assert count == 1
        body_names = [op.name for op in seq.body.ops]
        assert "transform.include" not in body_names
        assert "transform.match_op" in body_names
        assert "transform.loop.tile" in body_names

    def test_expanded_script_still_runs(self):
        module, _seq = self.build_macro_script()
        expand_includes(module)
        payload = build_matmul_module(8, 4, 4)
        result = TransformInterpreter().apply(
            module, payload, entry_point=None
        )
        # entry resolution picks the first sequence-like op; the macro
        # declaration comes first, so address the sequence directly.

    def test_nested_includes(self):
        module = script_module()
        block = module.regions[0].entry_block
        inner, inner_builder, inner_args = transform.named_sequence(
            "inner", n_args=1
        )
        transform.print_(inner_builder, inner_args[0], "hi")
        transform.yield_(inner_builder)
        block.append(inner)
        outer, outer_builder, outer_args = transform.named_sequence(
            "outer", n_args=1
        )
        transform.include(outer_builder, "inner", [outer_args[0]])
        transform.yield_(outer_builder)
        block.append(outer)
        seq, builder, root = transform.sequence()
        transform.include(builder, "outer", [root])
        transform.yield_(builder)
        block.append(seq)
        assert expand_includes(module) >= 2
        assert not list(module.walk_ops("transform.include"))

    def test_recursion_rejected(self):
        module = script_module()
        block = module.regions[0].entry_block
        rec, rec_builder, rec_args = transform.named_sequence(
            "rec", n_args=1
        )
        transform.include(rec_builder, "rec", [rec_args[0]])
        transform.yield_(rec_builder)
        block.append(rec)
        with pytest.raises(ScriptTransformError, match="recursive"):
            expand_includes(module)

    def test_unknown_include_rejected(self):
        module = script_module()
        seq, builder, root = transform.sequence()
        transform.include(builder, "ghost", [root])
        transform.yield_(builder)
        module.regions[0].entry_block.append(seq)
        with pytest.raises(ScriptTransformError, match="unknown"):
            expand_includes(module)


class TestSimplification:
    def test_unroll_by_one_removed(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, factor=1)
        transform.print_(builder, loop)
        transform.yield_(builder)
        assert simplify_script(script) >= 1
        assert not list(script.walk_ops("transform.loop.unroll"))

    def test_full_unroll_kept(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        simplify_script(script)
        assert list(script.walk_ops("transform.loop.unroll"))

    def test_tile_by_zero_forwards_handle(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        outer, inner = transform.loop_tile(builder, loop, [0, 0])
        printed = transform.print_(builder, inner)
        transform.yield_(builder)
        simplify_script(script)
        assert not list(script.walk_ops("transform.loop.tile"))
        assert printed.operand(0) is loop

    def test_dead_match_removed(self):
        script, builder, root = transform.sequence()
        transform.match_op(builder, root, "scf.for")  # unused
        transform.yield_(builder)
        assert simplify_script(script) >= 1
        assert not list(script.walk_ops("transform.match_op"))

    def test_used_match_kept(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.print_(builder, loop)
        transform.yield_(builder)
        simplify_script(script)
        assert list(script.walk_ops("transform.match_op"))

    def test_duplicate_params_shared(self):
        script, builder, root = transform.sequence()
        first = transform.param_constant(builder, 8)
        second = transform.param_constant(builder, 8)
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        main, rest = transform.loop_split(builder, loop, first)
        transform.loop_tile(builder, main, second)
        transform.yield_(builder)
        simplify_script(script)
        params = list(script.walk_ops("transform.param.constant"))
        assert len(params) == 1

    def test_empty_apply_patterns_removed(self):
        script, builder, root = transform.sequence()
        transform.apply_patterns(builder, root, [])
        transform.yield_(builder)
        simplify_script(script)
        assert not list(script.walk_ops("transform.apply_patterns"))

    def test_empty_alternatives_removed(self):
        script, builder, root = transform.sequence()
        transform.alternatives(builder, 2)
        transform.yield_(builder)
        simplify_script(script)
        assert not list(script.walk_ops("transform.alternatives"))

    def test_simplified_script_equivalent(self):
        """Simplification must not change what the script does."""
        def build(simplify):
            payload = build_matmul_module(8, 4, 4)
            script, builder, root = transform.sequence()
            loop = transform.match_op(builder, root, "scf.for",
                                      position="first")
            outer, inner = transform.loop_tile(builder, loop, [4])
            transform.loop_unroll(builder, inner, factor=1)  # no-op
            transform.yield_(builder)
            if simplify:
                simplify_script(script)
            TransformInterpreter().apply(script, payload)
            return [
                op.name for op in payload.walk()
            ].count("scf.for")

        assert build(False) == build(True)


class TestADIntrospection:
    def build_staged_script(self):
        script, builder, root = transform.sequence()
        f = transform.match_op(builder, root, "func.func",
                               position="first")
        ad_hlo = builder.create("transform.autodiff", operands=[f])
        lowered = transform.apply_registered_pass(
            builder, f, "convert-stablehlo-to-arith"
        )
        ad_arith = builder.create("transform.autodiff",
                                  operands=[lowered])
        llvm = transform.apply_registered_pass(
            builder, lowered, "convert-arith-to-llvm"
        )
        ad_llvm = builder.create("transform.autodiff", operands=[llvm])
        transform.yield_(builder)
        return script, (ad_hlo, ad_arith, ad_llvm)

    def test_levels_inferred_from_position(self):
        script, (ad_hlo, ad_arith, ad_llvm) = self.build_staged_script()
        configured = infer_ad_dialects(script)
        assert configured == 3
        assert ad_hlo.attr("add_dialect").value == "stablehlo"
        assert ad_arith.attr("add_dialect").value == "arith"
        assert ad_llvm.attr("add_dialect").value == "llvm"

    def test_explicit_attr_not_overwritten(self):
        script, (ad_hlo, *_rest) = self.build_staged_script()
        ad_hlo.set_attr("add_dialect", "llvm")
        infer_ad_dialects(script)
        assert ad_hlo.attr("add_dialect").value == "llvm"

    def test_unconfigured_autodiff_is_definite_error(self):
        from repro.core.errors import TransformInterpreterError
        from repro.dialects import builtin, func
        from repro.ir.types import F32, tensor

        payload = builtin.module()
        payload.body.append(func.func("f", []))
        Builder.at_end(
            next(payload.walk_ops("func.func")).body
        ).create("func.return")
        script, builder, root = transform.sequence()
        builder.create("transform.autodiff", operands=[root])
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError,
                           match="add_dialect"):
            TransformInterpreter().apply(script, payload)

    def test_end_to_end_gradient_emission(self):
        from repro.dialects import builtin, func
        from repro.ir.types import F32, tensor

        payload = builtin.module()
        t = tensor(4, element_type=F32)
        f = func.func("f", [t, t], [t])
        payload.body.append(f)
        fb = Builder.at_end(f.body)
        product = fb.create(
            "stablehlo.multiply", operands=list(f.body.args),
            result_types=[t], attributes={"differentiate": True},
        )
        func.return_(fb, [product.result])

        script, (ad_hlo, *_rest) = self.build_staged_script()
        infer_ad_dialects(script)
        TransformInterpreter().apply(script, payload)
        names = [op.name for op in payload.walk()]
        # The stablehlo-level AD emitted stablehlo.add, which the later
        # lowering turned into arith.addf, then llvm.fadd.
        assert "llvm.fadd" in names
