"""Tests for spec matching and the static pipeline checker (§3.3, §4.2)."""

import pytest

import repro.passes  # noqa: F401 — register the lowering passes
from repro.core import dialect as transform
from repro.core.conditions import (
    TransformConditions,
    conditions_of,
    pass_conditions,
    payload_op_specs,
    spec_matches_name,
    spec_subsumes,
)
from repro.core.static_checker import (
    IssueKind,
    check_pipeline,
    check_transform_script,
    extract_pipeline_from_script,
)

BROKEN = [
    "convert-scf-to-cf", "convert-arith-to-llvm", "convert-cf-to-llvm",
    "convert-func-to-llvm", "expand-strided-metadata",
    "finalize-memref-to-llvm", "reconcile-unrealized-casts",
]
FIXED = BROKEN[:5] + ["lower-affine", "convert-arith-to-llvm"] + BROKEN[5:]
INPUT = {"func.func", "func.return", "scf.forall", "arith.constant",
         "memref.subview", "memref.store"}


class TestSpecMatching:
    def test_exact(self):
        assert spec_matches_name("scf.for", "scf.for")
        assert not spec_matches_name("scf.for", "scf.if")

    def test_dialect_wildcard(self):
        assert spec_matches_name("scf.*", "scf.for")
        assert spec_matches_name("scf.*", "scf.forall")
        assert not spec_matches_name("scf.*", "cf.br")

    def test_cast_alias(self):
        assert spec_matches_name(
            "cast", "builtin.unrealized_conversion_cast"
        )
        assert spec_matches_name(
            "builtin.unrealized_conversion_cast", "cast"
        )

    def test_constrained_spec_matches_base(self):
        assert spec_matches_name("memref.subview.constr",
                                 "memref.subview")

    def test_subsumption(self):
        assert spec_subsumes("memref.*", "memref.subview.constr")
        assert spec_subsumes("arith.*", "arith.addi")
        assert spec_subsumes("memref.subview", "memref.subview.constr")
        assert not spec_subsumes("scf.*", "cf.br")
        assert not spec_subsumes("arith.addi", "arith.*")


class TestConditionsResolution:
    def test_pass_conditions(self):
        conditions = pass_conditions("convert-scf-to-cf")
        assert "scf.*" in conditions.preconditions
        assert "cf.br" in conditions.postconditions

    def test_unknown_pass(self):
        assert pass_conditions("nonexistent") is None

    def test_transform_op_conditions(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        tile_outer, tile_inner = transform.loop_tile(builder, loop, [8])
        tile_op = tile_outer.defining_op()
        conditions = conditions_of(tile_op)
        assert "scf.for" in conditions.preconditions

    def test_apply_registered_pass_pulls_pass_conditions(self):
        script, builder, root = transform.sequence()
        transform.apply_registered_pass(builder, root,
                                        "convert-scf-to-cf")
        transform.yield_(builder)
        op = next(script.walk_ops("transform.apply_registered_pass"))
        conditions = conditions_of(op)
        assert conditions.name == "convert-scf-to-cf"

    def test_payload_op_specs(self):
        from repro.execution.workloads import build_matmul_module

        specs = payload_op_specs(build_matmul_module(2, 2, 2))
        assert "scf.for" in specs and "memref.load" in specs


class TestPipelineCheck:
    def test_broken_pipeline_reports_affine_leak(self):
        report = check_pipeline(BROKEN, INPUT, ["llvm.*"])
        assert not report.ok
        leftovers = [str(issue) for issue in report.leftovers()]
        assert any("affine.apply" in text for text in leftovers)
        assert any("expand-strided-metadata" in text
                   for text in leftovers)

    def test_fixed_pipeline_is_clean(self):
        report = check_pipeline(FIXED, INPUT, ["llvm.*"])
        assert report.ok, report.render()

    def test_final_specs_reported(self):
        report = check_pipeline(FIXED, INPUT, ["llvm.*"])
        assert all(
            spec.startswith("llvm.") for spec in report.final_specs
        ), report.final_specs

    def test_phase_ordering_violation(self):
        """Running scf lowering twice: second application is dead."""
        report = check_pipeline(
            ["convert-scf-to-cf", "convert-scf-to-cf"],
            {"scf.for"},
            ["llvm.*", "cf.*", "arith.*", "cast"],
        )
        ordering = [
            issue for issue in report.issues
            if issue.kind is IssueKind.PHASE_ORDERING
        ]
        assert len(ordering) == 1
        assert ordering[0].position == 1

    def test_unknown_conditions_warn(self):
        report = check_pipeline(["cse"], {"arith.addi"}, ["arith.*"])
        kinds = {issue.kind for issue in report.issues}
        assert IssueKind.UNKNOWN_CONDITIONS in kinds
        assert report.ok  # warnings don't fail the check

    def test_trace_records_steps(self):
        report = check_pipeline(BROKEN, INPUT, ["llvm.*"])
        assert len(report.trace) == len(BROKEN)
        assert report.trace[0][0] == "convert-scf-to-cf"

    def test_render_mentions_failure(self):
        report = check_pipeline(BROKEN, INPUT, ["llvm.*"])
        assert "FAILED" in report.render()
        report_ok = check_pipeline(FIXED, INPUT, ["llvm.*"])
        assert "OK" in report_ok.render()


class TestScriptCheck:
    def make_script(self, pass_names):
        from repro.core import pipeline_to_transform_script

        return pipeline_to_transform_script(pass_names)

    def test_script_extraction(self):
        script = self.make_script(BROKEN)
        steps = extract_pipeline_from_script(script)
        assert [s for s in steps if isinstance(s, str)] == BROKEN

    def test_check_script_broken(self):
        script = self.make_script(BROKEN)
        report = check_transform_script(script, INPUT, ["llvm.*"])
        assert not report.ok

    def test_check_script_fixed(self):
        script = self.make_script(FIXED)
        report = check_transform_script(script, INPUT, ["llvm.*"])
        assert report.ok

    def test_loop_transform_after_lowering_flagged(self):
        """A loop.tile scheduled after convert-scf-to-cf is mis-ordered."""
        script, builder, root = transform.sequence()
        handle = transform.apply_registered_pass(
            builder, root, "convert-scf-to-cf"
        )
        loop = transform.match_op(builder, handle, "scf.for",
                                  position="first")
        transform.loop_tile(builder, loop, [8])
        transform.yield_(builder)
        report = check_transform_script(
            script, {"scf.for", "func.func"},
            ["cf.*", "arith.*", "func.*", "cast", "scf.*"],
        )
        ordering = [
            issue for issue in report.issues
            if issue.kind is IssueKind.PHASE_ORDERING
        ]
        assert any(
            issue.transform_name == "transform.loop.tile"
            for issue in ordering
        )
