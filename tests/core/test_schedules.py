"""Tests for the distributable schedule library (§3.2) and the
annotate/select transforms."""

import numpy as np
import pytest

from repro.core import TransformInterpreter, dialect as transform
from repro.core.schedules import (
    library_schedules,
    link_schedule_library,
    load_schedule_library,
)
from repro.execution.interpreter import PayloadInterpreter
from repro.execution.workloads import (
    build_matmul_module,
    build_resnet_layer_module,
    reference_matmul,
)
from repro.ir import Builder, Operation


def script_module():
    module = Operation.create("builtin.module", regions=1)
    module.regions[0].add_block()
    return module


class TestLibrary:
    def test_library_parses(self):
        library = load_schedule_library()
        library.verify()
        assert library_schedules(library) == [
            "lower_to_llvm",
            "offload_to_microkernel",
            "tile_and_unroll_remainder",
        ]

    def test_linking_copies_sequences(self):
        script = script_module()
        linked = link_schedule_library(script)
        assert linked == 3
        names = [
            op.attr("sym_name").value
            for op in script.walk_ops("transform.named_sequence")
        ]
        assert "tile_and_unroll_remainder" in names

    def test_user_definitions_shadow_library(self):
        script = script_module()
        own, own_builder, own_args = transform.named_sequence(
            "tile_and_unroll_remainder", n_args=1
        )
        transform.yield_(own_builder)
        script.regions[0].entry_block.append(own)
        linked = link_schedule_library(script)
        assert linked == 2  # the shadowed one is skipped
        defined = [
            op for op in script.walk_ops("transform.named_sequence")
            if op.attr("sym_name").value == "tile_and_unroll_remainder"
        ]
        assert len(defined) == 1

    def test_included_schedule_runs_and_preserves_semantics(self):
        payload = build_matmul_module(36, 32, 32)
        script = script_module()
        link_schedule_library(script)
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.include(builder, "tile_and_unroll_remainder", [loop],
                          n_results=1)
        transform.yield_(builder)
        script.regions[0].entry_block.append(seq)
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded
        a, b, c, expected = reference_matmul(36, 32, 32)
        PayloadInterpreter(payload).run("matmul", a, b, c)
        assert np.allclose(c, expected)

    def test_microkernel_schedule_from_library(self):
        payload = build_resnet_layer_module()
        script = script_module()
        link_schedule_library(script)
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.include(builder, "offload_to_microkernel", [loop])
        transform.yield_(builder)
        script.regions[0].entry_block.append(seq)
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded
        calls = [op for op in payload.walk()
                 if op.name == "func.call" and op.attr("microkernel")]
        assert calls

    def test_lowering_schedule_from_library(self):
        from tests.passes.test_lowerings import build_subview_payload

        payload = build_subview_payload(dynamic_offset=True)
        script = script_module()
        link_schedule_library(script)
        seq, builder, root = transform.sequence()
        transform.include(builder, "lower_to_llvm", [root],
                          n_results=1)
        transform.yield_(builder)
        script.regions[0].entry_block.append(seq)
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded
        names = {op.name for op in payload.walk() if op is not payload}
        assert all(name.startswith("llvm.") for name in names)

    def test_include_expansion_works_on_linked_library(self):
        from repro.core import expand_includes

        script = script_module()
        link_schedule_library(script)
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.include(builder, "tile_and_unroll_remainder", [loop],
                          n_results=1)
        transform.yield_(builder)
        script.regions[0].entry_block.append(seq)
        assert expand_includes(script) >= 1
        assert not list(seq.walk_ops("transform.include"))


class TestAnnotateSelect:
    def test_annotate_unit(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loads = transform.match_op(builder, root, "memref.load")
        transform.annotate(builder, loads, "hot")
        transform.yield_(builder)
        TransformInterpreter().apply(script, payload)
        loads_ops = list(payload.walk_ops("memref.load"))
        assert all(op.attr("hot") is not None for op in loads_ops)

    def test_annotate_with_value(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="last")
        transform.annotate(builder, loop, "unroll_hint", 8)
        transform.yield_(builder)
        TransformInterpreter().apply(script, payload)
        k_loop = [op for op in payload.walk()
                  if op.name == "scf.for"][-1]
        assert k_loop.attr("unroll_hint").value == 8

    def test_annotate_from_param(self):
        from repro.core.state import TransformState

        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        width = transform.param_constant(builder, 16)
        transform.annotate(builder, loop, "vector_hint", width)
        transform.yield_(builder)
        TransformInterpreter().apply(script, payload)
        i_loop = next(payload.walk_ops("scf.for"))
        assert i_loop.attr("vector_hint") == 16 or \
            getattr(i_loop.attr("vector_hint"), "value", None) == 16

    def test_select_filters_by_name(self):
        from repro.core.state import TransformState

        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        everything = transform.match_op(
            builder, root, ["memref.load", "memref.store"]
        )
        stores = transform.select(builder, everything, "memref.store")
        transform.yield_(builder)
        state = TransformState(payload)
        state.set_payload(script.body.args[0], [payload])
        TransformInterpreter().run_block(script.body, state)
        selected = state.get_payload(stores)
        assert len(selected) == 1
        assert selected[0].name == "memref.store"

    def test_annotate_then_match_annotation_via_select(self):
        """Scripts replace brittle metadata plumbing (§2.1): the script
        marks ops and later transforms act on the marks."""
        payload = build_matmul_module(8, 4, 4)
        script, builder, root = transform.sequence()
        first = transform.match_op(builder, root, "scf.for",
                                   position="first")
        transform.annotate(builder, first, "tile_me")
        transform.yield_(builder)
        TransformInterpreter().apply(script, payload)
        marked = [op for op in payload.walk()
                  if op.attr("tile_me") is not None]
        assert len(marked) == 1
