"""Tests for sequence failure-propagation modes and foreach results."""

import pytest

from repro.core import TransformInterpreter, dialect as transform
from repro.core.state import TransformState
from repro.execution.workloads import build_matmul_module
from repro.ir import Block, Builder, Operation


class TestSequenceFailureModes:
    def make_script(self, mode):
        script, builder, root = transform.sequence()
        if mode is not None:
            script.set_attr("failures", mode)
        builder.create("transform.test.emit_silenceable",
                       attributes={"message": "soft"})
        transform.yield_(builder)
        return script

    def test_propagate_is_default(self):
        payload = build_matmul_module(2, 2, 2)
        result = TransformInterpreter().apply(
            self.make_script(None), payload
        )
        assert result.is_silenceable

    def test_suppress_turns_silenceable_into_success(self):
        payload = build_matmul_module(2, 2, 2)
        result = TransformInterpreter().apply(
            self.make_script("suppress"), payload
        )
        assert result.succeeded

    def test_suppress_does_not_mask_definite(self):
        from repro.core import TransformInterpreterError

        payload = build_matmul_module(2, 2, 2)
        script, builder, root = transform.sequence()
        script.set_attr("failures", "suppress")
        builder.create("transform.test.emit_definite")
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError):
            TransformInterpreter().apply(script, payload)

    def test_suppress_keeps_prefix_effects(self):
        """Transforms before the failure remain applied."""
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        script.set_attr("failures", "suppress")
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_tile(builder, loop, [2])
        builder.create("transform.test.emit_silenceable")
        transform.yield_(builder)
        result = TransformInterpreter().apply(script, payload)
        assert result.succeeded
        loops = [op for op in payload.walk() if op.name == "scf.for"]
        assert len(loops) == 4  # tiling happened


class TestForeachResults:
    def test_yielded_handles_gathered(self):
        payload = build_matmul_module(8, 8, 8)
        script, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        foreach_op = builder.create(
            "transform.foreach", operands=[loops],
            result_types=[transform.ANY_OP], regions=1,
        )
        body = Block([transform.ANY_OP])
        foreach_op.regions[0].add_block(body)
        body_builder = Builder.at_end(body)
        # Per loop, yield the handle to its store ops (k-loop only has
        # one; others have it nested).
        stores = transform.match_op(body_builder, body.args[0],
                                    "memref.store")
        body_builder.create("transform.yield", operands=[stores])
        transform.yield_(builder)

        state = TransformState(payload)
        state.set_payload(script.body.args[0], [payload])
        interp = TransformInterpreter()
        result = interp.run_block(script.body, state)
        assert result.succeeded
        gathered = state.get_payload(foreach_op.results[0])
        # Three loops each see the single nested store.
        assert len(gathered) == 3
        assert all(op.name == "memref.store" for op in gathered)

    def test_yield_arity_mismatch_is_definite(self):
        from repro.core import TransformInterpreterError

        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        foreach_op = builder.create(
            "transform.foreach", operands=[loops],
            result_types=[transform.ANY_OP, transform.ANY_OP],
            regions=1,
        )
        body = Block([transform.ANY_OP])
        foreach_op.regions[0].add_block(body)
        body_builder = Builder.at_end(body)
        body_builder.create("transform.yield",
                            operands=[body.args[0]])  # 1 != 2
        transform.yield_(builder)
        with pytest.raises(TransformInterpreterError, match="arity"):
            TransformInterpreter().apply(script, payload)

    def test_resultless_foreach_still_works(self):
        payload = build_matmul_module(4, 4, 4)
        script, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        foreach_op, body_builder, element = transform.foreach(
            builder, loops
        )
        transform.annotate(body_builder, element, "seen")
        transform.yield_(body_builder)
        transform.yield_(builder)
        assert TransformInterpreter().apply(script, payload).succeeded
        marked = [op for op in payload.walk()
                  if op.attr("seen") is not None]
        assert len(marked) == 3
