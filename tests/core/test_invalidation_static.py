"""Tests for the static use-after-consume analysis (§3.4)."""

import pytest

from repro.core import analyze_invalidation, dialect as transform, verify_script
from repro.ir import Builder, Operation


class TestDirectConsumption:
    def test_use_after_unroll(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.print_(builder, loop)  # use after consume
        transform.yield_(builder)
        issues = analyze_invalidation(script)
        assert len(issues) == 1
        assert issues[0].use_op.name == "transform.print"

    def test_use_after_split(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_split(builder, loop, 8)
        transform.loop_tile(builder, loop, [8])  # loop was consumed
        transform.yield_(builder)
        assert len(analyze_invalidation(script)) == 1

    def test_clean_chaining_has_no_issues(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        main, rest = transform.loop_split(builder, loop, 8)
        transform.loop_tile(builder, main, [8])
        transform.loop_unroll(builder, rest, full=True)
        transform.yield_(builder)
        assert analyze_invalidation(script) == []

    def test_results_of_consuming_op_are_fresh(self):
        """Split results point at *new* loops: using both is fine."""
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        main, rest = transform.loop_split(builder, loop, 8)
        transform.print_(builder, main)
        transform.print_(builder, rest)
        transform.yield_(builder)
        assert analyze_invalidation(script) == []


class TestAliasPropagation:
    def test_derived_handle_invalidated_with_source(self):
        """Consuming %outer invalidates %inner matched inside it."""
        script, builder, root = transform.sequence()
        outer = transform.match_op(builder, root, "scf.for",
                                   position="first")
        inner = transform.match_op(builder, outer, "scf.for",
                                   position="first")
        transform.loop_unroll(builder, outer, full=True)
        transform.print_(builder, inner)
        transform.yield_(builder)
        issues = analyze_invalidation(script)
        assert len(issues) == 1
        assert issues[0].use_op.name == "transform.print"

    def test_transitive_derivation(self):
        script, builder, root = transform.sequence()
        outer = transform.match_op(builder, root, "scf.for",
                                   position="first")
        middle = transform.match_op(builder, outer, "scf.for",
                                    position="first")
        innermost = transform.match_op(builder, middle, "scf.for",
                                       position="first")
        transform.loop_unroll(builder, outer, full=True)
        transform.print_(builder, innermost)
        transform.yield_(builder)
        assert len(analyze_invalidation(script)) == 1

    def test_sibling_matches_not_aliased(self):
        """Handles derived from *different* sources stay independent."""
        script, builder, root = transform.sequence()
        first = transform.match_op(builder, root, "scf.for",
                                   position="first")
        last = transform.match_op(builder, root, "scf.for",
                                  position="last")
        transform.loop_unroll(builder, first, full=True)
        transform.print_(builder, last)
        transform.yield_(builder)
        # NOTE: the analysis is derivation-based; `last` derives from
        # `root`, not `first`, so no issue is reported (it may or may
        # not alias dynamically — the interpreter handles that case).
        assert analyze_invalidation(script) == []


class TestNestedRegions:
    def test_consumption_inside_alternatives_counts(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        alts = transform.alternatives(builder, 1)
        inner = Builder.at_end(alts.regions[0].entry_block)
        transform.loop_unroll(inner, loop, full=True)
        transform.yield_(inner)
        transform.print_(builder, loop)
        transform.yield_(builder)
        assert len(analyze_invalidation(script)) == 1

    def test_foreach_block_arg_aliases_operand(self):
        script, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        foreach_op, body_builder, element = transform.foreach(
            builder, loops
        )
        transform.loop_unroll(body_builder, element, full=True)
        transform.yield_(body_builder)
        transform.print_(builder, loops)
        transform.yield_(builder)
        # The element consumed inside foreach aliases the operand.
        assert len(analyze_invalidation(script)) >= 1


class TestVerifyScript:
    def test_verify_reports_strings(self):
        script, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        errors = verify_script(script)
        assert len(errors) == 1
        assert "invalidated" in errors[0]

    def test_include_without_target_reported(self):
        script, builder, root = transform.sequence()
        builder.create("transform.include", operands=[root])
        transform.yield_(builder)
        assert any("target" in e for e in verify_script(script))
