"""Tests for the synthetic Table-1 model graphs."""

import pytest

from repro.mlmodels import MODEL_SPECS, build_model, count_ops

#: The op counts Table 1 reports per model.
PAPER_COUNTS = {
    "squeezenet": 126,
    "gpt2": 2861,
    "mobilebert": 4134,
    "whisper_decoder": 847,
    "bert_base": 1182,
}


class TestSpecs:
    def test_all_five_models_present(self):
        assert set(MODEL_SPECS) == set(PAPER_COUNTS)

    def test_spec_counts_match_paper(self):
        for name, count in PAPER_COUNTS.items():
            assert MODEL_SPECS[name].n_ops == count


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(PAPER_COUNTS))
    def test_exact_op_count(self, name):
        module = build_model(name)
        assert count_ops(module) == PAPER_COUNTS[name]

    def test_graphs_verify(self):
        build_model("squeezenet").verify()
        build_model("whisper_decoder").verify()

    def test_cnn_uses_convs(self):
        module = build_model("squeezenet")
        names = [op.name for op in module.walk()]
        assert "tosa.conv2d" in names
        assert "tosa.clamp" in names

    def test_transformers_use_matmuls(self):
        module = build_model("bert_base")
        names = [op.name for op in module.walk()]
        assert names.count("tosa.matmul") > 20
        assert "tosa.softmax" in names

    def test_single_function_named_main(self):
        module = build_model("whisper_decoder")
        functions = list(module.walk_ops("func.func"))
        assert len(functions) == 1
        assert functions[0].sym_name == "main"

    def test_graph_is_connected(self):
        """Every op result feeds something (except the returned value)."""
        module = build_model("squeezenet")
        dangling = [
            op.name
            for op in module.walk()
            if op.name.startswith("tosa.")
            and op.results
            and not any(r.has_uses() for r in op.results)
        ]
        assert dangling == []
