"""FaultPlan determinism and the chaos driver's invariant checking."""

import json

import pytest

from repro.testing.faults import (
    CHAOS_RATES,
    FaultPlan,
    FaultSite,
    main as chaos_main,
    run_chaos,
    run_chaos_case,
)


class TestFaultPlan:
    def test_decisions_replay_across_instances(self):
        keys = [f"job-{i}" for i in range(64)]
        first = FaultPlan(seed=11, rates={FaultSite.WORKER_CRASH: 0.3})
        second = FaultPlan(seed=11, rates={FaultSite.WORKER_CRASH: 0.3})
        decisions_a = [first.fire(FaultSite.WORKER_CRASH, k) for k in keys]
        decisions_b = [second.fire(FaultSite.WORKER_CRASH, k) for k in keys]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_diverge(self):
        keys = [f"job-{i}" for i in range(64)]
        a = FaultPlan(seed=1, rates={FaultSite.WORKER_CRASH: 0.5})
        b = FaultPlan(seed=2, rates={FaultSite.WORKER_CRASH: 0.5})
        assert ([a.fire(FaultSite.WORKER_CRASH, k) for k in keys]
                != [b.fire(FaultSite.WORKER_CRASH, k) for k in keys])

    def test_occurrence_index_gives_fresh_decisions(self):
        # Same (site, key) consulted repeatedly draws independent
        # decisions — "crash the first execution but not the retry".
        plan = FaultPlan(seed=5, rates={FaultSite.WORKER_CRASH: 0.5})
        draws = [plan.fire(FaultSite.WORKER_CRASH, "k")
                 for _ in range(32)]
        assert any(draws) and not all(draws)

    def test_rate_bounds(self):
        plan = FaultPlan(seed=0, rates={FaultSite.QUEUE_STALL: 0.0,
                                        FaultSite.POOL_BREAK: 1.0})
        assert not any(plan.fire(FaultSite.QUEUE_STALL, f"k{i}")
                       for i in range(16))
        assert all(plan.fire(FaultSite.POOL_BREAK, f"k{i}")
                   for i in range(16))

    def test_unconfigured_site_never_fires(self):
        plan = FaultPlan(seed=0, rates={FaultSite.WORKER_CRASH: 1.0})
        assert not plan.fire(FaultSite.WORKER_HANG, "k")

    def test_max_fires_budget(self):
        plan = FaultPlan(seed=0, rates={FaultSite.WORKER_CRASH: 1.0},
                         max_fires=3)
        fired = sum(plan.fire(FaultSite.WORKER_CRASH, f"k{i}")
                    for i in range(10))
        assert fired == 3
        assert plan.injected == {"worker_crash": 3}

    def test_worker_fault_crash_takes_precedence(self):
        plan = FaultPlan(seed=0, rates={FaultSite.WORKER_CRASH: 1.0,
                                        FaultSite.WORKER_HANG: 1.0})
        assert plan.worker_fault("key", 1) == "crash"
        hang_only = FaultPlan(seed=0,
                              rates={FaultSite.WORKER_HANG: 1.0})
        assert hang_only.worker_fault("key", 1) == "hang"
        quiet = FaultPlan(seed=0)
        assert quiet.worker_fault("key", 1) is None

    def test_schedule_log_is_replay_material(self):
        plan = FaultPlan(seed=0, rates={FaultSite.DISK_WRITE_ERROR: 1.0})
        plan.fire(FaultSite.DISK_WRITE_ERROR, "cache-key")
        log = plan.schedule()
        assert log == [{"site": "disk_write_error", "key": "cache-key",
                        "occurrence": 0}]
        json.dumps(log)  # must be artifact-serializable

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(rates={"not_a_site": 0.5})
        with pytest.raises(ValueError):
            FaultPlan(rates={FaultSite.WORKER_CRASH: 1.5})

    def test_chaos_rates_cover_every_site(self):
        assert set(CHAOS_RATES) == set(FaultSite)


class TestChaosDriver:
    def test_single_case_invariants_hold(self):
        report, plan = run_chaos_case(12345, workers=1,
                                      job_timeout=0.5)
        assert report.ok, "\n".join(str(f) for f in report.failures)
        assert report.jobs > 0
        assert report.statuses

    def test_multi_case_aggregation(self):
        report = run_chaos(seed=9, cases=2, workers=1, job_timeout=0.5)
        assert report.ok, "\n".join(str(f) for f in report.failures)
        assert report.cases == 2
        assert report.jobs >= 2 * 3  # >= 3 jobs per case by construction

    def test_cli_smoke(self, capsys):
        assert chaos_main(["--seed", "4", "--cases", "1"]) == 0
        out = capsys.readouterr().out
        assert "chaos: 1 cases" in out
        assert "all invariants held" in out

    def test_cli_single_case_replay(self, capsys):
        assert chaos_main(["--case-seed", "12345"]) == 0
        out = capsys.readouterr().out
        assert "fault schedule:" in out
