"""Smoke tests for the schedule/payload fuzzer (fixed seeds).

The heavier sweep runs as the CI ``fuzz`` job; here a small fixed-seed
run asserts the invariants hold and the harness itself behaves
deterministically.
"""

from repro.testing.fuzz import (
    build_rollback_case,
    main,
    run_case,
    run_fuzz,
)

import random

from repro.ir.printer import print_op


class TestFuzzInvariants:
    def test_fixed_seed_run_holds_all_invariants(self):
        report = run_fuzz(seed=0, cases=50)
        assert report.ok, report.render()
        assert report.outcomes.get("crash", 0) == 0
        assert report.cases == 50

    def test_outcomes_cover_failure_space(self):
        """Across a few hundred cases the generator must exercise both
        success and failure paths, or the fuzzing proves nothing."""
        report = run_fuzz(seed=1, cases=200)
        assert report.ok, report.render()
        assert report.outcomes["success"] > 0
        assert report.outcomes["silenceable"] > 0

    def test_run_case_is_deterministic(self):
        outcome1, failures1 = run_case(4242)
        outcome2, failures2 = run_case(4242)
        assert not failures1 and not failures2
        assert (outcome1.kind, outcome1.message) == \
            (outcome2.kind, outcome2.message)
        assert outcome1.payload_print == outcome2.payload_print

    def test_rollback_case_shape(self):
        payload, script = build_rollback_case(random.Random(7))
        assert payload.name == "builtin.module"
        alts = [op for op in script.walk()
                if op.name == "transform.alternatives"]
        assert len(alts) >= 1
        # Region 2 of the outermost alternatives is the empty fallback.
        assert not alts[0].regions[1].entry_block.ops
        print_op(payload)  # payload is printable (verifies in module())


class TestDifferentialFuzz:
    def test_differential_invariants_hold(self):
        report = run_fuzz(seed=5, cases=60, differential=True)
        assert report.ok, report.render()

    def test_oracle_sees_a_real_dynamic_invalidation(self):
        """Case-seed 40 dynamically dies with a handle-invalidation
        error (verified offline): the soundness oracle must accept it —
        i.e. the static analysis predicted the invalidation."""
        outcome, failures = run_case(40, differential=True)
        assert outcome.kind == "definite"
        assert "invalidated by" in outcome.message
        assert not failures, failures

    def test_generator_emits_use_after_consume_chains(self):
        """The closing consume-then-use chain keeps the soundness
        oracle exercised: dynamic invalidation errors must actually
        occur across a modest sweep, or the oracle proves nothing."""
        from repro.testing.fuzz import _build_case, _interpret

        hits = 0
        for case_seed in range(150):
            payload, script, _rollback, _before = _build_case(case_seed)
            outcome = _interpret(payload, script)
            if outcome.kind == "definite" \
                    and "invalidated by" in outcome.message:
                hits += 1
        assert hits >= 3


class TestFuzzCli:
    def test_cli_smoke(self, capsys):
        assert main(["--seed", "3", "--cases", "20"]) == 0
        out = capsys.readouterr().out
        assert "fuzz: 20 cases" in out
        assert "all invariants held" in out

    def test_cli_single_case(self, capsys):
        assert main(["--case-seed", "1000044"]) == 0
        assert "case-seed 1000044" in capsys.readouterr().out

    def test_cli_differential_smoke(self, capsys):
        assert main(["--seed", "6", "--cases", "20",
                     "--differential"]) == 0
        assert "all invariants held" in capsys.readouterr().out
