"""The textual schedules shipped under examples/schedules/ must work."""

import pathlib

import pytest

from repro.ir.parser import parse
from repro.tools import transform_opt

SCHEDULES_DIR = (
    pathlib.Path(__file__).resolve().parent.parent
    / "examples" / "schedules"
)


@pytest.mark.skipif(not SCHEDULES_DIR.exists(),
                    reason="schedules directory not present")
class TestShippedSchedules:
    def test_files_parse(self):
        for path in SCHEDULES_DIR.glob("*.mlir"):
            parse(path.read_text(), str(path)).verify()

    def test_fig8_schedule_applies_to_resnet_payload(self):
        payload = (SCHEDULES_DIR / "resnet_layer.mlir").read_text()
        schedule = (SCHEDULES_DIR / "fig8_schedule.mlir").read_text()
        output = transform_opt(payload, schedule)
        assert '"func.call"' in output
        assert "libxsmm_smm_32x32x256" in output

    def test_comments_are_skipped_by_the_lexer(self):
        op = parse("// leading comment\n"
                   '"test.op"() : () -> ()  // trailing\n')
        assert op.name == "test.op"
