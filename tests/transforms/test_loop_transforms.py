"""Tests for loop transformations, validated against the interpreter.

Every transformation must preserve program semantics: we run the
original and the transformed matmul through the reference interpreter
and compare buffers (also as hypothesis properties over sizes).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.execution.interpreter import PayloadInterpreter
from repro.execution.workloads import build_matmul_module, reference_matmul
from repro.transforms import (
    LoopTransformError,
    fuse_sibling_loops,
    hoist_loop_invariants_to,
    interchange_loops,
    split_loop,
    tile_loop,
    tile_loop_nest,
    unroll_loop,
)


def first_loop(module):
    return next(module.walk_ops("scf.for"))


def loops_of(module):
    return [op for op in module.walk() if op.name == "scf.for"]


def run_matmul(module, m, n, k, seed=0):
    a, b, c, expected = reference_matmul(m, n, k, seed)
    PayloadInterpreter(module).run("matmul", a, b, c)
    return c, expected


class TestSplit:
    def test_split_trip_counts(self):
        module = build_matmul_module(10, 4, 4)
        main, rest = split_loop(first_loop(module), 4)
        assert main.trip_count() == 8
        assert rest.trip_count() == 2
        module.verify()

    def test_split_preserves_semantics(self):
        module = build_matmul_module(10, 4, 4)
        split_loop(first_loop(module), 4)
        c, expected = run_matmul(module, 10, 4, 4)
        assert np.allclose(c, expected)

    def test_split_divisible_gives_empty_rest(self):
        module = build_matmul_module(8, 4, 4)
        main, rest = split_loop(first_loop(module), 4)
        assert main.trip_count() == 8
        assert rest.trip_count() == 0

    def test_split_requires_positive_divisor(self):
        module = build_matmul_module(8, 4, 4)
        with pytest.raises(LoopTransformError):
            split_loop(first_loop(module), 0)

    def test_split_requires_constant_bounds(self):
        from repro.dialects import arith, builtin, func, scf
        from repro.ir import Builder, INDEX

        module = builtin.module()
        f = func.func("f", [INDEX])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        zero = arith.index_constant(builder, 0)
        one = arith.index_constant(builder, 1)
        loop = scf.for_(builder, zero, f.body.args[0], one)
        scf.yield_(Builder.at_end(loop.body))
        func.return_(builder)
        with pytest.raises(LoopTransformError, match="constant"):
            split_loop(loop, 4)

    def test_split_threads_iter_args(self):
        from repro.dialects import arith, builtin, func, scf
        from repro.ir import Builder, F64

        module = builtin.module()
        f = func.func("sum", [], [F64])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 10)
        step = arith.index_constant(builder, 1)
        init = arith.constant(builder, 0.0, F64)
        one = arith.constant(builder, 1.0, F64)
        loop = scf.for_(builder, lb, ub, step, [init])
        body = Builder.at_end(loop.body)
        updated = arith.addf(body, loop.iter_args[0], one)
        scf.yield_(body, [updated])
        func.return_(builder, [loop.results[0]])
        main, rest = split_loop(loop, 4)
        module.verify()
        result = PayloadInterpreter(module).run("sum")
        assert result == [10.0]


class TestTile:
    def test_tile_structure(self):
        module = build_matmul_module(8, 4, 4)
        outer, inner = tile_loop(first_loop(module), 4)
        assert outer.trip_count() == 2
        assert inner.trip_count() == 4
        module.verify()

    def test_tile_preserves_semantics(self):
        module = build_matmul_module(8, 4, 4)
        tile_loop(first_loop(module), 4)
        c, expected = run_matmul(module, 8, 4, 4)
        assert np.allclose(c, expected)

    def test_tile_requires_divisible(self):
        module = build_matmul_module(10, 4, 4)
        with pytest.raises(LoopTransformError, match="divisible"):
            tile_loop(first_loop(module), 4)

    def test_tile_nest(self):
        module = build_matmul_module(8, 8, 4)
        tiles, points = tile_loop_nest(first_loop(module), [4, 4])
        assert len(tiles) == 2 and len(points) == 2
        module.verify()
        c, expected = run_matmul(module, 8, 8, 4)
        assert np.allclose(c, expected)

    def test_tile_nest_zero_size_skips_dimension(self):
        module = build_matmul_module(8, 8, 4)
        tiles, points = tile_loop_nest(first_loop(module), [4, 0])
        assert len(tiles) == 2 and len(points) == 1
        c, expected = run_matmul(module, 8, 8, 4)
        assert np.allclose(c, expected)

    def test_tile_nest_imperfect_rejected(self):
        module = build_matmul_module(8, 8, 4)
        # Depth 4 does not exist (only i, j, k).
        with pytest.raises(LoopTransformError, match="perfect"):
            tile_loop_nest(first_loop(module), [2, 2, 2, 2])


class TestUnroll:
    def test_full_unroll_erases_loop(self):
        module = build_matmul_module(4, 2, 2)
        loops = loops_of(module)
        unroll_loop(loops[-1], full=True)  # innermost (k) loop
        module.verify()
        assert len(loops_of(module)) == 2
        c, expected = run_matmul(module, 4, 2, 2)
        assert np.allclose(c, expected)

    def test_partial_unroll(self):
        module = build_matmul_module(8, 2, 2)
        unroll_loop(first_loop(module), factor=4)
        module.verify()
        new_outer = first_loop(module)
        assert new_outer.trip_count() == 2
        c, expected = run_matmul(module, 8, 2, 2)
        assert np.allclose(c, expected)

    def test_unroll_by_one_is_noop(self):
        module = build_matmul_module(4, 2, 2)
        before = len(loops_of(module))
        unroll_loop(first_loop(module), factor=1)
        assert len(loops_of(module)) == before

    def test_partial_unroll_requires_divisible(self):
        module = build_matmul_module(10, 2, 2)
        with pytest.raises(LoopTransformError, match="divisible"):
            unroll_loop(first_loop(module), factor=4)

    def test_unroll_requires_factor_or_full(self):
        module = build_matmul_module(4, 2, 2)
        with pytest.raises(LoopTransformError):
            unroll_loop(first_loop(module))


class TestInterchange:
    def test_swaps_bounds_and_ivs(self):
        module = build_matmul_module(4, 8, 2)
        i_loop, j_loop, _k = loops_of(module)
        interchange_loops(i_loop, j_loop)
        module.verify()
        assert i_loop.trip_count() == 8  # now iterates j's domain
        assert j_loop.trip_count() == 4
        c, expected = run_matmul(module, 4, 8, 2)
        assert np.allclose(c, expected)

    def test_requires_directly_nested(self):
        module = build_matmul_module(4, 4, 4)
        i_loop, _j, k_loop = loops_of(module)
        with pytest.raises(LoopTransformError, match="nested"):
            interchange_loops(i_loop, k_loop)


class TestHoist:
    def test_hoists_invariant_before_loop(self):
        from repro.execution.workloads import build_uneven_loop_module

        module = build_uneven_loop_module()
        loops = loops_of(module)
        outer = loops[0]
        count = hoist_loop_invariants_to(outer)
        assert count >= 3  # c1, i bounds constants
        module.verify()

    def test_hoist_to_function_entry(self):
        from repro.execution.workloads import build_uneven_loop_module

        module = build_uneven_loop_module()
        function = [
            op for op in module.walk_ops("func.func")
            if not op.is_declaration
        ][0]
        outer = loops_of(module)[0]
        hoist_loop_invariants_to(outer, function)
        module.verify()
        first_ops = function.body.ops[:3]
        assert all(op.name == "arith.constant" for op in first_ops)


class TestFuse:
    def build_two_loops(self):
        from repro.dialects import arith, builtin, func, memref as md, scf
        from repro.ir import Builder, F64
        from repro.ir.types import memref

        module = builtin.module()
        f = func.func("f", [memref(8, element_type=F64),
                            memref(8, element_type=F64)])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 8)
        step = arith.index_constant(builder, 1)
        value = arith.constant(builder, 1.0, F64)
        first = scf.for_(builder, lb, ub, step)
        fb = Builder.at_end(first.body)
        md.store(fb, value, f.body.args[0], [first.induction_var])
        scf.yield_(fb)
        second = scf.for_(builder, lb, ub, step)
        sb = Builder.at_end(second.body)
        md.store(sb, value, f.body.args[1], [second.induction_var])
        scf.yield_(sb)
        func.return_(builder)
        return module, f, first, second

    def test_fuses_adjacent_identical_loops(self):
        module, f, first, second = self.build_two_loops()
        fused = fuse_sibling_loops(first, second)
        module.verify()
        loops = loops_of(module)
        assert loops == [fused]
        stores = [
            op for op in fused.walk() if op.name == "memref.store"
        ]
        assert len(stores) == 2

    def test_fused_semantics(self):
        module, _f, first, second = self.build_two_loops()
        fuse_sibling_loops(first, second)
        a = np.zeros(8)
        b = np.zeros(8)
        PayloadInterpreter(module).run("f", a, b)
        assert (a == 1.0).all() and (b == 1.0).all()


# ---------------------------------------------------------------------------
# Property-based semantic preservation
# ---------------------------------------------------------------------------

sizes = st.integers(min_value=1, max_value=6)


@settings(max_examples=15, deadline=None)
@given(m=st.integers(2, 9), divisor=st.integers(1, 5))
def test_split_always_preserves_matmul(m, divisor):
    module = build_matmul_module(m, 3, 3)
    split_loop(first_loop(module), divisor)
    module.verify()
    a, b, c, expected = reference_matmul(m, 3, 3, seed=m)
    PayloadInterpreter(module).run("matmul", a, b, c)
    assert np.allclose(c, expected)


@settings(max_examples=15, deadline=None)
@given(m=st.sampled_from([4, 6, 8, 12]), n=sizes, k=sizes,
       tile=st.sampled_from([1, 2]))
def test_tile_always_preserves_matmul(m, n, k, tile):
    module = build_matmul_module(m, n, k)
    tile_loop(first_loop(module), tile * 2 if m % (tile * 2) == 0 else 1)
    module.verify()
    a, b, c, expected = reference_matmul(m, n, k, seed=n)
    PayloadInterpreter(module).run("matmul", a, b, c)
    assert np.allclose(c, expected)


@settings(max_examples=10, deadline=None)
@given(m=st.sampled_from([4, 8]), factor=st.sampled_from([2, 4]))
def test_unroll_always_preserves_matmul(m, factor):
    module = build_matmul_module(m, 3, 3)
    unroll_loop(first_loop(module), factor=factor)
    module.verify()
    a, b, c, expected = reference_matmul(m, 3, 3, seed=m + factor)
    PayloadInterpreter(module).run("matmul", a, b, c)
    assert np.allclose(c, expected)


@settings(max_examples=10, deadline=None)
@given(m=st.sampled_from([4, 8]), n=st.sampled_from([4, 8]))
def test_split_then_tile_composition(m, n):
    """The paper's canonical composition: split, then tile both parts."""
    module = build_matmul_module(m + 1, n, 3)
    main, rest = split_loop(first_loop(module), 4)
    if main.trip_count():
        tile_loop(main, 4)
    unroll_loop(rest, full=True)
    module.verify()
    a, b, c, expected = reference_matmul(m + 1, n, 3, seed=m * n)
    PayloadInterpreter(module).run("matmul", a, b, c)
    assert np.allclose(c, expected)
