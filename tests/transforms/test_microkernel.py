"""Tests for matmul matching and microkernel library substitution."""

import numpy as np
import pytest

from repro.execution.interpreter import PayloadInterpreter
from repro.execution.workloads import build_matmul_module, reference_matmul
from repro.transforms import (
    LoopTransformError,
    MicrokernelLibrary,
    match_matmul_nest,
    replace_with_library_call,
)


def first_loop(module):
    return next(module.walk_ops("scf.for"))


class TestMatch:
    def test_matches_canonical_matmul(self):
        module = build_matmul_module(4, 8, 16)
        pattern = match_matmul_nest(first_loop(module))
        assert (pattern.m, pattern.n, pattern.k) == (4, 8, 16)
        assert pattern.flops == 2 * 4 * 8 * 16

    def test_identifies_accumulator(self):
        module = build_matmul_module(4, 4, 4)
        f = next(module.walk_ops("func.func"))
        pattern = match_matmul_nest(first_loop(module))
        assert pattern.c is f.body.args[2]
        assert {id(pattern.a), id(pattern.b)} == {
            id(f.body.args[0]), id(f.body.args[1])
        }

    def test_rejects_shallow_nest(self):
        from repro.dialects import arith, builtin, func, scf
        from repro.ir import Builder

        module = builtin.module()
        f = func.func("f", [])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 4)
        step = arith.index_constant(builder, 1)
        loop = scf.for_(builder, lb, ub, step)
        scf.yield_(Builder.at_end(loop.body))
        func.return_(builder)
        with pytest.raises(LoopTransformError):
            match_matmul_nest(loop)

    def test_rejects_non_matmul_body(self):
        module = build_matmul_module(4, 4, 4)
        loop = first_loop(module)
        # Remove the store: no longer a matmul shape.
        innermost = [op for op in module.walk()
                     if op.name == "scf.for"][-1]
        store = [op for op in innermost.body.ops
                 if op.name == "memref.store"][0]
        store.erase()
        with pytest.raises(LoopTransformError, match="matmul"):
            match_matmul_nest(loop)


class TestLibrary:
    def test_supports(self):
        library = MicrokernelLibrary(max_mn=64, max_k=512, alignment=4)
        assert library.find_kernel(32, 32, 256) == \
            "libxsmm_smm_32x32x256"
        assert library.find_kernel(100, 4, 4) is None  # m too large
        assert library.find_kernel(6, 4, 4) is None  # misaligned
        assert library.find_kernel(4, 4, 1024) is None  # k too large

    def test_replace_creates_declaration_and_call(self):
        module = build_matmul_module(32, 32, 32)
        call = replace_with_library_call(first_loop(module))
        module.verify()
        assert call.name == "func.call"
        assert call.attr("microkernel") is not None
        from repro.ir.context import SymbolTable

        declaration = SymbolTable(module).lookup("libxsmm_smm_32x32x32")
        assert declaration is not None
        assert declaration.is_declaration

    def test_replace_fails_silenceably_when_unsupported(self):
        module = build_matmul_module(100, 4, 4)
        with pytest.raises(LoopTransformError, match="no kernel"):
            replace_with_library_call(first_loop(module))
        # Payload untouched (silenceable semantics).
        assert len(list(module.walk_ops("scf.for"))) == 3

    def test_declaration_reused_across_calls(self):
        from repro.ir.context import SymbolTable

        module = build_matmul_module(16, 16, 16)
        replace_with_library_call(first_loop(module))
        # Second function with the same shapes.
        from repro.execution.workloads import build_matmul_module as bm

        other = bm(16, 16, 16, function_name="matmul2")
        second_func = next(other.walk_ops("func.func"))
        other.body.remove(second_func)
        module.body.append(second_func)
        replace_with_library_call(first_loop(second_func))
        declarations = [
            name for name in SymbolTable(module).symbols()
            if name.startswith("libxsmm")
        ]
        assert declarations == ["libxsmm_smm_16x16x16"]

    def test_microkernel_call_executes_as_matmul(self):
        module = build_matmul_module(8, 8, 8)
        replace_with_library_call(module and first_loop(module))
        a, b, c, expected = reference_matmul(8, 8, 8)
        PayloadInterpreter(module).run("matmul", a, b, c)
        assert np.allclose(c, expected)

    def test_tiled_replacement_uses_tile_subviews(self):
        """After tiling, the kernel must see subviews at the tile
        offsets, not the full matrices (regression test)."""
        from repro.transforms import tile_loop_nest

        module = build_matmul_module(16, 16, 8)
        tiles, points = tile_loop_nest(first_loop(module), [8, 8])
        call = replace_with_library_call(points[0])
        assert call.attr("callee").name == "libxsmm_smm_8x8x8"
        # The call's operands are subviews, created right before it.
        assert all(
            operand.defining_op() is not None
            and operand.defining_op().name == "memref.subview"
            for operand in call.operands
        )
        module.verify()
        a, b, c, expected = reference_matmul(16, 16, 8, seed=3)
        PayloadInterpreter(module).run("matmul", a, b, c)
        assert np.allclose(c, expected)

    def test_tiled_pattern_reports_tile_dims(self):
        from repro.transforms import tile_loop_nest

        module = build_matmul_module(16, 16, 8)
        _tiles, points = tile_loop_nest(first_loop(module), [4, 8])
        pattern = match_matmul_nest(points[0])
        assert (pattern.m, pattern.n, pattern.k) == (4, 8, 8)
        assert pattern.is_tiled


class TestLinalgUtils:
    def test_generalize_matmul(self):
        from repro.dialects import builtin, func, linalg, tensor as td
        from repro.ir import Builder
        from repro.ir.types import tensor
        from repro.transforms import generalize_named_op

        module = builtin.module()
        t = tensor(4, 4)
        f = func.func("f", [t, t, t], [t])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        matmul = linalg.matmul(builder, *f.body.args, [t])
        func.return_(builder, [matmul.results[0]])
        generic = generalize_named_op(matmul)
        assert generic.name == "linalg.generic"
        assert generic.attr("generalized_from").value == "linalg.matmul"
        body_names = [op.name for op in generic.body.ops]
        assert "arith.mulf" in body_names and "arith.addf" in body_names

    def test_lower_matmul_to_loops(self):
        from repro.dialects import builtin, func, linalg
        from repro.ir import Builder
        from repro.ir.types import memref
        from repro.transforms import lower_linalg_to_loops

        module = builtin.module()
        f = func.func("matmul", [memref(4, 8), memref(8, 4),
                                 memref(4, 4)])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        matmul = linalg.matmul(builder, *f.body.args)
        func.return_(builder)
        loops = lower_linalg_to_loops(matmul)
        module.verify()
        assert len(loops) == 3
        assert [l.trip_count() for l in loops] == [4, 4, 8]
        # The lowered form is a recognisable matmul again.
        pattern = match_matmul_nest(loops[0])
        assert (pattern.m, pattern.n, pattern.k) == (4, 4, 8)

    def test_lower_requires_memrefs(self):
        from repro.dialects import builtin, func, linalg, tensor as td
        from repro.ir import Builder
        from repro.ir.types import tensor
        from repro.transforms import lower_linalg_to_loops

        module = builtin.module()
        t = tensor(4, 4)
        f = func.func("f", [t, t, t], [t])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        matmul = linalg.matmul(builder, *f.body.args, [t])
        func.return_(builder, [matmul.results[0]])
        with pytest.raises(LoopTransformError, match="memref"):
            lower_linalg_to_loops(matmul)
