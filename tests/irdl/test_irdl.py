"""Tests for IRDL definitions and generated constraint verifiers."""

import pytest

from repro.dialects import arith, memref as memref_dialect
from repro.ir import Block, Builder, I32, Operation
from repro.ir.attributes import DenseIntAttr, IntegerAttr
from repro.ir.types import DYNAMIC, memref
from repro.irdl import (
    AttributeDef,
    Cardinality,
    IntAttrConstraint,
    MEMREF_SUBVIEW,
    MEMREF_SUBVIEW_CONSTRAINED,
    OperandDef,
    OperationDef,
    ResultDef,
    TypeNameConstraint,
    lookup_def,
    verify_op,
)
from repro.irdl.library import verify_against_spec


@pytest.fixture
def builder():
    return Builder.at_end(Block())


def make_subview(builder, offsets, sizes, strides):
    ref = memref_dialect.alloc(builder, memref(16, 16))
    return memref_dialect.subview(
        builder, ref, offsets, sizes, strides
    ).defining_op()


class TestCardinality:
    def test_exactly(self):
        c = Cardinality.exactly(2)
        assert c.check(2) is None
        assert c.check(1) is not None
        assert c.check(3) is not None

    def test_zero(self):
        c = Cardinality.zero()
        assert c.check(0) is None
        assert "at most 0" in c.check(1)

    def test_unbounded(self):
        c = Cardinality(min=1)
        assert c.check(100) is None
        assert c.check(0) is not None


class TestConstraints:
    def test_type_name(self):
        constraint = TypeNameConstraint("MemRefType")
        assert constraint.check(memref(4)) is None
        assert constraint.check(I32) is not None

    def test_int_attr_bounds(self):
        constraint = IntAttrConstraint(min_value=0, max_value=10)
        assert constraint.check(IntegerAttr(5)) is None
        assert constraint.check(IntegerAttr(-1)) is not None
        assert constraint.check(IntegerAttr(11)) is not None


class TestGeneratedVerifier:
    def test_missing_attribute_reported(self):
        definition = OperationDef(
            "test.op", attributes=[AttributeDef("size")]
        )
        op = Operation.create("test.op")
        violations = verify_op(op, definition)
        assert any("missing required attribute" in str(v)
                   for v in violations)

    def test_optional_attribute_ok(self):
        definition = OperationDef(
            "test.op",
            attributes=[AttributeDef("size", optional=True)],
        )
        assert verify_op(Operation.create("test.op"), definition) == []

    def test_fixed_operand_type_checked(self):
        definition = OperationDef(
            "test.op",
            operands=[OperandDef("in", TypeNameConstraint("MemRefType"))],
        )
        scalar = Operation.create("test.c", result_types=[I32])
        op = Operation.create("test.op", operands=[scalar.result])
        violations = verify_op(op, definition)
        assert any("expected MemRefType" in str(v) for v in violations)

    def test_too_few_operands(self):
        definition = OperationDef(
            "test.op", operands=[OperandDef("a"), OperandDef("b")]
        )
        violations = verify_op(Operation.create("test.op"), definition)
        assert violations

    def test_extra_operands_without_variadic(self):
        definition = OperationDef("test.op", operands=[OperandDef("a")])
        value = Operation.create("test.c", result_types=[I32]).result
        op = Operation.create("test.op", operands=[value, value])
        assert any(
            "unexpected extra" in str(v)
            for v in verify_op(op, definition)
        )


class TestSubviewDefs:
    """The Fig. 3 pair: plain vs constrained memref.subview."""

    def test_registered(self):
        assert lookup_def("memref.subview") is MEMREF_SUBVIEW
        assert lookup_def("memref.subview.constr") is \
            MEMREF_SUBVIEW_CONSTRAINED

    def test_spec_name_keeps_real_op_name(self):
        """'we do not actually introduce a new operation' (Fig. 3)."""
        assert MEMREF_SUBVIEW_CONSTRAINED.op_name == "memref.subview"
        assert MEMREF_SUBVIEW_CONSTRAINED.name == "memref.subview.constr"

    def test_plain_def_accepts_dynamic_subview(self, builder):
        offset = arith.index_constant(builder, 2)
        subview = make_subview(builder, [offset, 0], [4, 4], [1, 1])
        assert verify_op(subview, MEMREF_SUBVIEW) == []

    def test_constrained_rejects_dynamic_subview(self, builder):
        offset = arith.index_constant(builder, 2)
        subview = make_subview(builder, [offset, 0], [4, 4], [1, 1])
        violations = verify_op(subview, MEMREF_SUBVIEW_CONSTRAINED)
        assert violations
        assert any("at most 0" in str(v) for v in violations)

    def test_constrained_rejects_nonzero_static_offsets(self, builder):
        subview = make_subview(builder, [4, 0], [4, 4], [1, 1])
        violations = verify_op(subview, MEMREF_SUBVIEW_CONSTRAINED)
        assert any("zero offsets" in str(v) for v in violations)

    def test_constrained_accepts_trivial_subview(self, builder):
        subview = make_subview(builder, [0, 0], [4, 4], [1, 1])
        assert verify_op(subview, MEMREF_SUBVIEW_CONSTRAINED) == []

    def test_semantic_escape_hatch(self, builder):
        """The CPPConstraint analog: rank consistency of dense attrs."""
        ref = memref_dialect.alloc(builder, memref(16,))
        bad = Operation.create(
            "memref.subview",
            operands=[ref],
            result_types=[memref(4,)],
            attributes={
                "static_offsets": DenseIntAttr((0, 0)),  # rank 2!
                "static_sizes": DenseIntAttr((4,)),
                "static_strides": DenseIntAttr((1,)),
            },
        )
        violations = verify_op(bad, MEMREF_SUBVIEW)
        assert any("ranks differ" in str(v) for v in violations)

    def test_verify_against_spec_unknown_passes(self, builder):
        op = Operation.create("test.whatever")
        assert verify_against_spec(op, "no.such.spec") == []


class TestConstrainedCopy:
    def test_copy_overrides_named_declarations(self):
        base = OperationDef(
            "test.op",
            operands=[OperandDef("data"),
                      OperandDef("extras", variadic=True)],
        )
        constrained = base.constrained_copy(
            extras=OperandDef("extras", variadic=True,
                              cardinality=Cardinality.zero()),
        )
        assert constrained.name == "test.op.constr"
        value = Operation.create("test.c", result_types=[I32]).result
        ok = Operation.create("test.op", operands=[value])
        bad = Operation.create("test.op", operands=[value, value])
        assert verify_op(ok, constrained) == []
        assert verify_op(bad, constrained)

    def test_base_def_unchanged_by_copy(self):
        value = Operation.create("test.c", result_types=[I32]).result
        op = Operation.create(
            "memref.subview",
            operands=[
                memref_dialect.alloc(
                    Builder.at_end(Block()), memref(8,)
                ),
                value,
            ],
            result_types=[memref(4,)],
            attributes={
                "static_offsets": DenseIntAttr((DYNAMIC,)),
                "static_sizes": DenseIntAttr((4,)),
                "static_strides": DenseIntAttr((1,)),
            },
        )
        assert verify_op(op, MEMREF_SUBVIEW) == []
