"""Tests for the profiling layer: counters, timers, and the report."""

from repro.dialects import builtin, func
from repro.ir import Builder
from repro.profiling import Profiler
from repro.rewrite.greedy import apply_patterns_greedily
from repro.rewrite.pattern import pattern


class TestCounters:
    def test_pattern_stats_accumulate(self):
        profiler = Profiler()
        profiler.record_pattern("p", applied=True, seconds=0.25)
        profiler.record_pattern("p", applied=False, seconds=0.75)
        stat = profiler.patterns["p"]
        assert stat.attempts == 2
        assert stat.applies == 1
        assert stat.seconds == 1.0
        assert stat.hit_rate == 0.5

    def test_transform_and_pass_stats(self):
        profiler = Profiler()
        profiler.record_transform("transform.foo", 0.1)
        profiler.record_transform("transform.foo", 0.2)
        with profiler.time_pass("canonicalize"):
            pass
        assert profiler.transforms["transform.foo"].count == 2
        assert profiler.passes["canonicalize"].count == 1

    def test_invalidation_fanout(self):
        profiler = Profiler()
        profiler.record_invalidation(1)
        profiler.record_invalidation(3)
        assert profiler.invalidation.events == 2
        assert profiler.invalidation.handles_invalidated == 4
        assert profiler.invalidation.mean_fanout == 2.0

    def test_reset(self):
        profiler = Profiler()
        profiler.record_pattern("p", applied=True, seconds=0.1)
        profiler.record_driver_run()
        profiler.reset()
        assert not profiler.patterns
        assert profiler.worklist.runs == 0


class TestReport:
    def test_empty_report(self):
        assert "(nothing recorded)" in Profiler().render()

    def test_sections_render(self):
        profiler = Profiler()
        profiler.record_transform("transform.foo", 0.001)
        profiler.record_pattern("my-pat", applied=True, seconds=0.002)
        profiler.record_pass("canonicalize", 0.003)
        profiler.record_worklist_seed(5)
        profiler.record_driver_run()
        profiler.record_invalidation(2)
        report = profiler.render()
        assert "Transform ops" in report
        assert "transform.foo" in report
        assert "my-pat" in report
        assert "canonicalize" in report
        assert "Greedy-driver worklist" in report
        assert "Handle invalidation" in report


class TestDriverIntegration:
    def test_greedy_driver_records_worklist_and_patterns(self):
        @pattern("test.a", label="a-to-b-profiled")
        def a_to_b(op, rewriter):
            rewriter.replace_op_with(op, "test.b")
            return True

        module = builtin.module()
        f = func.func("f", [])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        for _ in range(3):
            builder.create("test.a")
        func.return_(builder)

        profiler = Profiler()
        apply_patterns_greedily(module, [a_to_b], profiler=profiler)
        assert profiler.worklist.runs == 1
        assert profiler.worklist.pops >= profiler.worklist.pushes > 0
        stat = profiler.patterns["a-to-b-profiled"]
        assert stat.applies == 3
        assert stat.seconds > 0
        assert "a-to-b-profiled" in profiler.render()
