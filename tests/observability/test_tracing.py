"""Unit tests for the span tracer and the Chrome-trace exporter."""

import json

import pytest

from repro.observability import (
    TRACE_SCHEMA_VERSION,
    Span,
    SpanContext,
    Tracer,
    validate_chrome_trace,
)


class TestSpan:
    def test_dict_roundtrip(self):
        tracer = Tracer()
        span = tracer.start_span("work", attributes={"k": 1})
        tracer.end_span(span, "ok")
        restored = Span.from_dict(span.to_dict())
        assert restored.name == "work"
        assert restored.trace_id == tracer.trace_id
        assert restored.span_id == span.span_id
        assert restored.attributes == {"k": 1}
        assert restored.start == span.start
        assert restored.end == span.end

    def test_context_roundtrip(self):
        context = SpanContext("t" * 16, "s" * 16)
        assert SpanContext.from_dict(context.to_dict()) == context

    def test_end_never_before_start(self):
        tracer = Tracer()
        span = tracer.start_span("clock-step")
        span.start = span.start + 3600.0  # simulate a clock step back
        tracer.end_span(span)
        assert span.end >= span.start

    def test_parent_forms(self):
        tracer = Tracer()
        parent = tracer.start_span("parent")
        by_span = tracer.start_span("a", parent=parent)
        by_context = tracer.start_span("b", parent=parent.context)
        by_id = tracer.start_span("c", parent=parent.span_id)
        assert by_span.parent_id == parent.span_id
        assert by_context.parent_id == parent.span_id
        assert by_id.parent_id == parent.span_id


class TestTracer:
    def test_context_manager_flags_errors(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.spans()
        assert span.status == "error"
        assert "ValueError" in span.attributes["exception"]

    def test_record_absorbs_remote_spans(self):
        engine_side = Tracer()
        parent = engine_side.start_span("dispatch")
        # "Worker process": a tracer seeded with the propagated context.
        context = SpanContext(engine_side.trace_id, parent.span_id)
        worker_side = Tracer(trace_id=context.trace_id)
        child = worker_side.start_span("compile", parent=context)
        worker_side.end_span(child)
        engine_side.end_span(parent)

        engine_side.record(worker_side.to_dicts())
        spans = {s.name: s for s in engine_side.spans()}
        assert spans["compile"].parent_id == parent.span_id
        assert spans["compile"].trace_id == engine_side.trace_id
        assert not validate_chrome_trace(engine_side.export_chrome())

    def test_find(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.end_span(tracer.start_span("x"))
        tracer.end_span(tracer.start_span("y"))
        assert len(tracer.find("x")) == 3
        assert len(tracer.find("y")) == 1


class TestChromeExport:
    def _trace(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        tracer.end_span(child)
        tracer.end_span(root)
        return tracer.export_chrome()

    def test_valid_and_versioned(self):
        trace = self._trace()
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION
        assert all(e["ph"] == "X" for e in trace["traceEvents"])
        assert all(e["ts"] >= 0 and e["dur"] >= 0
                   for e in trace["traceEvents"])

    def test_json_serializable(self):
        json.dumps(self._trace())

    def test_validator_catches_orphans(self):
        trace = self._trace()
        trace["traceEvents"][0]["args"]["parent_id"] = "no-such-span"
        assert any("orphan" in p for p in validate_chrome_trace(trace))

    def test_validator_catches_duplicates(self):
        trace = self._trace()
        trace["traceEvents"][1]["args"]["span_id"] = \
            trace["traceEvents"][0]["args"]["span_id"]
        assert any("duplicate" in p for p in validate_chrome_trace(trace))

    def test_validator_catches_mixed_traces(self):
        trace = self._trace()
        trace["traceEvents"][0]["args"]["trace_id"] = "another"
        assert any("multiple trace ids" in p
                   for p in validate_chrome_trace(trace))

    def test_validator_catches_version_drift(self):
        trace = self._trace()
        trace["otherData"]["schema_version"] = TRACE_SCHEMA_VERSION + 1
        assert any("schema_version" in p
                   for p in validate_chrome_trace(trace))

    def test_write_chrome(self, tmp_path):
        tracer = Tracer()
        tracer.end_span(tracer.start_span("w"))
        out = tmp_path / "trace.json"
        tracer.write_chrome(str(out))
        assert validate_chrome_trace(json.loads(out.read_text())) == []
