"""Unit tests for the unified metrics registry."""

import json
import threading

import pytest

from repro.observability import (
    DEPTH_BUCKETS,
    METRICS_SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    validate_metrics_snapshot,
)


class TestCounterGauge:
    def test_counter_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")


class TestHistogram:
    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=[2.0, 1.0])

    def test_counts_and_exact_summary(self):
        hist = Histogram("h", bounds=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 10.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 15.0
        assert snap["min"] == 0.5
        assert snap["max"] == 10.0
        assert snap["mean"] == pytest.approx(3.75)
        # 3 bounds -> 4 buckets (last = overflow), one sample each.
        assert snap["bucket_counts"] == [1, 1, 1, 1]

    def test_quantiles_are_clamped_estimates(self):
        hist = Histogram("h", bounds=list(DEPTH_BUCKETS))
        for depth in (1, 1, 2, 3, 5, 8):
            hist.observe(depth)
        assert hist.quantile(0.0) >= 1  # clamped to observed min
        assert hist.quantile(1.0) == 8  # clamped to observed max
        assert 1 <= hist.quantile(0.5) <= 5

    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_concurrent_observe_loses_nothing(self):
        hist = Histogram("h")
        threads = [
            threading.Thread(
                target=lambda: [hist.observe(0.01) for _ in range(1000)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 4000
        snap = hist.snapshot()
        assert sum(snap["bucket_counts"]) == 4000


class TestSnapshot:
    def test_versioned_and_valid(self):
        registry = MetricsRegistry()
        registry.counter("service.jobs").inc(3)
        registry.gauge("service.depth").set(2.0)
        registry.histogram("service.seconds").observe(0.05)
        snap = registry.snapshot()
        assert snap["schema_version"] == METRICS_SCHEMA_VERSION
        assert validate_metrics_snapshot(snap) == []
        assert snap["counters"]["service.jobs"] == 3
        assert snap["gauges"]["service.depth"] == 2.0
        assert snap["histograms"]["service.seconds"]["count"] == 1
        json.dumps(snap)

    def test_set_section_maps_kinds(self):
        registry = MetricsRegistry()
        registry.set_section("engine", {
            "submitted": 4,            # int -> counter
            "hit_rate": 0.5,           # float -> gauge
            "degraded": True,          # bool -> gauge
            "diagnostic": "a string",  # ignored
            "nested": {"inner": 2},    # recursed
        })
        snap = registry.snapshot()
        assert snap["counters"]["engine.submitted"] == 4
        assert snap["gauges"]["engine.hit_rate"] == 0.5
        assert snap["gauges"]["engine.degraded"] == 1.0
        assert snap["counters"]["engine.nested.inner"] == 2
        assert "engine.diagnostic" not in snap["counters"]
        assert "engine.diagnostic" not in snap["gauges"]

    def test_validator_catches_drift(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        snap["histograms"]["h"]["bucket_counts"] = [1]
        assert any("bucket_counts" in p
                   for p in validate_metrics_snapshot(snap))
        snap = registry.snapshot()
        del snap["histograms"]["h"]["p99"]
        assert any("p99" in p for p in validate_metrics_snapshot(snap))
        snap = registry.snapshot()
        snap["schema_version"] = 999
        assert any("schema_version" in p
                   for p in validate_metrics_snapshot(snap))
