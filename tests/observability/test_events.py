"""Unit tests for the structured JSONL event log."""

import json

import pytest

from repro.observability import (
    EVENT_TYPES,
    EVENTS_SCHEMA_VERSION,
    EventLog,
    read_events,
    validate_events,
)


class TestEmit:
    def test_record_shape(self):
        log = EventLog()
        record = log.emit("STARTED", job_id="j1", extra=7)
        assert record["v"] == EVENTS_SCHEMA_VERSION
        assert record["event"] == "STARTED"
        assert record["job_id"] == "j1"
        assert record["extra"] == 7
        assert isinstance(record["ts"], float)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            EventLog().emit("EXPLODED", job_id="j1")

    def test_for_job_filters(self):
        log = EventLog()
        log.emit("STARTED", job_id="a")
        log.emit("STARTED", job_id="b")
        log.emit("COMPLETED", job_id="a", status="success")
        assert [r["event"] for r in log.for_job("a")] == \
            ["STARTED", "COMPLETED"]


class TestJsonl:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(str(path)) as log:
            log.emit("ADMITTED", job_id="j", depth=1)
            log.emit("COMPLETED", job_id="j", status="success")
        records = read_events(str(path))
        assert [r["event"] for r in records] == ["ADMITTED", "COMPLETED"]
        assert records == log.records()

    def test_lines_are_flushed_immediately(self, tmp_path):
        # A crashed process must still leave a usable prefix.
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.emit("STARTED", job_id="j")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "STARTED"
        log.close()


class TestValidate:
    def _lifecycle(self):
        return [
            {"v": 1, "ts": 1.0, "event": "ADMITTED", "job_id": "j"},
            {"v": 1, "ts": 2.0, "event": "STARTED", "job_id": "j"},
            {"v": 1, "ts": 3.0, "event": "COMPLETED", "job_id": "j",
             "status": "success"},
        ]

    def test_clean_stream(self):
        assert validate_events(self._lifecycle()) == []

    def test_accepts_raw_jsonl_strings(self):
        lines = [json.dumps(r) for r in self._lifecycle()]
        assert validate_events(lines) == []

    def test_rejects_unknown_event(self):
        records = self._lifecycle()
        records[0]["event"] = "WAT"
        assert any("unknown event" in p for p in validate_events(records))

    def test_rejects_version_drift(self):
        records = self._lifecycle()
        records[0]["v"] = 99
        assert any("v !=" in p for p in validate_events(records))

    def test_rejects_completed_without_status(self):
        records = self._lifecycle()
        del records[2]["status"]
        assert any("COMPLETED without status" in p
                   for p in validate_events(records))

    def test_rejects_double_terminal(self):
        records = self._lifecycle() + [
            {"v": 1, "ts": 4.0, "event": "COMPLETED", "job_id": "j",
             "status": "success"},
        ]
        assert any("terminal" in p for p in validate_events(records))

    def test_event_vocabulary_is_closed(self):
        # The emitter and the validator share one vocabulary; growing
        # it is a deliberate act in events.py, not an emit-site typo.
        assert "COMPLETED" in EVENT_TYPES
        assert "ADMITTED" in EVENT_TYPES
        assert len(EVENT_TYPES) == 14
