"""End-to-end observability of the compile service.

The acceptance surface of the tracing pillar: a pooled batch produces
ONE well-formed trace — engine-side spans and worker-side spans (from
other processes) reassembled with correct parent links — plus a
lifecycle-complete event log and a metrics snapshot whose counters
balance against the engine's terminal states.
"""

import asyncio
import json
import textwrap

from repro.observability import (
    EventLog,
    Tracer,
    read_events,
    validate_chrome_trace,
    validate_events,
    validate_metrics_snapshot,
)
from repro.profiling import Profiler
from repro.service.cache import CompilationCache
from repro.service.engine import CompileEngine, CompileJob
from repro.service.frontier import ServiceFrontier

SCHEDULE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops) {factor = 2 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


def _payload(index):
    trip = 8 + 2 * index  # distinct trip count -> distinct cache key
    return textwrap.dedent(f"""
        "builtin.module"() ({{
          "func.func"() ({{
            %lb = "arith.constant"() {{value = 0 : index}} : () -> index
            %ub = "arith.constant"() {{value = {trip} : index}} : () -> index
            %st = "arith.constant"() {{value = 1 : index}} : () -> index
            "scf.for"(%lb, %ub, %st) ({{
            ^bb0(%i: index):
              %c = "arith.constant"() {{value = 1 : i64}} : () -> i64
              "scf.yield"() : () -> ()
            }}) : (index, index, index) -> ()
            "func.return"() : () -> ()
          }}) {{sym_name = "f{index}", function_type = () -> ()}} : () -> ()
        }}) : () -> ()
    """).strip()


def _jobs(distinct=6, repeats=2):
    payloads = [_payload(i) for i in range(distinct)]
    return [
        CompileJob(payload_text=payloads[i], script_text=SCHEDULE,
                   job_id=f"job-{rep}-{i}")
        for rep in range(repeats)
        for i in range(distinct)
    ]


def _run_pooled_batch(jobs, workers=4):
    tracer = Tracer()
    events = EventLog()
    profiler = Profiler()
    engine = CompileEngine(workers=workers,
                           cache=CompilationCache(capacity=64),
                           tracer=tracer, events=events,
                           profiler=profiler)

    async def go():
        async with ServiceFrontier(engine, max_queue=4) as frontier:
            return await frontier.run(jobs)

    try:
        results = asyncio.run(go())
    finally:
        engine.shutdown()
    return results, tracer, events, profiler, engine


class TestPooledTraceReassembly:
    """The 4-worker concurrency acceptance test."""

    def setup_method(self):
        self.jobs = _jobs()
        (self.results, self.tracer, self.events,
         self.profiler, self.engine) = _run_pooled_batch(self.jobs)
        assert all(r.ok for r in self.results)

    def test_one_well_formed_trace(self):
        trace = self.tracer.export_chrome()
        assert validate_chrome_trace(trace) == []
        # One trace id across spans recorded in 5 different processes.
        assert len({s.trace_id for s in self.tracer.spans()}) == 1

    def test_no_orphan_parents_and_monotonic_spans(self):
        spans = self.tracer.spans()
        ids = {s.span_id for s in spans}
        for span in spans:
            assert span.parent_id is None or span.parent_id in ids, \
                f"{span.name}: orphan parent {span.parent_id}"
            assert span.end is not None and span.end >= span.start, \
                f"{span.name}: end precedes start"

    def test_every_job_has_admission_and_cache_lookup_spans(self):
        by_name = {}
        for span in self.tracer.spans():
            by_name.setdefault(span.name, []).append(span)
        jobs = len(self.jobs)
        assert len(by_name["queue.wait"]) == jobs
        assert len(by_name["engine.job"]) == jobs
        assert len(by_name["cache.lookup"]) == jobs
        for job in self.jobs:
            assert f"job:{job.job_id}" in by_name

    def test_misses_carry_worker_side_transform_spans(self):
        spans = self.tracer.spans()
        by_id = {s.span_id: s for s in spans}
        workers = [s for s in spans if s.name == "worker.compile"]
        executed = self.engine.stats.executed
        assert len(workers) == executed
        # Worker spans were recorded in worker processes...
        engine_pid = next(s.pid for s in spans if s.name == "engine.job")
        assert any(s.pid != engine_pid for s in workers)
        # ...and are parented under this-side dispatch spans.
        for worker in workers:
            assert by_id[worker.parent_id].name == "engine.dispatch"
        # Each executed job interpreted the schedule: one span per
        # top-level transform op, recorded inside the worker.
        interprets = [s for s in spans if s.name == "worker.interpret"]
        assert len(interprets) == executed
        top_level = [s for s in spans if s.name == "transform.sequence"]
        assert len(top_level) == executed

    def test_registry_counters_balance_engine_terminal_states(self):
        snap = self.profiler.registry_snapshot()
        assert validate_metrics_snapshot(snap) == []
        counters = snap["counters"]
        stats = self.engine.stats
        assert counters["service.jobs"] == stats.completed
        by_status = {
            name.rsplit(".", 1)[1]: value
            for name, value in counters.items()
            if name.startswith("service.jobs_by_status.")
        }
        assert sum(by_status.values()) == stats.completed
        terminal = {}
        for result in self.results:
            terminal[result.status.value] = \
                terminal.get(result.status.value, 0) + 1
        assert by_status == terminal
        assert (counters["service.cache_hits"]
                + counters["service.cache_misses"]) == stats.completed
        hist = snap["histograms"]["service.job_seconds"]
        assert hist["count"] == stats.completed

    def test_event_log_lifecycle_per_job(self):
        records = self.events.records()
        assert validate_events(records) == []
        for job in self.jobs:
            stream = [r["event"] for r in self.events.for_job(job.job_id)]
            assert stream[0] == "ADMITTED"
            assert stream[-1] == "COMPLETED"
            assert "STARTED" in stream
            assert "DEQUEUED" in stream
        completed = [r for r in records if r["event"] == "COMPLETED"]
        assert len(completed) == len(self.jobs)
        # Terminal events agree with the results.
        statuses = {r["job_id"]: r["status"] for r in completed}
        for result in self.results:
            assert statuses[result.job_id] == result.status.value


class TestDisabledModeUnchanged:
    def test_no_tracer_no_spans_key_consequences(self):
        # tracer=None / events=None must not change results.
        jobs = _jobs(distinct=2, repeats=1)
        with CompileEngine(workers=0) as engine:
            plain = [engine.run_job(job) for job in jobs]
        results, tracer, _, _, _ = _run_pooled_batch(jobs, workers=2)
        assert [r.output for r in results] == [r.output for r in plain]
        assert tracer.spans()  # and the traced run did record spans


class TestBatchCli:
    def test_trace_events_json_artifacts(self, tmp_path):
        from repro.service.frontier import main

        payload_dir = tmp_path / "payloads"
        payload_dir.mkdir()
        for i in range(4):
            (payload_dir / f"p{i}.mlir").write_text(_payload(i))
        schedule = tmp_path / "unroll.mlir"
        schedule.write_text(SCHEDULE)
        trace_out = tmp_path / "trace.json"
        events_out = tmp_path / "events.jsonl"
        json_out = tmp_path / "metrics.json"

        code = main([
            str(payload_dir), "--schedule", str(schedule),
            "--jobs", "4",
            "--trace-out", str(trace_out),
            "--events-out", str(events_out),
            "--json", str(json_out),
        ])
        assert code == 0

        trace = json.loads(trace_out.read_text())
        assert validate_chrome_trace(trace) == []
        names = [e["name"] for e in trace["traceEvents"]]
        assert names.count("queue.wait") == 4
        assert names.count("worker.compile") == 4
        assert names.count("transform.loop.unroll") == 4

        records = read_events(str(events_out))
        assert validate_events(records) == []
        assert sum(1 for r in records if r["event"] == "COMPLETED") == 4

        metrics = json.loads(json_out.read_text())
        snap = metrics["metrics"]
        assert validate_metrics_snapshot(snap) == []
        # The unified snapshot subsumes the legacy engine/cache dicts.
        assert snap["counters"]["engine.completed"] == 4
        assert "cache.hits" in snap["counters"]
        assert metrics["profiler"]["schema_version"] == 2


class TestOptCli:
    def test_trace_out(self, tmp_path):
        from repro.tools import main

        payload = tmp_path / "p.mlir"
        payload.write_text(_payload(0))
        schedule = tmp_path / "s.mlir"
        schedule.write_text(SCHEDULE)
        trace_out = tmp_path / "trace.json"
        out = tmp_path / "out.mlir"

        code = main([str(payload), "--script", str(schedule),
                     "--trace-out", str(trace_out), "-o", str(out)])
        assert code == 0
        trace = json.loads(trace_out.read_text())
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"transform.sequence", "transform.match_op",
                "transform.loop.unroll"} <= names
