"""Tests for the interprocedural use-after-consume analysis.

Covers the behaviors the old per-op checker got wrong: diagnostics at
``transform.include`` call sites via named-sequence summaries, nested
sequences analyzed exactly once, positional ``foreach`` aliasing, and
alternatives regions analyzed from the pre-op snapshot (a consume in
region 1 does not poison region 2).
"""

from repro.analysis import ERROR, WARNING, analyze_script
from repro.core import dialect as transform
from repro.ir import Block, Builder, Operation


def script_module():
    module = Operation.create("builtin.module", regions=1)
    module.regions[0].add_block()
    return module


class TestInterproceduralConsumption:
    def build_consuming_macro_script(self):
        """A named sequence that consumes its block argument, included
        from the entry sequence which then reuses the passed handle."""
        module = script_module()
        block = module.regions[0].entry_block
        macro, mb, margs = transform.named_sequence("consume_it",
                                                    n_args=1)
        transform.loop_unroll(mb, margs[0], full=True)
        transform.yield_(mb)
        block.append(macro)
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for")
        inc = transform.include(builder, "consume_it", [loop])
        use = transform.print_(builder, loop, "reused")
        transform.yield_(builder)
        block.append(seq)
        return module, inc, use

    def test_diagnostic_at_the_include_call_site(self):
        module, inc, use = self.build_consuming_macro_script()
        issues = analyze_script(module, may_alias=False)
        assert len(issues) == 1
        issue = issues[0]
        # Reported against the *call site*, not the macro body...
        assert issue.consume_op is inc
        assert issue.use_op is use
        assert issue.kind == "call"
        # ... with the in-body consumer attached for the note chain.
        assert issue.via is not None
        assert issue.via.name == "transform.loop.unroll"
        assert "included named sequence" in issue.message

    def test_must_consume_at_top_level_is_an_error(self):
        module, _inc, _use = self.build_consuming_macro_script()
        issues = analyze_script(module, may_alias=False)
        assert issues[0].severity == ERROR

    def test_non_consuming_macro_is_clean(self):
        module = script_module()
        block = module.regions[0].entry_block
        macro, mb, margs = transform.named_sequence("just_look",
                                                    n_args=1)
        transform.annotate(mb, margs[0], "seen")
        transform.yield_(mb)
        block.append(macro)
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for")
        transform.include(builder, "just_look", [loop])
        transform.print_(builder, loop, "still fine")
        transform.yield_(builder)
        block.append(seq)
        assert analyze_script(module, may_alias=False) == []

    def test_recursive_macro_degrades_to_warning(self):
        module = script_module()
        block = module.regions[0].entry_block
        rec, rb, rargs = transform.named_sequence("rec", n_args=1)
        transform.include(rb, "rec", [rargs[0]])
        transform.yield_(rb)
        block.append(rec)
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for")
        transform.include(builder, "rec", [loop])
        transform.print_(builder, loop, "maybe gone")
        transform.yield_(builder)
        block.append(seq)
        issues = analyze_script(module, may_alias=False)
        # The cut-off summary may-consumes every argument: a warning,
        # never a definite error.
        assert issues
        assert all(issue.severity == WARNING for issue in issues)


class TestNestedSequenceSingleAnalysis:
    def test_one_diagnostic_per_defect(self):
        """A defect inside a nested sequence is reported exactly once
        (the old checker analyzed nested sequences both inline and as
        separate roots, duplicating every diagnostic)."""
        seq, builder, root = transform.sequence()
        nested = builder.create("transform.sequence", operands=[root],
                                regions=1)
        body = Block([transform.ANY_OP])
        nested.regions[0].add_block(body)
        nb = Builder.at_end(body)
        loop = transform.match_op(nb, body.args[0], "scf.for",
                                  position="first")
        transform.loop_unroll(nb, loop, full=True)
        use = transform.print_(nb, loop, "boom")
        transform.yield_(nb)
        transform.yield_(builder)
        issues = analyze_script(seq, may_alias=False)
        assert len(issues) == 1
        assert issues[0].use_op is use

    def test_module_wrapping_does_not_duplicate(self):
        module = script_module()
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        module.regions[0].entry_block.append(seq)
        assert len(analyze_script(module, may_alias=False)) == 1


class TestForeachPositionalAliasing:
    def test_multi_arg_foreach_maps_operands_positionally(self):
        """Consuming block arg 0 aliases operand 0 only — the old
        checker related every operand to every argument."""
        seq, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        funcs = transform.match_op(builder, root, "func.func")
        fe = builder.create("transform.foreach",
                            operands=[loops, funcs], regions=1)
        body = Block([transform.ANY_OP, transform.ANY_OP])
        fe.regions[0].add_block(body)
        fb = Builder.at_end(body)
        transform.loop_unroll(fb, body.args[0], full=True)
        transform.yield_(fb)
        use_loops = transform.print_(builder, loops, "consumed")
        transform.print_(builder, funcs, "untouched")
        transform.yield_(builder)
        issues = analyze_script(seq, may_alias=False)
        assert len(issues) == 1
        assert issues[0].use_op is use_loops
        # The loop may run zero times: a warning, not an error.
        assert issues[0].severity == WARNING

    def test_cross_iteration_consumption_is_caught(self):
        seq, builder, root = transform.sequence()
        loops = transform.match_op(builder, root, "scf.for")
        _fe, fb, arg = transform.foreach(builder, loops)
        use = transform.annotate(fb, loops, "peek")
        transform.loop_unroll(fb, arg, full=True)
        transform.yield_(fb)
        transform.yield_(builder)
        issues = analyze_script(seq, may_alias=False)
        # Iteration n consumes the block arg, invalidating the iterated
        # handle; iteration n + 1's use of it is caught by the second
        # analysis pass over the body. (The block arg itself re-binds
        # fresh every iteration, so using *it* stays clean.)
        assert any(issue.use_op is use for issue in issues)


class TestAlternativesRollbackAwareness:
    def build_two_region_script(self, use_after=False):
        seq, builder, root = transform.sequence()
        handle = transform.match_op(builder, root, "scf.for")
        alts = transform.alternatives(builder, 2)
        r0 = Builder.at_end(alts.regions[0].entry_block)
        transform.loop_unroll(r0, handle, full=True)
        r1 = Builder.at_end(alts.regions[1].entry_block)
        use_in_r1 = transform.annotate(r1, handle, "retry")
        use_outside = None
        if use_after:
            use_outside = transform.print_(builder, handle, "after")
        transform.yield_(builder)
        return seq, use_in_r1, use_outside

    def test_consume_in_region1_use_in_region2_is_clean(self):
        """Region 2 only runs after region 1 failed and rolled back:
        the handle is intact there (the old checker flagged this)."""
        seq, _use_in_r1, _ = self.build_two_region_script()
        assert analyze_script(seq, may_alias=False) == []

    def test_use_after_join_is_a_warning_not_error(self):
        seq, _use_in_r1, use_outside = self.build_two_region_script(
            use_after=True
        )
        issues = analyze_script(seq, may_alias=False)
        assert len(issues) == 1
        assert issues[0].use_op is use_outside
        # Only one of the two regions consumes: may, not must.
        assert issues[0].severity == WARNING

    def test_consume_in_every_region_then_use_still_flagged(self):
        seq, builder, root = transform.sequence()
        handle = transform.match_op(builder, root, "scf.for")
        alts = transform.alternatives(builder, 2)
        for region in alts.regions:
            rb = Builder.at_end(region.entry_block)
            transform.loop_unroll(rb, handle, full=True)
        use = transform.print_(builder, handle, "gone either way")
        transform.yield_(builder)
        issues = analyze_script(seq, may_alias=False)
        assert len(issues) == 1
        assert issues[0].use_op is use


class TestSeverityModel:
    def test_figure1_double_unroll_is_definite(self):
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        issues = analyze_script(seq, may_alias=False)
        assert len(issues) == 1
        assert issues[0].severity == ERROR

    def test_may_alias_mode_only_warns(self):
        seq, builder, root = transform.sequence()
        a = transform.match_op(builder, root, "scf.for")
        b = transform.match_op(builder, root, "func.func")
        transform.loop_unroll(builder, a, full=True)
        transform.print_(builder, b, "may overlap")
        transform.yield_(builder)
        precise = analyze_script(seq, may_alias=False)
        assert precise == []
        coarse = analyze_script(seq, may_alias=True)
        assert len(coarse) == 1
        assert coarse[0].kind == "may-alias"
        assert coarse[0].severity == WARNING
