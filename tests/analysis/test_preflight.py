"""Tests for the interpreter's static preflight gate."""

import pytest

from repro.core import dialect as transform
from repro.core.errors import TransformInterpreterError
from repro.core.interpreter import TransformInterpreter
from repro.ir import Builder, Operation


def empty_payload():
    module = Operation.create("builtin.module", regions=1)
    module.regions[0].add_block()
    return module


def double_unroll_script():
    seq, builder, root = transform.sequence()
    loop = transform.match_op(builder, root, "scf.for",
                              position="first")
    transform.loop_unroll(builder, loop, full=True)
    transform.loop_unroll(builder, loop, full=True)
    transform.yield_(builder)
    return seq


class TestPreflight:
    def test_refuses_definite_static_errors_before_executing(self):
        interpreter = TransformInterpreter(preflight=True)
        with pytest.raises(TransformInterpreterError,
                           match="preflight"):
            interpreter.apply(double_unroll_script(), empty_payload())
        # Nothing ran: the payload was never touched.
        assert interpreter.stats.transforms_executed == 0
        assert "refusing to execute" in \
            interpreter.diagnostics.render()

    def test_clean_script_executes_normally(self):
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for",
                                  position="first")
        transform.loop_unroll(builder, loop, full=True)
        transform.yield_(builder)
        interpreter = TransformInterpreter(preflight=True)
        result = interpreter.apply(seq, empty_payload())
        assert not result.is_definite

    def test_off_by_default_same_script_fails_dynamically_or_not(self):
        # Without preflight the double unroll is only caught when the
        # handles are actually populated; on an empty payload the first
        # match fails silenceably and nothing else runs.
        interpreter = TransformInterpreter()
        result = interpreter.apply(double_unroll_script(),
                                   empty_payload())
        assert result.is_silenceable

    def test_warnings_do_not_block_execution(self):
        # May-consumption (one alternatives region of two) is a static
        # warning: preflight lets the script run; the dynamic layer
        # still catches the real invalidation when region 1 wins.
        seq, builder, root = transform.sequence()
        handle = transform.match_op(builder, root, "scf.for")
        alts = transform.alternatives(builder, 2)
        r0 = Builder.at_end(alts.regions[0].entry_block)
        transform.loop_unroll(r0, handle, full=True)
        r1 = Builder.at_end(alts.regions[1].entry_block)
        transform.annotate(r1, root, "fallback")
        transform.print_(builder, handle, "after")
        transform.yield_(builder)
        interpreter = TransformInterpreter(preflight=True)
        with pytest.raises(TransformInterpreterError) as excinfo:
            interpreter.apply(seq, empty_payload())
        assert "preflight" not in str(excinfo.value)
        assert interpreter.stats.transforms_executed > 0
