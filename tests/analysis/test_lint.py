"""Tests for ``repro-lint`` (the bundled static analysis driver)."""

from repro.analysis import lint_script
from repro.analysis.lint import main as lint_main
from repro.core import dialect as transform
from repro.ir import Operation
from repro.ir.printer import print_op


def script_module():
    module = Operation.create("builtin.module", regions=1)
    module.regions[0].add_block()
    return module


def double_unroll_script():
    seq, builder, root = transform.sequence()
    loop = transform.match_op(builder, root, "scf.for",
                              position="first")
    transform.loop_unroll(builder, loop, full=True)
    transform.loop_unroll(builder, loop, full=True)
    transform.yield_(builder)
    return seq


def clean_script():
    seq, builder, root = transform.sequence()
    loop = transform.match_op(builder, root, "scf.for",
                              position="first")
    transform.loop_unroll(builder, loop, full=True)
    transform.yield_(builder)
    return seq


class TestLintScript:
    def test_invalidation_error_with_note_chain(self):
        engine = lint_script(double_unroll_script())
        assert engine.has_errors()
        rendered = engine.render()
        assert "uses an invalidated handle" in rendered
        assert "handle was consumed here by 'transform.loop.unroll'" \
            in rendered

    def test_include_call_site_gets_in_body_note(self):
        module = script_module()
        block = module.regions[0].entry_block
        macro, mb, margs = transform.named_sequence("consume_it",
                                                    n_args=1)
        transform.loop_unroll(mb, margs[0], full=True)
        transform.yield_(mb)
        block.append(macro)
        seq, builder, root = transform.sequence()
        loop = transform.match_op(builder, root, "scf.for")
        transform.include(builder, "consume_it", [loop])
        transform.print_(builder, loop, "reused")
        transform.yield_(builder)
        block.append(seq)
        engine = lint_script(module)
        assert engine.has_errors()
        assert "inside the included sequence, consumed by " \
            "'transform.loop.unroll'" in engine.render()

    def test_clean_script_has_no_diagnostics(self):
        assert lint_script(clean_script()).diagnostics == []

    def test_dead_handle_warning(self):
        seq, builder, root = transform.sequence()
        transform.match_op(builder, root, "scf.for")  # result unused
        transform.yield_(builder)
        engine = lint_script(seq)
        assert not engine.has_errors()
        assert any("dead handle" in d.message for d in engine.warnings)

    def test_unknown_include_target_is_an_error(self):
        seq, builder, root = transform.sequence()
        transform.include(builder, "ghost", [root])
        transform.yield_(builder)
        engine = lint_script(seq)
        assert any("unknown symbol @ghost" in d.message
                   for d in engine.errors)

    def test_dead_macro_warning(self):
        module = script_module()
        block = module.regions[0].entry_block
        macro, mb, margs = transform.named_sequence("orphan", n_args=1)
        transform.yield_(mb)
        block.append(macro)
        seq, builder, _root = transform.sequence()
        transform.yield_(builder)
        block.append(seq)
        engine = lint_script(module)
        assert any("never included" in d.message
                   for d in engine.warnings)

    def test_pipeline_check_feeds_diagnostics(self):
        seq, builder, root = transform.sequence()
        transform.apply_registered_pass(builder, root,
                                        "convert-scf-to-cf")
        transform.yield_(builder)
        engine = lint_script(seq, payload_specs={"scf.for", "func.func"})
        # cf.* leftovers are not in the default llvm.* final set.
        assert engine.has_errors()
        assert "leftover" in engine.render()


class TestLintCli:
    def test_clean_script_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.mlir"
        path.write_text(print_op(clean_script()))
        assert lint_main([str(path)]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_error_script_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.mlir"
        path.write_text(print_op(double_unroll_script()))
        assert lint_main([str(path)]) == 1
        assert "error:" in capsys.readouterr().out

    def test_werror_promotes_warnings(self, tmp_path, capsys):
        seq, builder, root = transform.sequence()
        transform.match_op(builder, root, "scf.for")  # dead handle
        transform.yield_(builder)
        path = tmp_path / "warn.mlir"
        path.write_text(print_op(seq))
        assert lint_main([str(path)]) == 0
        assert lint_main([str(path), "--werror"]) == 1
