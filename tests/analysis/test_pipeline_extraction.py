"""Tests for call-site-ordered pipeline extraction.

The old extractor walked ``named_sequence`` bodies wherever they
appeared in the script text — so a pass inside a macro was checked at
the macro's *definition* position (or even when the macro was never
included at all). Extraction now rides the dataflow engine: includes
splice the callee at the call site, never-included bodies contribute
nothing, and alternatives regions become branch nodes.
"""

from repro.analysis import (
    PipelineBranch,
    extract_pipeline_from_script,
    extract_pipeline_tree,
    flatten_pipeline,
)
from repro.core import dialect as transform
from repro.ir import Builder, Operation


def script_module():
    module = Operation.create("builtin.module", regions=1)
    module.regions[0].add_block()
    return module


class TestCallSiteOrdering:
    def build_macro_pipeline(self):
        module = script_module()
        block = module.regions[0].entry_block
        macro, mb, margs = transform.named_sequence("lower", n_args=1)
        transform.apply_registered_pass(mb, margs[0],
                                        "convert-scf-to-cf")
        transform.yield_(mb)
        block.append(macro)
        dead, db, dargs = transform.named_sequence("never_used",
                                                   n_args=1)
        transform.apply_registered_pass(db, dargs[0], "dead-pass")
        transform.yield_(db)
        block.append(dead)
        seq, builder, root = transform.sequence()
        h = transform.apply_registered_pass(builder, root,
                                            "canonicalize")
        transform.include(builder, "lower", [h])
        transform.apply_registered_pass(builder, h, "cse")
        transform.yield_(builder)
        block.append(seq)
        return module

    def test_included_pass_checked_at_include_position(self):
        module = self.build_macro_pipeline()
        steps = extract_pipeline_from_script(module)
        assert steps == ["canonicalize", "convert-scf-to-cf", "cse"]

    def test_never_included_bodies_are_skipped(self):
        module = self.build_macro_pipeline()
        steps = extract_pipeline_from_script(module)
        assert "dead-pass" not in steps

    def test_macro_included_twice_appears_twice(self):
        module = script_module()
        block = module.regions[0].entry_block
        macro, mb, margs = transform.named_sequence("cleanup", n_args=1)
        transform.apply_registered_pass(mb, margs[0], "cse")
        transform.yield_(mb)
        block.append(macro)
        seq, builder, root = transform.sequence()
        transform.include(builder, "cleanup", [root])
        transform.apply_registered_pass(builder, root, "canonicalize")
        transform.include(builder, "cleanup", [root])
        transform.yield_(builder)
        block.append(seq)
        assert extract_pipeline_from_script(module) == [
            "cse", "canonicalize", "cse",
        ]

    def test_recursive_include_terminates(self):
        module = script_module()
        block = module.regions[0].entry_block
        rec, rb, rargs = transform.named_sequence("rec", n_args=1)
        transform.apply_registered_pass(rb, rargs[0], "canonicalize")
        transform.include(rb, "rec", [rargs[0]])
        transform.yield_(rb)
        block.append(rec)
        seq, builder, root = transform.sequence()
        transform.include(builder, "rec", [root])
        transform.yield_(builder)
        block.append(seq)
        steps = extract_pipeline_from_script(module)
        # The cycle is cut after one expansion instead of diverging.
        assert steps == ["canonicalize"]


class TestAlternativesBranches:
    def test_regions_become_branch_nodes(self):
        seq, builder, root = transform.sequence()
        alts = transform.alternatives(builder, 2)
        r0 = Builder.at_end(alts.regions[0].entry_block)
        transform.apply_registered_pass(r0, root, "canonicalize")
        r1 = Builder.at_end(alts.regions[1].entry_block)
        transform.apply_registered_pass(r1, root, "cse")
        transform.apply_registered_pass(builder, root, "symbol-dce")
        transform.yield_(builder)
        tree = extract_pipeline_tree(seq)
        assert len(tree) == 2
        branch = tree[0]
        assert isinstance(branch, PipelineBranch)
        assert branch.regions == [["canonicalize"], ["cse"]]
        assert tree[1] == "symbol-dce"

    def test_flatten_preserves_order(self):
        steps = flatten_pipeline([
            "a",
            PipelineBranch(regions=[["b1", "b2"], ["c"]]),
            "d",
        ])
        assert steps == ["a", "b1", "b2", "c", "d"]
