"""Tests for the pattern rewriter and listener events."""

import pytest

from repro.ir import Block, Builder, INDEX, Operation, index_attr
from repro.rewrite.pattern import (
    PatternRewriter,
    RewriteListener,
    RewritePattern,
    pattern,
)


def const(value=0):
    return Operation.create(
        "arith.constant", result_types=[INDEX],
        attributes={"value": index_attr(value)},
    )


class RecordingListener(RewriteListener):
    def __init__(self):
        self.events = []

    def notify_op_inserted(self, op):
        self.events.append(("insert", op.name))

    def notify_op_replaced(self, op, new_values):
        self.events.append(("replace", op.name, len(new_values)))

    def notify_op_erased(self, op):
        self.events.append(("erase", op.name))

    def notify_op_modified(self, op):
        self.events.append(("modify", op.name))


class TestPatternRewriter:
    def test_insert_notifies(self):
        listener = RecordingListener()
        rewriter = PatternRewriter([listener])
        block = Block()
        rewriter.set_insertion_point_to_end(block)
        rewriter.create("test.op")
        assert ("insert", "test.op") in listener.events

    def test_erase_notifies(self):
        listener = RecordingListener()
        rewriter = PatternRewriter([listener])
        block = Block()
        op = block.append(Operation.create("test.op"))
        rewriter.erase_op(op)
        assert ("erase", "test.op") in listener.events
        assert not block.ops

    def test_replace_rauw_and_notifies(self):
        listener = RecordingListener()
        rewriter = PatternRewriter([listener])
        block = Block()
        a = block.append(const(1))
        b = block.append(const(2))
        user = block.append(
            Operation.create("test.use", operands=[a.result])
        )
        rewriter.replace_op(a, [b.result])
        assert user.operand(0) is b.result
        assert ("replace", "arith.constant", 1) in listener.events
        assert a not in block.ops

    def test_replace_op_with(self):
        rewriter = PatternRewriter()
        block = Block()
        a = block.append(const(1))
        user = block.append(
            Operation.create("test.use", operands=[a.result])
        )
        new_op = rewriter.replace_op_with(
            a, "test.new", result_types=[INDEX]
        )
        assert user.operand(0) is new_op.result
        assert block.ops[0] is new_op

    def test_modify_in_place_notifies(self):
        listener = RecordingListener()
        rewriter = PatternRewriter([listener])
        op = Operation.create("test.op")
        rewriter.modify_op_in_place(op, lambda: op.set_attr("x", 1))
        assert op.attr("x").value == 1
        assert ("modify", "test.op") in listener.events

    def test_inline_block_before(self):
        rewriter = PatternRewriter()
        target = Block()
        anchor = target.append(Operation.create("test.anchor"))
        source = Block([INDEX])
        inner = source.append(
            Operation.create("test.inner", operands=[source.args[0]])
        )
        replacement = const(3)
        rewriter.inline_block_before(source, anchor, [replacement.result])
        assert target.ops == [inner, anchor]
        assert inner.operand(0) is replacement.result

    def test_inline_block_arg_mismatch(self):
        rewriter = PatternRewriter()
        target = Block()
        anchor = target.append(Operation.create("test.anchor"))
        source = Block([INDEX])
        with pytest.raises(ValueError, match="argument count"):
            rewriter.inline_block_before(source, anchor, [])


class TestPatternDecorator:
    def test_wraps_function(self):
        @pattern("test.root", benefit=3, label="my-pattern")
        def rewrite(op, rewriter):
            return False

        assert isinstance(rewrite, RewritePattern)
        assert rewrite.root_name == "test.root"
        assert rewrite.benefit == 3
        assert rewrite.label == "my-pattern"

    def test_default_label_is_function_name(self):
        @pattern()
        def some_rewrite(op, rewriter):
            return False

        assert some_rewrite.label == "some_rewrite"
