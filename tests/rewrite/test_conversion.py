"""Tests for the dialect conversion framework."""

import pytest

from repro.dialects import builtin, func
from repro.ir import Builder, I32, I64, IndexType, Operation
from repro.ir.types import INDEX, LLVMPointerType, MemRefType, Type, memref
from repro.rewrite.conversion import (
    ConversionError,
    ConversionTarget,
    ConversionRewriter,
    TypeConverter,
    apply_conversion,
)
from repro.rewrite.pattern import pattern


class TestTypeConverter:
    def make(self):
        converter = TypeConverter()

        def index_to_i64(t: Type):
            return I64 if isinstance(t, IndexType) else None

        converter.add_conversion(index_to_i64)
        return converter

    def test_converts_registered(self):
        converter = self.make()
        assert converter.convert_type(INDEX) == I64

    def test_identity_for_unregistered(self):
        converter = self.make()
        assert converter.convert_type(I32) == I32

    def test_last_registered_wins(self):
        converter = self.make()
        converter.add_conversion(
            lambda t: I32 if isinstance(t, IndexType) else None
        )
        assert converter.convert_type(INDEX) == I32

    def test_is_legal_type(self):
        converter = self.make()
        assert converter.is_legal_type(I32)
        assert not converter.is_legal_type(INDEX)


class TestConversionTarget:
    def test_dialect_legality(self):
        target = ConversionTarget()
        target.add_legal_dialect("llvm")
        target.add_illegal_dialect("arith")
        assert target.legality(Operation.create("llvm.add")) is True
        assert target.legality(Operation.create("arith.addi",)) is False
        assert target.legality(Operation.create("scf.yield")) is None

    def test_op_overrides_dialect(self):
        target = ConversionTarget()
        target.add_illegal_dialect("arith")
        target.add_legal_op("arith.constant")
        assert target.legality(Operation.create("arith.constant")) is True

    def test_dynamic_legality(self):
        target = ConversionTarget()
        target.add_dynamically_legal_op(
            "test.op", lambda op: op.attr("ok") is not None
        )
        legal = Operation.create("test.op", attributes={"ok": True})
        illegal = Operation.create("test.op")
        assert target.legality(legal) is True
        assert target.legality(illegal) is False
        assert target.explicitly_illegal(illegal)
        assert not target.explicitly_illegal(legal)


def build_index_module():
    module = builtin.module()
    f = func.func("f", [INDEX], [INDEX])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    doubled = builder.create(
        "test.double", operands=[f.body.args[0]], result_types=[INDEX]
    )
    func.return_(builder, [doubled.results[0]])
    return module, f


class TestApplyConversion:
    def make_converter(self):
        converter = TypeConverter()
        converter.add_conversion(
            lambda t: I64 if isinstance(t, IndexType) else None
        )
        return converter

    def test_casts_materialized_on_type_change(self):
        module, f = build_index_module()
        converter = self.make_converter()
        target = ConversionTarget()
        target.add_illegal_op("test.double")
        target.add_legal_dialect("llvm", "builtin")

        @pattern("test.double")
        def convert(op, rewriter):
            operands = rewriter.remapped_operands(op)
            new_op = rewriter.create(
                "llvm.add", operands=operands * 2 if len(operands) == 1
                else operands, result_types=[I64],
            )
            rewriter.replace_op(op, new_op.results)
            return True

        apply_conversion(module, [convert], target, converter)
        names = [op.name for op in module.walk()]
        assert "llvm.add" in names
        assert "test.double" not in names
        assert "builtin.unrealized_conversion_cast" in names

    def test_unconvertible_illegal_op_raises(self):
        module, _f = build_index_module()
        target = ConversionTarget()
        target.add_illegal_op("test.double")
        with pytest.raises(ConversionError, match="failed to legalize"):
            apply_conversion(module, [], target)

    def test_unknown_ops_left_alone(self):
        module, _f = build_index_module()
        target = ConversionTarget()  # nothing illegal
        apply_conversion(module, [], target)
        assert any(op.name == "test.double" for op in module.walk())

    def test_error_carries_op(self):
        module, _f = build_index_module()
        target = ConversionTarget()
        target.add_illegal_op("test.double")
        try:
            apply_conversion(module, [], target)
        except ConversionError as error:
            assert error.op is not None
            assert error.op.name == "test.double"

    def test_block_signature_conversion(self):
        module, f = build_index_module()
        converter = self.make_converter()
        rewriter = ConversionRewriter(converter)
        rewriter.convert_block_signature(f.body)
        assert f.body.args[0].type == I64
        first = f.body.ops[0]
        assert first.name == "builtin.unrealized_conversion_cast"
        assert first.results[0].type == INDEX
