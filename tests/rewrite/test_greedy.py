"""Tests for the greedy pattern rewrite driver."""

import gc
import weakref

import pytest

from repro.dialects import builtin, func
from repro.ir import Builder, I32, Operation
from repro.rewrite.greedy import (
    FrozenPatternSet,
    GreedyRewriteConfig,
    _Worklist,
    _WorklistListener,
    apply_patterns_greedily,
)
from repro.rewrite.pattern import pattern


def build_chain(n=3):
    """module { func { test.a -> test.a -> ... } }"""
    module = builtin.module()
    f = func.func("f", [])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    for _ in range(n):
        builder.create("test.a")
    func.return_(builder)
    return module


@pattern("test.a", label="a-to-b")
def a_to_b(op, rewriter):
    new_op = rewriter.replace_op_with(op, "test.b")
    return True


@pattern("test.b", label="b-to-c")
def b_to_c(op, rewriter):
    rewriter.replace_op_with(op, "test.c")
    return True


class TestGreedyDriver:
    def test_applies_until_fixpoint(self):
        module = build_chain(3)
        changed = apply_patterns_greedily(module, [a_to_b, b_to_c])
        assert changed
        names = [op.name for op in module.walk()]
        assert names.count("test.c") == 3
        assert "test.a" not in names
        assert "test.b" not in names

    def test_no_change_returns_false(self):
        module = build_chain(0)
        assert not apply_patterns_greedily(module, [a_to_b])

    def test_new_ops_are_revisited(self):
        """a -> b happens first; b -> c must fire on the new op."""
        module = build_chain(1)
        apply_patterns_greedily(module, [a_to_b, b_to_c])
        assert any(op.name == "test.c" for op in module.walk())

    def test_benefit_ordering(self):
        fired = []

        @pattern("test.a", benefit=1, label="low")
        def low(op, rewriter):
            fired.append("low")
            rewriter.replace_op_with(op, "test.done")
            return True

        @pattern("test.a", benefit=10, label="high")
        def high(op, rewriter):
            fired.append("high")
            rewriter.replace_op_with(op, "test.done")
            return True

        module = build_chain(1)
        apply_patterns_greedily(module, [low, high])
        assert fired == ["high"]

    def test_generic_patterns_match_any_root(self):
        matched = []

        @pattern(label="any")
        def observe(op, rewriter):
            matched.append(op.name)
            return False

        module = build_chain(2)
        apply_patterns_greedily(module, [observe])
        assert "test.a" in matched
        assert "func.func" in matched

    def test_ping_pong_guard(self):
        @pattern("test.a", label="to-b")
        def to_b(op, rewriter):
            rewriter.replace_op_with(op, "test.b")
            return True

        @pattern("test.b", label="back-to-a")
        def back(op, rewriter):
            rewriter.replace_op_with(op, "test.a")
            return True

        module = build_chain(1)
        config = GreedyRewriteConfig(max_iterations=100, max_rewrites=50)
        with pytest.raises(RuntimeError, match="max_rewrites"):
            apply_patterns_greedily(module, [to_b, back], config)

    def test_extra_listener_sees_replacements(self):
        from repro.rewrite.pattern import RewriteListener

        class Recorder(RewriteListener):
            def __init__(self):
                self.replaced = []

            def notify_op_replaced(self, op, new_values):
                self.replaced.append(op.name)

        recorder = Recorder()
        module = build_chain(2)
        apply_patterns_greedily(module, [a_to_b],
                                extra_listeners=[recorder])
        assert recorder.replaced.count("test.a") == 2

    def test_accepts_frozen_pattern_set(self):
        frozen = FrozenPatternSet([a_to_b, b_to_c])
        module = build_chain(2)
        assert apply_patterns_greedily(module, frozen)
        names = [op.name for op in module.walk()]
        assert names.count("test.c") == 2
        # The same frozen set drives a second root unchanged.
        module2 = build_chain(1)
        assert apply_patterns_greedily(module2, frozen)


class TestErasedTracking:
    def test_erased_set_holds_strong_references(self):
        """Regression (PR 1): erased ops must be tracked by strong
        reference. The old driver stored bare ``id()``s; once an erased
        op was garbage-collected, its id could be recycled onto a
        brand-new op, which the driver then silently skipped."""
        listener = _WorklistListener(_Worklist())
        op = Operation.create("test.x")
        ref = weakref.ref(op)
        listener.notify_op_erased(op)
        del op
        gc.collect()
        # While tracked, the op stays alive, so its id cannot be reused.
        assert ref() is not None

    def test_new_ops_after_erasure_under_gc_pressure(self):
        """Ops created after an erasure (when the interpreter holds no
        other references and ids are prone to reuse) must be visited."""

        @pattern("test.a", label="erase-then-create")
        def erase_then_create(op, rewriter):
            rewriter.set_insertion_point_before(op)
            rewriter.erase_op(op)
            gc.collect()  # maximise the chance of id recycling
            rewriter.create("test.b")
            return True

        module = build_chain(4)
        apply_patterns_greedily(module, [erase_then_create, b_to_c])
        names = [op.name for op in module.walk()]
        assert names.count("test.c") == 4
        assert "test.a" not in names
        assert "test.b" not in names


class TestDeadCodeSweep:
    def build_dead_chain(self, n=4):
        """test.pure ops chained through operands, final result unused."""
        from repro.ir.core import OP_REGISTRY, Pure

        class PureOp(Operation):
            NAME = "test.pure"
            TRAITS = frozenset({Pure})

        OP_REGISTRY.setdefault("test.pure", PureOp)
        module = builtin.module()
        f = func.func("f", [])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        value = None
        for _ in range(n):
            operands = [value] if value is not None else []
            value = builder.create(
                "test.pure", operands=operands, result_types=[I32]
            ).result
        func.return_(builder)
        return module

    def test_dead_chain_erased_without_patterns(self):
        """The driver folds whole dead chains via the worklist: erasing
        the unused tail re-enqueues its defs until the chain is gone."""
        module = self.build_dead_chain(5)
        changed = apply_patterns_greedily(module, [])
        assert changed
        assert not any(op.name == "test.pure" for op in module.walk())

    def test_ops_made_dead_by_rewrites_are_swept(self):
        """A rewrite that drops the last use must cascade into DCE."""

        @pattern("test.user", label="erase-user")
        def erase_user(op, rewriter):
            rewriter.erase_op(op)
            return True

        module = self.build_dead_chain(3)
        f = next(op for op in module.walk() if op.name == "func.func")
        chain_result = [
            op for op in module.walk() if op.name == "test.pure"
        ][-1].results[0]
        builder = Builder.before(f.body.ops[-1])
        builder.create("test.user", operands=[chain_result])
        assert apply_patterns_greedily(module, [erase_user])
        assert not any(op.name == "test.pure" for op in module.walk())
