"""Tests for the greedy pattern rewrite driver."""

import pytest

from repro.dialects import builtin, func
from repro.ir import Builder, I32, Operation
from repro.rewrite.greedy import GreedyRewriteConfig, apply_patterns_greedily
from repro.rewrite.pattern import pattern


def build_chain(n=3):
    """module { func { test.a -> test.a -> ... } }"""
    module = builtin.module()
    f = func.func("f", [])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    for _ in range(n):
        builder.create("test.a")
    func.return_(builder)
    return module


@pattern("test.a", label="a-to-b")
def a_to_b(op, rewriter):
    new_op = rewriter.replace_op_with(op, "test.b")
    return True


@pattern("test.b", label="b-to-c")
def b_to_c(op, rewriter):
    rewriter.replace_op_with(op, "test.c")
    return True


class TestGreedyDriver:
    def test_applies_until_fixpoint(self):
        module = build_chain(3)
        changed = apply_patterns_greedily(module, [a_to_b, b_to_c])
        assert changed
        names = [op.name for op in module.walk()]
        assert names.count("test.c") == 3
        assert "test.a" not in names
        assert "test.b" not in names

    def test_no_change_returns_false(self):
        module = build_chain(0)
        assert not apply_patterns_greedily(module, [a_to_b])

    def test_new_ops_are_revisited(self):
        """a -> b happens first; b -> c must fire on the new op."""
        module = build_chain(1)
        apply_patterns_greedily(module, [a_to_b, b_to_c])
        assert any(op.name == "test.c" for op in module.walk())

    def test_benefit_ordering(self):
        fired = []

        @pattern("test.a", benefit=1, label="low")
        def low(op, rewriter):
            fired.append("low")
            rewriter.replace_op_with(op, "test.done")
            return True

        @pattern("test.a", benefit=10, label="high")
        def high(op, rewriter):
            fired.append("high")
            rewriter.replace_op_with(op, "test.done")
            return True

        module = build_chain(1)
        apply_patterns_greedily(module, [low, high])
        assert fired == ["high"]

    def test_generic_patterns_match_any_root(self):
        matched = []

        @pattern(label="any")
        def observe(op, rewriter):
            matched.append(op.name)
            return False

        module = build_chain(2)
        apply_patterns_greedily(module, [observe])
        assert "test.a" in matched
        assert "func.func" in matched

    def test_ping_pong_guard(self):
        @pattern("test.a", label="to-b")
        def to_b(op, rewriter):
            rewriter.replace_op_with(op, "test.b")
            return True

        @pattern("test.b", label="back-to-a")
        def back(op, rewriter):
            rewriter.replace_op_with(op, "test.a")
            return True

        module = build_chain(1)
        config = GreedyRewriteConfig(max_iterations=100, max_rewrites=50)
        with pytest.raises(RuntimeError, match="max_rewrites"):
            apply_patterns_greedily(module, [to_b, back], config)

    def test_extra_listener_sees_replacements(self):
        from repro.rewrite.pattern import RewriteListener

        class Recorder(RewriteListener):
            def __init__(self):
                self.replaced = []

            def notify_op_replaced(self, op, new_values):
                self.replaced.append(op.name)

        recorder = Recorder()
        module = build_chain(2)
        apply_patterns_greedily(module, [a_to_b],
                                extra_listeners=[recorder])
        assert recorder.replaced.count("test.a") == 2
