"""Tests for the fusion cost model and the case-study-3 binary search."""

import pytest

from repro.enzyme import (
    ALL_PATTERN_NAMES,
    CULPRIT_PATTERN,
    FusionCostModel,
    build_llm_block_module,
    evaluate_pattern_set,
    find_counterproductive_pattern,
)
from repro.enzyme.search import build_apply_patterns_script


@pytest.fixture(scope="module")
def payload_factory():
    def factory():
        return build_llm_block_module()

    return factory


class TestFusion:
    def test_clusters_built(self, payload_factory):
        model = FusionCostModel()
        report = model.estimate_module(payload_factory())
        assert len(report.clusters) > 5
        assert report.seconds > 0
        assert len(report.cluster_seconds) == len(report.clusters)

    def test_heavy_ops_not_pulled_into_fusions(self, payload_factory):
        model = FusionCostModel()
        clusters = model.build_clusters(
            next(payload_factory().walk_ops("func.func"))
        )
        for cluster in clusters:
            dot_count = sum(
                1 for op in cluster.ops
                if op.name == "stablehlo.dot_general"
            )
            if dot_count:
                assert len(cluster.ops) == 1

    def test_barriers_stop_fusion(self, payload_factory):
        model = FusionCostModel()
        clusters = model.build_clusters(
            next(payload_factory().walk_ops("func.func"))
        )
        # No cluster contains both a reshape and something fused
        # *through* it (reshape clusters are singletons here).
        for cluster in clusters:
            if any(op.name == "stablehlo.reshape" for op in cluster.ops):
                assert len(cluster.ops) == 1

    def test_gemm_clusters_exempt_from_cache_penalty(self):
        model = FusionCostModel(cache_bytes=1.0)  # everything oversized
        module = build_llm_block_module(seq=64, dim=64, n_blocks=1)
        function = next(module.walk_ops("func.func"))
        clusters = model.build_clusters(function)
        gemms = [
            c for c in clusters
            if all(op.name == "stablehlo.dot_general" for op in c.ops)
        ]
        for gemm in gemms:
            base = max(
                gemm.flops / model.peak_flops,
                gemm.boundary_bytes / model.memory_bandwidth,
            ) + model.kernel_launch_seconds
            assert model.cluster_seconds(gemm) == pytest.approx(base)


class TestEndToEndEffect:
    def test_pattern_set_helps_overall(self, payload_factory):
        none = evaluate_pattern_set(payload_factory, [])
        good = evaluate_pattern_set(
            payload_factory,
            [n for n in ALL_PATTERN_NAMES if n != CULPRIT_PATTERN],
        )
        assert good.modelled_seconds < none.modelled_seconds

    def test_culprit_is_counterproductive(self, payload_factory):
        """The ~9% penalty of §4.3."""
        good = evaluate_pattern_set(
            payload_factory,
            [n for n in ALL_PATTERN_NAMES if n != CULPRIT_PATTERN],
        )
        full = evaluate_pattern_set(payload_factory, ALL_PATTERN_NAMES)
        penalty = full.modelled_seconds / good.modelled_seconds - 1
        assert 0.04 < penalty < 0.20  # paper: up to 9%

    def test_compile_time_is_seconds_not_minutes(self, payload_factory):
        """Each iteration re-interprets a script: no 10-minute rebuild."""
        iteration = evaluate_pattern_set(
            payload_factory, ALL_PATTERN_NAMES
        )
        assert iteration.compile_seconds < 4.0  # paper: up to 4 s


class TestBinarySearch:
    def test_finds_the_culprit(self, payload_factory):
        result = find_counterproductive_pattern(
            payload_factory, ALL_PATTERN_NAMES
        )
        assert result.culprit == CULPRIT_PATTERN

    def test_iteration_count_logarithmic(self, payload_factory):
        result = find_counterproductive_pattern(
            payload_factory, ALL_PATTERN_NAMES
        )
        # 1 full + 2 per halving + 1 verification.
        import math

        bound = 2 * math.ceil(math.log2(len(ALL_PATTERN_NAMES))) + 3
        assert len(result.iterations) <= bound

    def test_no_culprit_returns_none(self, payload_factory):
        benign = [n for n in ALL_PATTERN_NAMES if n != CULPRIT_PATTERN]
        result = find_counterproductive_pattern(payload_factory, benign)
        assert result.culprit is None

    def test_script_shape_matches_paper_listing(self):
        script = build_apply_patterns_script(
            ["add_of_zero_pad", "negate_of_transpose"]
        )
        apply_op = next(script.walk_ops("transform.apply_patterns"))
        assert apply_op.pattern_names() == [
            "add_of_zero_pad", "negate_of_transpose"
        ]
