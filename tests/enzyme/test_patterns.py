"""Tests for the StableHLO peephole pattern set (case study 3)."""

import pytest

from repro.core.dialect import TRANSFORM_PATTERN_REGISTRY
from repro.dialects import builtin, func
from repro.enzyme import ALL_PATTERN_NAMES, CULPRIT_PATTERN, make_pattern
from repro.enzyme.workload import build_llm_block_module
from repro.ir import Builder, Operation
from repro.ir.types import F32, tensor
from repro.rewrite.greedy import apply_patterns_greedily


def make_payload(build_body, arg_types=None, result_types=None):
    module = builtin.module()
    t = tensor(4, 4, element_type=F32)
    f = func.func("f", arg_types or [t], result_types or [t])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    result = build_body(builder, f.body.args, t)
    func.return_(builder, [result])
    return module


def apply(module, *names):
    return apply_patterns_greedily(
        module, [make_pattern(n) for n in names]
    )


def names_of(module):
    return [op.name for op in module.walk() if op is not module]


class TestCatalog:
    def test_over_100_patterns(self):
        """The paper: 'over 100 work-reducing and enabling patterns'."""
        assert len(ALL_PATTERN_NAMES) > 100

    def test_all_registered_for_transform_scripts(self):
        for name in ALL_PATTERN_NAMES:
            assert name in TRANSFORM_PATTERN_REGISTRY

    def test_culprit_in_catalog(self):
        assert CULPRIT_PATTERN in ALL_PATTERN_NAMES

    def test_make_pattern_is_fresh(self):
        a = make_pattern("fold_negate_of_negate")
        b = make_pattern("fold_negate_of_negate")
        assert a is not b
        assert a.label == "fold_negate_of_negate"


class TestWorkReduction:
    def test_double_negate_folds(self):
        def body(b, args, t):
            neg = b.create("stablehlo.negate", operands=[args[0]],
                           result_types=[t])
            return b.create("stablehlo.negate", operands=[neg.result],
                            result_types=[t]).result

        module = make_payload(body)
        assert apply(module, "fold_negate_of_negate")
        assert names_of(module).count("stablehlo.negate") == 0

    def test_multiply_by_one_folds(self):
        def body(b, args, t):
            one = b.create("stablehlo.constant", result_types=[t],
                           attributes={"value": 1.0})
            return b.create(
                "stablehlo.multiply", operands=[args[0], one.result],
                result_types=[t],
            ).result

        module = make_payload(body)
        assert apply(module, "fold_multiply_identity_rhs")
        assert "stablehlo.multiply" not in names_of(module)

    def test_add_of_zero_pad_folds(self):
        def body(b, args, t):
            zero = b.create("stablehlo.constant",
                            result_types=[tensor(1, element_type=F32)],
                            attributes={"value": 0.0})
            padded = b.create("stablehlo.pad",
                              operands=[args[0], zero.result],
                              result_types=[t])
            return b.create(
                "stablehlo.add", operands=[args[0], padded.result],
                result_types=[t],
            ).result

        module = make_payload(body)
        assert apply(module, "fold_add_of_zero_pad")
        assert "stablehlo.add" not in names_of(module)

    def test_double_transpose_cancels(self):
        def body(b, args, t):
            first = b.create("stablehlo.transpose", operands=[args[0]],
                             result_types=[t],
                             attributes={"permutation": [1, 0]})
            return b.create("stablehlo.transpose",
                            operands=[first.result], result_types=[t],
                            attributes={"permutation": [1, 0]}).result

        module = make_payload(body)
        assert apply(module, "fold_transpose_of_transpose")
        assert "stablehlo.transpose" not in names_of(module)

    def test_non_cancelling_transposes_kept(self):
        def body(b, args, t):
            first = b.create("stablehlo.transpose", operands=[args[0]],
                             result_types=[t],
                             attributes={"permutation": [1, 0]})
            return b.create("stablehlo.transpose",
                            operands=[first.result], result_types=[t],
                            attributes={"permutation": [0, 1]}).result

        module = make_payload(body)
        apply(module, "fold_transpose_of_transpose")
        assert names_of(module).count("stablehlo.transpose") == 2

    def test_subtract_same_operands(self):
        def body(b, args, t):
            return b.create(
                "stablehlo.subtract", operands=[args[0], args[0]],
                result_types=[t],
            ).result

        module = make_payload(body)
        assert apply(module, "fold_subtract_same_operands")
        assert "stablehlo.subtract" not in names_of(module)
        assert "stablehlo.constant" in names_of(module)


class TestEnablingPatterns:
    def test_transpose_folds_into_dot(self):
        def body(b, args, t):
            transposed = b.create(
                "stablehlo.transpose", operands=[args[0]],
                result_types=[t], attributes={"permutation": [1, 0]},
            )
            return b.create(
                "stablehlo.dot_general",
                operands=[transposed.result, args[0]],
                result_types=[t],
            ).result

        module = make_payload(body)
        assert apply(module, "matmul_of_transpose_lhs")
        dot = next(module.walk_ops("stablehlo.dot_general"))
        assert dot.attr("transpose_a") is not None
        assert dot.operand(0).defining_op() is None  # the block arg


class TestCulprit:
    def test_folds_reshape_before_full_reduce(self):
        from repro.dialects import stablehlo as hlo

        def body(b, args, t):
            flat = b.create(
                "stablehlo.reshape", operands=[args[0]],
                result_types=[tensor(16, element_type=F32)],
            )
            zero = b.create("stablehlo.constant",
                            result_types=[tensor(1, element_type=F32)],
                            attributes={"value": 0.0})
            return hlo.reduce(b, flat.result, zero.result, [0],
                              tensor(1, element_type=F32))

        module = make_payload(
            body, result_types=[tensor(1, element_type=F32)]
        )
        assert apply(module, CULPRIT_PATTERN)
        reduce = next(module.walk_ops("stablehlo.reduce"))
        assert reduce.attr("folded_shape_barrier") is not None
        # The reduce now reads the unreshaped tensor directly.
        assert reduce.operand(0).type == tensor(4, 4, element_type=F32)

    def test_does_not_fold_partial_reduce(self):
        from repro.dialects import stablehlo as hlo

        def body(b, args, t):
            flat = b.create(
                "stablehlo.reshape", operands=[args[0]],
                result_types=[tensor(16, element_type=F32)],
            )
            zero = b.create("stablehlo.constant",
                            result_types=[tensor(4, element_type=F32)],
                            attributes={"value": 0.0})
            return hlo.reduce(b, flat.result, zero.result, [0],
                              tensor(4, element_type=F32))

        module = make_payload(
            body, result_types=[tensor(4, element_type=F32)]
        )
        assert not apply(module, CULPRIT_PATTERN)

    def test_does_not_fold_non_add_reduce(self):
        from repro.dialects import stablehlo as hlo

        def body(b, args, t):
            flat = b.create(
                "stablehlo.reshape", operands=[args[0]],
                result_types=[tensor(16, element_type=F32)],
            )
            zero = b.create("stablehlo.constant",
                            result_types=[tensor(1, element_type=F32)],
                            attributes={"value": 0.0})
            return hlo.reduce(b, flat.result, zero.result, [0],
                              tensor(1, element_type=F32),
                              kind="maximum")

        module = make_payload(
            body, result_types=[tensor(1, element_type=F32)]
        )
        assert not apply(module, CULPRIT_PATTERN)


class TestWorkload:
    def test_has_sites_for_key_patterns(self):
        module = build_llm_block_module(seq=64, dim=64, n_blocks=2)
        names = names_of(module)
        assert names.count("stablehlo.negate") >= 4
        assert "stablehlo.pad" in names
        assert "stablehlo.reduce" in names
        assert "stablehlo.reshape" in names
        assert "stablehlo.dot_general" in names

    def test_patterns_reduce_op_count(self):
        module = build_llm_block_module(seq=64, dim=64, n_blocks=2)
        before = len(names_of(module))
        apply(module, "fold_negate_of_negate",
              "fold_multiply_identity_rhs", "fold_add_of_zero_pad",
              "fold_transpose_of_transpose", "fold_convert_of_convert")
        after = len(names_of(module))
        assert after < before
