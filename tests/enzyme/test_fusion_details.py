"""Unit tests for the fusion cluster accounting (case study 3)."""

import pytest

from repro.dialects import builtin, func
from repro.enzyme.fusion import FusionCluster, FusionCostModel
from repro.ir import Builder
from repro.ir.types import F32, tensor


def build_chain(n_elementwise=3, seq=16, dim=16):
    """func(x) { y = tanh(...tanh(x)); return y }"""
    module = builtin.module()
    t = tensor(seq, dim, element_type=F32)
    f = func.func("f", [t], [t])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    current = f.body.args[0]
    ops = []
    for _ in range(n_elementwise):
        op = builder.create("stablehlo.tanh", operands=[current],
                            result_types=[t])
        ops.append(op)
        current = op.result
    func.return_(builder, [current])
    return module, f, ops


class TestClusterAccounting:
    def test_chain_forms_one_cluster(self):
        module, f, ops = build_chain(4)
        clusters = FusionCostModel().build_clusters(f)
        assert len(clusters) == 1
        assert len(clusters[0].ops) == 4

    def test_boundary_excludes_internal_tensors(self):
        module, f, ops = build_chain(3, seq=8, dim=8)
        cluster = FusionCostModel().build_clusters(f)[0]
        # Boundary = the input arg + the returned result: 2 tensors.
        assert cluster.boundary_bytes == pytest.approx(2 * 8 * 8 * 4)

    def test_working_set_counts_all_intermediates(self):
        module, f, ops = build_chain(3, seq=8, dim=8)
        cluster = FusionCostModel().build_clusters(f)[0]
        # input + 3 results = 4 distinct tensors.
        assert cluster.working_set_bytes == pytest.approx(4 * 8 * 8 * 4)

    def test_flops_counts_elements_per_elementwise_op(self):
        module, f, ops = build_chain(2, seq=4, dim=4)
        cluster = FusionCostModel().build_clusters(f)[0]
        assert cluster.flops == pytest.approx(2 * 16)

    def test_constants_excluded_from_clustering(self):
        module = builtin.module()
        t = tensor(4, 4, element_type=F32)
        f = func.func("f", [t], [t])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        constant = builder.create("stablehlo.constant",
                                  result_types=[t],
                                  attributes={"value": 1.0})
        out = builder.create(
            "stablehlo.multiply",
            operands=[f.body.args[0], constant.result],
            result_types=[t],
        )
        func.return_(builder, [out.result])
        clusters = FusionCostModel().build_clusters(f)
        all_ops = [op.name for c in clusters for op in c.ops]
        assert "stablehlo.constant" not in all_ops

    def test_oversized_cluster_penalized(self):
        model = FusionCostModel(cache_bytes=64.0)  # tiny cache
        module, f, ops = build_chain(3, seq=32, dim=32)
        cluster = model.build_clusters(f)[0]
        base = max(
            cluster.flops / model.peak_flops,
            cluster.boundary_bytes / model.memory_bandwidth,
        ) + model.kernel_launch_seconds
        assert model.cluster_seconds(cluster) > base

    def test_small_cluster_unpenalized(self):
        model = FusionCostModel()
        module, f, ops = build_chain(1, seq=2, dim=2)
        cluster = model.build_clusters(f)[0]
        base = max(
            cluster.flops / model.peak_flops,
            cluster.boundary_bytes / model.memory_bandwidth,
        ) + model.kernel_launch_seconds
        assert model.cluster_seconds(cluster) == pytest.approx(base)

    def test_reduce_rooted_fusion_slowdown(self):
        from repro.dialects import stablehlo as hlo

        module = builtin.module()
        t = tensor(64, element_type=F32)
        f = func.func("f", [t], [tensor(1, element_type=F32)])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        doubled = builder.create("stablehlo.tanh",
                                 operands=[f.body.args[0]],
                                 result_types=[t])
        zero = builder.create("stablehlo.constant",
                              result_types=[tensor(1, element_type=F32)],
                              attributes={"value": 0.0})
        loss = hlo.reduce(builder, doubled.result, zero.result, [0],
                          tensor(1, element_type=F32))
        func.return_(builder, [loss])

        model = FusionCostModel()
        clusters = model.build_clusters(f)
        merged = [c for c in clusters
                  if any(op.name == "stablehlo.reduce" for op in c.ops)]
        assert merged and len(merged[0].ops) > 1  # tanh fused in
        # The slowdown applies to the merged cluster.
        unpenalized = max(
            merged[0].flops / model.peak_flops,
            merged[0].boundary_bytes / model.memory_bandwidth,
        ) + model.kernel_launch_seconds
        assert model.cluster_seconds(merged[0]) >= (
            unpenalized * model.reduce_fusion_slowdown * 0.99
        )
