"""Per-function fan-out: the gate, the splitter, and --jobs equivalence."""

import textwrap

import repro.core  # registers transform ops
import repro.dialects  # registers payload ops
from repro.ir.parser import parse
from repro.ir.printer import print_op
from repro.service import (
    is_func_shardable,
    reassemble_module,
    shard_payload,
)
from repro.tools import _transform_opt_sharded, transform_opt

from .test_engine import UNROLL, UNROLL_BOUND


def _func(name, trip=8):
    return textwrap.dedent(f"""
      "func.func"() ({{
        %lb = "arith.constant"() {{value = 0 : index}} : () -> index
        %ub = "arith.constant"() {{value = {trip} : index}} : () -> index
        %st = "arith.constant"() {{value = 1 : index}} : () -> index
        "scf.for"(%lb, %ub, %st) ({{
        ^bb0(%i: index):
          %c = "arith.constant"() {{value = 1 : i64}} : () -> i64
          "scf.yield"() : () -> ()
        }}) : (index, index, index) -> ()
        "func.return"() : () -> ()
      }}) {{sym_name = "{name}", function_type = () -> ()}} : () -> ()
    """).strip()


def _module(*funcs):
    body = "\n".join(funcs)
    return f'"builtin.module"() ({{\n{body}\n}}) : () -> ()'


MULTI = _module(_func("f0", 8), _func("f1", 4), _func("f2", 16))
SINGLE = _module(_func("only"))

#: Climbs from each func to the module and annotates *it* — the
#: annotation lands on a per-shard clone module, so sharding must
#: refuse or the mark silently vanishes in reassembly.
MODULE_ANNOTATE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %funcs = "transform.match_op"(%root) {names = ["func.func"], position = "all"} : (!transform.any_op) -> !transform.any_op
      %mod = "transform.get_parent_op"(%funcs) {op_name = "builtin.module"} : (!transform.any_op) -> !transform.any_op
      "transform.annotate"(%mod) {attr_name = "marked", value = 1 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()

#: No op_name: "immediate parent", which for a top-level func is the
#: module itself — just as unshardable as naming builtin.module.
PARENT_NO_NAME = MODULE_ANNOTATE.replace(
    ' {op_name = "builtin.module"}', ""
)

#: Stays below the module (loop -> enclosing func): genuinely
#: distributes over functions, so the fan-out path must still fire.
FUNC_ANNOTATE = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      %fn = "transform.get_parent_op"(%loops) {op_name = "func.func"} : (!transform.any_op) -> !transform.any_op
      "transform.annotate"(%fn) {attr_name = "marked", value = 1 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


class TestShardableGate:
    def test_whitelisted_schedule_is_shardable(self):
        assert is_func_shardable(parse(UNROLL))
        assert is_func_shardable(parse(UNROLL_BOUND))

    def test_positional_match_is_not(self):
        script = UNROLL.replace('position = "all"', 'position = "first"')
        assert not is_func_shardable(parse(script))

    def test_unknown_transform_is_not(self):
        script = UNROLL.replace(
            "transform.loop.unroll", "transform.foreach"
        )
        assert not is_func_shardable(parse(script))

    def test_get_parent_to_module_is_not(self):
        assert not is_func_shardable(parse(MODULE_ANNOTATE))

    def test_get_parent_without_op_name_is_not(self):
        assert not is_func_shardable(parse(PARENT_NO_NAME))

    def test_get_parent_below_module_is(self):
        assert is_func_shardable(parse(FUNC_ANNOTATE))

    def test_named_sequences_are_not(self):
        script = textwrap.dedent("""
            "builtin.module"() ({
              "transform.named_sequence"() ({
              ^bb0(%root: !transform.any_op):
                "transform.yield"() : () -> ()
              }) {sym_name = "macro"} : () -> ()
            }) : () -> ()
        """).strip()
        assert not is_func_shardable(parse(script))


class TestShardPayload:
    def test_multi_func_module_splits(self):
        shards = shard_payload(parse(MULTI))
        assert shards is not None and len(shards) == 3
        for shard, name in zip(shards, ["f0", "f1", "f2"]):
            assert f'"{name}"' in print_op(shard)

    def test_single_func_module_does_not(self):
        assert shard_payload(parse(SINGLE)) is None

    def test_non_func_top_level_does_not(self):
        mixed = _module(
            _func("f0"),
            '"llvm.mlir.global"() {sym_name = "g"} : () -> ()',
        )
        assert shard_payload(parse(mixed)) is None

    def test_cross_function_calls_do_not(self):
        caller = textwrap.dedent("""
          "func.func"() ({
            "func.call"() {callee = "f0"} : () -> ()
            "func.return"() : () -> ()
          }) {sym_name = "caller", function_type = () -> ()} : () -> ()
        """).strip()
        assert shard_payload(parse(_module(_func("f0"), caller))) is None

    def test_identity_reassembly_is_byte_stable(self):
        payload = parse(MULTI)
        shards = shard_payload(payload)
        texts = [print_op(s) for s in shards]
        assert reassemble_module(payload, texts) == print_op(payload)

    def test_reassembly_rejects_diverged_module_attrs(self):
        # Backstop behind the gate: a shard whose module op gained an
        # attribute cannot be merged faithfully — reassembly must
        # refuse so the caller falls back to the sequential path.
        payload = parse(MULTI)
        shards = shard_payload(payload)
        shards[1].set_attr("marked", 1)
        texts = [print_op(s) for s in shards]
        assert reassemble_module(payload, texts) is None


class TestJobsEquivalence:
    def test_sharded_path_fires_and_matches_sequential(self):
        payload = parse(MULTI)
        script = parse(UNROLL)
        sharded = _transform_opt_sharded(payload, script, UNROLL, jobs=3)
        assert sharded is not None
        sequential = transform_opt(MULTI, UNROLL, jobs=1)
        assert sharded == sequential

    def test_transform_opt_jobs_flag_byte_identical(self):
        assert transform_opt(MULTI, UNROLL, jobs=4) == \
            transform_opt(MULTI, UNROLL, jobs=1)

    def test_non_shardable_payload_falls_back(self):
        # Single function: the sharded path declines, the sequential
        # path still compiles.
        assert transform_opt(SINGLE, UNROLL, jobs=4) == \
            transform_opt(SINGLE, UNROLL, jobs=1)

    def test_non_shardable_script_falls_back(self):
        script = UNROLL.replace('position = "all"', 'position = "first"')
        assert transform_opt(MULTI, script, jobs=4) == \
            transform_opt(MULTI, script, jobs=1)

    def test_module_annotation_falls_back_and_keeps_the_mark(self):
        # Regression: get_parent_op climbing to builtin.module used to
        # pass the gate, each shard annotated its own clone module,
        # and the reassembled output silently lost `marked`.
        assert _transform_opt_sharded(
            parse(MULTI), parse(MODULE_ANNOTATE), MODULE_ANNOTATE,
            jobs=2,
        ) is None
        fanned = transform_opt(MULTI, MODULE_ANNOTATE, jobs=2)
        assert fanned == transform_opt(MULTI, MODULE_ANNOTATE, jobs=1)
        assert "marked" in fanned

    def test_in_shard_get_parent_still_fans_out(self):
        sharded = _transform_opt_sharded(
            parse(MULTI), parse(FUNC_ANNOTATE), FUNC_ANNOTATE, jobs=3
        )
        assert sharded is not None
        assert sharded == transform_opt(MULTI, FUNC_ANNOTATE, jobs=1)
        assert sharded.count("marked") == 3


class TestShardableFunctions:
    def test_returns_the_functions_without_cloning(self):
        from repro.service.sharding import shardable_functions

        payload = parse(MULTI)
        functions = shardable_functions(payload)
        assert functions is not None and len(functions) == 3
        tops = list(payload.regions[0].entry_block.ops)
        assert all(f is top for f, top in zip(functions, tops))

    def test_single_function_is_splittable_here(self):
        # Unlike shard_payload (which wants >= 2 to fan out), the
        # function tier caches single-function modules too.
        from repro.service.sharding import shardable_functions

        assert shardable_functions(parse(SINGLE)) is not None
        assert shard_payload(parse(SINGLE)) is None

    def test_calls_and_foreign_tops_refused(self):
        from repro.service.sharding import shardable_functions

        with_global = _module(
            _func("f0"),
            '"llvm.mlir.global"() {sym_name = "g"} : () -> ()',
        )
        assert shardable_functions(parse(with_global)) is None


class TestAssembleFunctions:
    def test_matches_whole_module_print(self):
        from repro.ir.hashing import op_digest
        from repro.service.sharding import assemble_functions

        payload = parse(MULTI)
        tops = list(payload.regions[0].entry_block.ops)
        texts = [print_op(f) for f in tops]
        text, digest = assemble_functions(dict(payload.attributes), texts)
        assert text == print_op(payload)
        assert digest == op_digest(parse(MULTI))

    def test_accepts_single_function_module_wrappers(self):
        from repro.service.sharding import assemble_functions

        payload = parse(MULTI)
        shards = shard_payload(payload)
        texts = [print_op(shard) for shard in shards]
        text, _ = assemble_functions(dict(payload.attributes), texts)
        assert text == print_op(payload)
