"""The per-function digest cache tier: reuse across overlapping
payloads, byte-identity with whole-module compilation, and the gates
that keep it out of non-distributing jobs."""

import repro.core  # noqa: F401 — registers transform ops
import repro.dialects  # noqa: F401 — registers payload ops
from repro.service import (
    CompilationCache,
    CompileEngine,
    CompileJob,
    JobStatus,
)

from .test_engine import UNROLL
from .test_sharding import MODULE_ANNOTATE, SINGLE, _func, _module

F0, F1, F2 = _func("f0", 8), _func("f1", 4), _func("f2", 16)


def _engine(cache=None, function_tier=True):
    return CompileEngine(workers=0, cache=cache, preflight=False,
                         function_tier=function_tier)


def _reference(payload):
    """Whole-module compilation with the tier disabled."""
    engine = _engine(cache=None, function_tier=False)
    try:
        result = engine.run_job(
            CompileJob(payload_text=payload, script_text=UNROLL)
        )
    finally:
        engine.shutdown()
    assert result.status is JobStatus.SUCCESS
    return result.output


class TestOverlapReuse:
    def test_shared_function_hits_across_payloads(self):
        cache = CompilationCache(capacity=64)
        engine = _engine(cache)
        try:
            first = engine.run_job(CompileJob(
                payload_text=_module(F0, F1), script_text=UNROLL))
            assert first.status is JobStatus.SUCCESS
            assert not first.function_tier
            # f0 and f1 are now in the function tier; a payload
            # sharing f0 only re-compiles f2.
            second = engine.run_job(CompileJob(
                payload_text=_module(F0, F2), script_text=UNROLL))
        finally:
            engine.shutdown()
        assert second.status is JobStatus.SUCCESS
        assert second.function_tier
        assert not second.cache_hit  # f2 had to be compiled
        assert engine.stats.function_tier_hits == 1
        assert cache.stats.function_hits >= 1
        assert second.output == _reference(_module(F0, F2))

    def test_reordered_functions_assemble_from_tier_alone(self):
        cache = CompilationCache(capacity=64)
        engine = _engine(cache)
        try:
            engine.run_job(CompileJob(
                payload_text=_module(F0, F1), script_text=UNROLL))
            executed = engine.stats.executed
            swapped = engine.run_job(CompileJob(
                payload_text=_module(F1, F0), script_text=UNROLL))
        finally:
            engine.shutdown()
        assert swapped.status is JobStatus.SUCCESS
        assert swapped.function_tier and swapped.cache_hit
        # Both functions came from the tier: nothing executed.
        assert engine.stats.executed == executed
        assert swapped.output == _reference(_module(F1, F0))

    def test_assembled_output_cached_at_whole_job_tier(self):
        cache = CompilationCache(capacity=64)
        engine = _engine(cache)
        try:
            engine.run_job(CompileJob(
                payload_text=_module(F0, F1), script_text=UNROLL))
            engine.run_job(CompileJob(
                payload_text=_module(F1, F0), script_text=UNROLL))
            again = engine.run_job(CompileJob(
                payload_text=_module(F1, F0), script_text=UNROLL))
        finally:
            engine.shutdown()
        # Third run: plain whole-job hit, no assembly needed.
        assert again.cache_hit and not again.function_tier

    def test_output_digest_reported(self):
        cache = CompilationCache(capacity=64)
        engine = _engine(cache)
        try:
            result = engine.run_job(CompileJob(
                payload_text=_module(F0, F1), script_text=UNROLL))
        finally:
            engine.shutdown()
        assert result.output_digest is not None
        from repro.ir import op_digest, parse

        assert op_digest(parse(result.output)) == result.output_digest


class TestByteIdentity:
    def test_tier_output_matches_whole_module_for_batch(self):
        payloads = [
            _module(F0, F1),
            _module(F0, F2),
            _module(F1, F2, F0),
            _module(F2, F1),
        ]
        cache = CompilationCache(capacity=64)
        engine = _engine(cache)
        try:
            results = [
                engine.run_job(CompileJob(payload_text=payload,
                                          script_text=UNROLL))
                for payload in payloads
            ]
        finally:
            engine.shutdown()
        for payload, result in zip(payloads, results):
            assert result.status is JobStatus.SUCCESS
            assert result.output == _reference(payload)
        # The overlap actually exercised the tier.
        assert engine.stats.function_tier_hits >= 1


class TestTierGates:
    def test_single_function_payload_skips_tier(self):
        cache = CompilationCache(capacity=64)
        engine = _engine(cache)
        try:
            result = engine.run_job(CompileJob(
                payload_text=SINGLE, script_text=UNROLL))
        finally:
            engine.shutdown()
        assert result.status is JobStatus.SUCCESS
        assert not result.function_tier
        # ... but its function still populates the tier for reuse by
        # multi-function payloads that contain it.
        assert cache.stats.function_puts == 1

    def test_non_distributing_schedule_never_uses_tier(self):
        cache = CompilationCache(capacity=64)
        engine = _engine(cache)
        try:
            first = engine.run_job(CompileJob(
                payload_text=_module(F0, F1),
                script_text=MODULE_ANNOTATE))
            second = engine.run_job(CompileJob(
                payload_text=_module(F0, F2),
                script_text=MODULE_ANNOTATE))
        finally:
            engine.shutdown()
        assert first.status is JobStatus.SUCCESS
        assert second.status is JobStatus.SUCCESS
        assert engine.stats.function_tier_hits == 0
        assert cache.stats.function_puts == 0

    def test_disabled_tier_never_consulted(self):
        cache = CompilationCache(capacity=64)
        engine = _engine(cache, function_tier=False)
        try:
            engine.run_job(CompileJob(
                payload_text=_module(F0, F1), script_text=UNROLL))
            engine.run_job(CompileJob(
                payload_text=_module(F0, F2), script_text=UNROLL))
        finally:
            engine.shutdown()
        assert engine.stats.function_tier_hits == 0
        assert cache.stats.function_puts == 0
        assert cache.stats.function_hits == 0

    def test_entry_point_jobs_skip_tier(self):
        # UNROLL has an unnamed sequence; an explicit entry point is
        # enough to disqualify tier participation regardless.
        cache = CompilationCache(capacity=64)
        engine = _engine(cache)
        try:
            engine.run_job(CompileJob(
                payload_text=_module(F0, F1), script_text=UNROLL,
                entry_point="main"))
        finally:
            engine.shutdown()
        assert cache.stats.function_puts == 0

    def test_no_cache_means_no_tier(self):
        engine = _engine(cache=None)
        try:
            result = engine.run_job(CompileJob(
                payload_text=_module(F0, F1), script_text=UNROLL))
        finally:
            engine.shutdown()
        assert result.status is JobStatus.SUCCESS
        assert not result.function_tier
