"""Content-addressed cache: keys, LRU, disk tier, stats."""

from repro.service import CachedResult, CompilationCache, cache_key


def _result(tag="out"):
    return CachedResult("success", tag)


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("p", "s") == cache_key("p", "s")

    def test_sensitive_to_every_component(self):
        base = cache_key("p", "s")
        assert cache_key("q", "s") != base
        assert cache_key("p", "t") != base
        assert cache_key("p", "s", {"n": 1}) != base
        assert cache_key("p", "s", entry_point="main") != base

    def test_param_order_irrelevant(self):
        assert cache_key("p", "s", {"a": 1, "b": 2}) == \
            cache_key("p", "s", {"b": 2, "a": 1})

    def test_scalar_vs_singleton_list_equivalent(self):
        # bind_parameters treats 4 and [4] identically, so must the key.
        assert cache_key("p", "s", {"a": 4}) == \
            cache_key("p", "s", {"a": [4]})

    def test_separator_injection(self):
        # The \x00 separators keep (payload+script) splits distinct.
        assert cache_key("ab", "c") != cache_key("a", "bc")


class TestLru:
    def test_hit_miss_accounting(self):
        cache = CompilationCache(capacity=4)
        key = cache_key("p", "s")
        assert cache.get(key) is None
        cache.put(key, _result())
        hit = cache.get(key)
        assert hit is not None and hit.output == "out"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_order(self):
        cache = CompilationCache(capacity=2)
        cache.put("k1", _result("1"))
        cache.put("k2", _result("2"))
        cache.get("k1")  # promote k1; k2 is now LRU
        cache.put("k3", _result("3"))
        assert cache.get("k2") is None
        assert cache.get("k1") is not None
        assert cache.get("k3") is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_overwrite_does_not_grow(self):
        cache = CompilationCache(capacity=2)
        cache.put("k", _result("a"))
        cache.put("k", _result("b"))
        assert len(cache) == 1
        assert cache.get("k").output == "b"
        assert cache.stats.evictions == 0

    def test_clear(self):
        cache = CompilationCache(capacity=2)
        cache.put("k", _result())
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None


class TestDiskTier:
    def test_survives_a_fresh_cache(self, tmp_path):
        store = str(tmp_path / "cc")
        first = CompilationCache(capacity=4, disk_path=store)
        first.put("k", _result("persisted"))
        assert first.stats.disk_puts == 1

        second = CompilationCache(capacity=4, disk_path=store)
        hit = second.get("k")
        assert hit is not None and hit.output == "persisted"
        assert second.stats.disk_hits == 1
        # Promoted into memory: the next get is a pure memory hit.
        second.get("k")
        assert second.stats.disk_hits == 1
        assert second.stats.hits == 2

    def test_eviction_keeps_disk_copy(self, tmp_path):
        store = str(tmp_path / "cc")
        cache = CompilationCache(capacity=1, disk_path=store)
        cache.put("k1", _result("1"))
        cache.put("k2", _result("2"))  # evicts k1 from memory
        assert cache.stats.evictions == 1
        assert cache.get("k1").output == "1"  # refilled from disk

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = tmp_path / "cc"
        cache = CompilationCache(capacity=2, disk_path=str(store))
        (store / "bad.json").write_text("{not json")
        assert cache.get("bad") is None

    def test_clear_disk(self, tmp_path):
        store = str(tmp_path / "cc")
        cache = CompilationCache(capacity=2, disk_path=store)
        cache.put("k", _result())
        cache.clear(disk=True)
        assert cache.get("k") is None

    def test_init_sweeps_tmp_orphans(self, tmp_path):
        # Regression: a writer killed mid-put (chaos does exactly
        # this) leaves a *.json.tmp.* file that only clear(disk=True)
        # ever removed — in a long-lived server they accumulated
        # forever. Init now sweeps them, counts the sweep, and leaves
        # real entries untouched.
        store = tmp_path / "cc"
        first = CompilationCache(capacity=4, disk_path=str(store))
        first.put("keep", _result("kept"))
        (store / "aaaa.json.tmp.123.456.0").write_text('{"part')
        (store / "bbbb.json.tmp.789.12.3").write_text("")
        second = CompilationCache(capacity=4, disk_path=str(store))
        assert second.stats.disk_orphans_swept == 2
        leftovers = [p.name for p in store.iterdir()
                     if ".json.tmp." in p.name]
        assert leftovers == []
        assert second.get("keep").output == "kept"
        assert "disk_orphans_swept" in second.stats.as_dict()

    def test_roundtrip_preserves_diagnostics(self):
        original = CachedResult("silenceable", "module", "warning: skipped")
        restored = CachedResult.from_json(original.to_json())
        assert restored == original
