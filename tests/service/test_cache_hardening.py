"""Cache-key framing, disk-tier races/corruption, and the function tier."""

import json
import os
import threading

from repro.service import CachedResult, CompilationCache, cache_key
from repro.service.cache import function_key


def _result(tag="out"):
    return CachedResult("success", tag)


class TestKeyFraming:
    def test_separator_spanning_pairs_distinct(self):
        # With bare \x00 separators these two framed identically:
        # ("a\x00b", "c") and ("a", "b\x00c") both hashed a\0b\0c...
        assert cache_key("a\x00b", "c") != cache_key("a", "b\x00c")

    def test_field_boundary_cannot_shift(self):
        assert cache_key("ab", "") != cache_key("a", "b")
        assert cache_key("", "ab") != cache_key("a", "b")

    def test_params_typed_int_vs_bool(self):
        assert cache_key("p", "s", {"n": 1}) != \
            cache_key("p", "s", {"n": True})

    def test_params_cannot_span_into_entry_point(self):
        assert cache_key("p", "s", None, "x") != \
            cache_key("p", "s" + "x", None, None)

    def test_empty_params_equals_none(self):
        assert cache_key("p", "s", {}) == cache_key("p", "s", None)

    def test_function_key_sensitive_to_every_component(self):
        base = function_key("fd", "sd")
        assert function_key("fe", "sd") != base
        assert function_key("fd", "se") != base
        assert function_key("fd", "sd", {"n": 2}) != base
        assert function_key("fd", "sd") == base

    def test_function_key_distinct_namespace_from_cache_key(self):
        # Same raw fields through either key function must never
        # produce the same address (domain separation).
        assert function_key("p", "s") != cache_key("p", "s")


class TestDiskTmpRace:
    def test_tmp_suffix_unique_per_call(self, tmp_path, monkeypatch):
        cache = CompilationCache(capacity=4, disk_path=str(tmp_path))
        seen = []
        real_replace = os.replace

        def recording_replace(src, dst):
            seen.append(src)
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", recording_replace)
        cache.put("k", _result("one"))
        cache.put("k", _result("two"))
        assert len(seen) == 2 and seen[0] != seen[1]

    def test_concurrent_same_key_puts_never_corrupt(self, tmp_path):
        cache = CompilationCache(capacity=64, disk_path=str(tmp_path))
        # One short and one long payload: with a shared temp file,
        # interleaved writes leave a truncated/garbled JSON behind.
        payloads = ["x" * 10, "y" * 100_000]

        def hammer(index):
            for round_ in range(20):
                cache.put("hot", _result(payloads[index % 2]))

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with open(os.path.join(str(tmp_path), "hot.json")) as handle:
            decoded = json.loads(handle.read())
        assert decoded["output"] in payloads
        # No temp files left behind either.
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if ".tmp." in name]
        assert leftovers == []


class TestDiskCorruption:
    def test_corrupt_entry_unlinked_and_counted(self, tmp_path):
        path = str(tmp_path)
        writer = CompilationCache(capacity=4, disk_path=path)
        key = cache_key("p", "s")
        writer.put(key, _result())
        with open(os.path.join(path, f"{key}.json"), "w") as handle:
            handle.write('{"status": "success", "outp')  # truncated
        reader = CompilationCache(capacity=4, disk_path=path)
        assert reader.get(key) is None
        assert reader.stats.disk_corrupt == 1
        assert not os.path.exists(os.path.join(path, f"{key}.json"))
        # Second lookup is a clean miss: the poison is gone.
        assert reader.get(key) is None
        assert reader.stats.disk_corrupt == 1

    def test_missing_entry_is_not_corruption(self, tmp_path):
        cache = CompilationCache(capacity=4, disk_path=str(tmp_path))
        assert cache.get("absent") is None
        assert cache.stats.disk_corrupt == 0

    def test_clear_removes_orphaned_tmp_files(self, tmp_path):
        path = str(tmp_path)
        cache = CompilationCache(capacity=4, disk_path=path)
        cache.put("k", _result())
        orphan = os.path.join(path, "k.json.tmp.999.888.7")
        with open(orphan, "w") as handle:
            handle.write("{partial")
        cache.clear(disk=True)
        assert os.listdir(path) == []


class TestFunctionTierStore:
    def test_roundtrip_and_stats(self):
        cache = CompilationCache(capacity=8)
        key = function_key("fd", "sd")
        assert cache.get_function(key) is None
        cache.put_function(key, _result("fn-out"))
        hit = cache.get_function(key)
        assert hit is not None and hit.output == "fn-out"
        assert cache.stats.function_misses == 1
        assert cache.stats.function_hits == 1
        assert cache.stats.function_puts == 1

    def test_namespaced_from_whole_job_tier(self):
        cache = CompilationCache(capacity=8)
        cache.put_function("shared", _result("fn"))
        assert cache.get("shared") is None
        cache.put("shared", _result("job"))
        assert cache.get_function("shared").output == "fn"
        assert cache.get("shared").output == "job"

    def test_function_entries_spill_to_disk(self, tmp_path):
        path = str(tmp_path)
        writer = CompilationCache(capacity=8, disk_path=path)
        writer.put_function("abc", _result("fn-out"))
        reader = CompilationCache(capacity=8, disk_path=path)
        hit = reader.get_function("abc")
        assert hit is not None and hit.output == "fn-out"
        assert reader.stats.disk_hits == 1

    def test_output_digest_survives_disk_roundtrip(self, tmp_path):
        path = str(tmp_path)
        writer = CompilationCache(capacity=8, disk_path=path)
        writer.put("k", CachedResult("success", "out", "", "d" * 64))
        reader = CompilationCache(capacity=8, disk_path=path)
        assert reader.get("k").output_digest == "d" * 64
