"""Disk-cache graceful degradation: unusable directories, ENOSPC
mid-write, corrupt-entry storms — the cache must demote itself to
memory-only instead of ever failing a lookup or a job."""

import json
import os

import pytest

from repro.service import CachedResult, CompilationCache
from repro.service.frontier import main as batch_main
from repro.testing.faults import FaultPlan, FaultSite

from .test_engine import PAYLOAD, UNROLL


def _result(tag="out"):
    return CachedResult("success", f"module-{tag}", "", f"digest-{tag}")


class TestUnusableDirectory:
    def test_file_as_parent_degrades_at_construction(self, tmp_path):
        # makedirs cannot create a directory under a regular file —
        # robust even when running as root, unlike permission bits.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.warns(RuntimeWarning, match="degraded to memory-only"):
            cache = CompilationCache(disk_path=str(blocker / "cache"))
        assert cache.degraded
        assert cache.stats.disk_errors == 1
        # Memory tier still fully functional.
        cache.put("k", _result())
        assert cache.get("k").output == "module-out"
        assert cache.stats.disk_puts == 0


class TestWriteErrors:
    def test_enospc_storm_demotes_to_memory_only(self, tmp_path):
        plan = FaultPlan(seed=0,
                         rates={FaultSite.DISK_WRITE_ERROR: 1.0})
        cache = CompilationCache(disk_path=str(tmp_path / "cache"),
                                 max_disk_errors=2, faults=plan)
        with pytest.warns(RuntimeWarning, match="memory-only"):
            cache.put("a", _result("a"))
            cache.put("b", _result("b"))
        assert cache.degraded
        assert cache.stats.disk_errors == 2
        assert cache.stats.disk_puts == 0
        # Degraded puts skip the disk entirely: no third error.
        cache.put("c", _result("c"))
        assert cache.stats.disk_errors == 2
        # All three entries remain served from memory.
        for tag in ("a", "b", "c"):
            assert cache.get(tag).output == f"module-{tag}"
        # Nothing leaked onto disk (no entry files, no orphan temps).
        assert os.listdir(tmp_path / "cache") == []

    def test_single_error_below_budget_keeps_disk_tier(self, tmp_path):
        plan = FaultPlan(seed=0,
                         rates={FaultSite.DISK_WRITE_ERROR: 1.0},
                         max_fires=1)
        cache = CompilationCache(disk_path=str(tmp_path / "cache"),
                                 max_disk_errors=8, faults=plan)
        cache.put("a", _result("a"))
        cache.put("b", _result("b"))
        assert not cache.degraded
        assert cache.stats.disk_errors == 1
        assert cache.stats.disk_puts == 1


class TestCorruptEntries:
    def _seed_disk(self, path, keys):
        writer = CompilationCache(disk_path=path)
        for key in keys:
            writer.put(key, _result(key))

    def test_corrupt_entry_is_evicted_once(self, tmp_path):
        path = str(tmp_path / "cache")
        self._seed_disk(path, ["a"])
        plan = FaultPlan(seed=0,
                         rates={FaultSite.DISK_READ_CORRUPT: 1.0},
                         max_fires=1)
        reader = CompilationCache(disk_path=path, faults=plan)
        assert reader.get("a") is None
        assert reader.stats.disk_corrupt == 1
        # The corrupt file was unlinked: the next lookup is a clean
        # miss, not a second decode of garbage.
        assert reader.get("a") is None
        assert reader.stats.disk_corrupt == 1
        assert not os.path.exists(os.path.join(path, "a.json"))

    def test_corrupt_storm_demotes_tier(self, tmp_path):
        path = str(tmp_path / "cache")
        keys = ["a", "b", "c"]
        self._seed_disk(path, keys)
        plan = FaultPlan(seed=0,
                         rates={FaultSite.DISK_READ_CORRUPT: 1.0})
        reader = CompilationCache(disk_path=path, max_disk_errors=3,
                                  faults=plan)
        with pytest.warns(RuntimeWarning, match="corrupt-entry storm"):
            for key in keys:
                assert reader.get(key) is None
        assert reader.degraded
        assert reader.stats.disk_corrupt == 3

    def test_real_corrupt_files_without_injection(self, tmp_path):
        # Truncated/garbage bytes on disk (no FaultPlan) take the same
        # path: eviction, counting, degradation.
        path = tmp_path / "cache"
        path.mkdir()
        (path / "bad.json").write_text("{truncated")
        cache = CompilationCache(disk_path=str(path), max_disk_errors=1)
        with pytest.warns(RuntimeWarning):
            assert cache.get("bad") is None
        assert cache.degraded
        assert cache.stats.disk_corrupt == 1


class TestBatchJsonCounters:
    @pytest.fixture()
    def tree(self, tmp_path):
        (tmp_path / "payloads").mkdir()
        (tmp_path / "payloads" / "p.mlir").write_text(PAYLOAD)
        (tmp_path / "schedules").mkdir()
        (tmp_path / "schedules" / "s.mlir").write_text(UNROLL)
        return tmp_path

    def test_disk_counters_surface_in_metrics(self, tree, capsys):
        metrics_file = tree / "metrics.json"
        code = batch_main([
            str(tree / "payloads"),
            "--schedule", str(tree / "schedules"),
            "--jobs", "0",
            "--cache-dir", str(tree / "cache"),
            "--json", str(metrics_file),
        ])
        assert code == 0
        metrics = json.loads(metrics_file.read_text())
        cache = metrics["cache"]
        assert cache["disk_errors"] == 0
        assert cache["disk_corrupt"] == 0
        assert cache["degraded"] is False
        assert metrics["profiler"]["resilience"]["retries"] == 0

    def test_injected_disk_faults_counted_in_metrics(self, tree,
                                                     capsys, recwarn):
        metrics_file = tree / "metrics.json"
        code = batch_main([
            str(tree / "payloads"),
            "--schedule", str(tree / "schedules"),
            "--jobs", "0",
            "--cache-dir", str(tree / "cache"),
            "--fault", "disk_write_error=1.0",
            "--fault-seed", "0",
            "--json", str(metrics_file),
        ])
        # Disk faults never fail jobs.
        assert code == 0
        metrics = json.loads(metrics_file.read_text())
        assert metrics["cache"]["disk_errors"] >= 1
        assert metrics["faults"]["injected"]["disk_write_error"] >= 1
        assert metrics["faults"]["schedule"]
