"""ServiceFrontier admission layer and the repro-batch CLI."""

import asyncio
import json

import pytest

from repro.service import CompilationCache, CompileEngine, CompileJob
from repro.service.frontier import ServiceFrontier, main as batch_main

from .test_engine import PAYLOAD, UNROLL, UNROLL_BOUND, USE_AFTER_CONSUME


def _job(script=UNROLL, **kwargs):
    return CompileJob(payload_text=PAYLOAD, script_text=script, **kwargs)


class TestFrontier:
    def test_submit_roundtrip(self):
        async def go():
            with CompileEngine(workers=0) as engine:
                async with ServiceFrontier(engine) as frontier:
                    return await frontier.submit(_job())

        result = asyncio.run(go())
        assert result.ok

    def test_run_preserves_submission_order(self):
        jobs = [
            _job(job_id="a"),
            _job(script=USE_AFTER_CONSUME, job_id="b"),
            _job(script=UNROLL_BOUND, job_id="c"),
        ]

        async def go():
            with CompileEngine(workers=0) as engine:
                async with ServiceFrontier(engine) as frontier:
                    return await frontier.run(jobs)

        results = asyncio.run(go())
        assert [r.job_id for r in results] == ["a", "b", "c"]
        assert results[0].ok and results[2].ok and not results[1].ok

    def test_bounded_queue_applies_backpressure(self):
        # With max_queue=1 every producer must wait for a dispatcher
        # pop before the next admission; all jobs still complete.
        jobs = [_job(job_id=f"j{i}") for i in range(8)]

        async def go():
            with CompileEngine(workers=0,
                               cache=CompilationCache()) as engine:
                async with ServiceFrontier(engine, max_queue=1,
                                           dispatchers=1) as frontier:
                    results = await frontier.run(jobs)
                    depth = frontier.queue_depth
                return results, depth, engine.stats.completed

        results, depth, completed = asyncio.run(go())
        assert all(r.ok for r in results)
        assert depth == 0
        assert completed == 8

    def test_submit_before_start_raises(self):
        async def go():
            with CompileEngine(workers=0) as engine:
                frontier = ServiceFrontier(engine)
                with pytest.raises(RuntimeError):
                    await frontier.submit(_job())

        asyncio.run(go())

    def test_invalid_queue_bound(self):
        with CompileEngine(workers=0) as engine:
            with pytest.raises(ValueError):
                ServiceFrontier(engine, max_queue=0)

    def test_close_is_idempotent(self):
        async def go():
            with CompileEngine(workers=0) as engine:
                frontier = ServiceFrontier(engine)
                await frontier.start()
                await frontier.close()
                await frontier.close()

        asyncio.run(go())


class TestBatchCli:
    @pytest.fixture()
    def tree(self, tmp_path):
        payloads = tmp_path / "payloads"
        schedules = tmp_path / "schedules"
        payloads.mkdir()
        schedules.mkdir()
        (payloads / "a.mlir").write_text(PAYLOAD)
        (payloads / "b.mlir").write_text(PAYLOAD)
        (schedules / "unroll.mlir").write_text(UNROLL)
        (schedules / "bound.mlir").write_text(UNROLL_BOUND)
        return tmp_path

    def test_batch_compiles_the_product(self, tree, capsys):
        out = tree / "out"
        metrics = tree / "metrics.json"
        code = batch_main([
            str(tree / "payloads"),
            "--schedule", str(tree / "schedules"),
            "--jobs", "0",
            "-o", str(out),
            "--json", str(metrics),
        ])
        assert code == 0
        produced = sorted(p.name for p in out.iterdir())
        assert produced == [
            "a.bound.mlir", "a.unroll.mlir",
            "b.bound.mlir", "b.unroll.mlir",
        ]
        data = json.loads(metrics.read_text())
        assert data["jobs"] == 4
        assert data["by_status"] == {"success": 4}
        # a and b are identical payloads: 2 distinct compilations,
        # 2 cache hits.
        assert data["engine"]["executed"] == 2
        assert data["engine"]["cache_hits"] == 2
        assert data["cache"]["hit_rate"] == 0.5
        assert "service" in data["profiler"]

    def test_batch_param_binding(self, tree, capsys):
        out = tree / "out"
        code = batch_main([
            str(tree / "payloads" / "a.mlir"),
            "--schedule", str(tree / "schedules" / "bound.mlir"),
            "--jobs", "0",
            "--param", "factor=4",
            "-o", str(out),
        ])
        assert code == 0
        text = (out / "a.bound.mlir").read_text()
        assert text.count("1 : i64") == 4

    def test_batch_reports_failures(self, tree, capsys):
        bad = tree / "schedules" / "bad.mlir"
        bad.write_text(USE_AFTER_CONSUME)
        code = batch_main([
            str(tree / "payloads" / "a.mlir"),
            "--schedule", str(bad),
            "--jobs", "0",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "rejected" in captured.out
        assert "error" in captured.err

    def test_batch_missing_inputs(self, tree, capsys):
        code = batch_main([
            str(tree / "nope"),
            "--schedule", str(tree / "schedules"),
        ])
        assert code == 2

    def test_batch_bad_param(self, tree, capsys):
        code = batch_main([
            str(tree / "payloads"),
            "--schedule", str(tree / "schedules"),
            "--param", "oops",
        ])
        assert code == 2
