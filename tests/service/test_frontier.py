"""ServiceFrontier admission layer and the repro-batch CLI."""

import asyncio
import json
import threading

import pytest

from repro.service import (
    CompilationCache,
    CompileEngine,
    CompileJob,
    JobResult,
    JobStatus,
    ServiceClosedError,
)
from repro.service.frontier import (
    ServiceFrontier,
    _unique_labels,
    main as batch_main,
)

from .test_engine import PAYLOAD, UNROLL, UNROLL_BOUND, USE_AFTER_CONSUME


def _job(script=UNROLL, **kwargs):
    return CompileJob(payload_text=PAYLOAD, script_text=script, **kwargs)


class TestFrontier:
    def test_submit_roundtrip(self):
        async def go():
            with CompileEngine(workers=0) as engine:
                async with ServiceFrontier(engine) as frontier:
                    return await frontier.submit(_job())

        result = asyncio.run(go())
        assert result.ok

    def test_run_preserves_submission_order(self):
        jobs = [
            _job(job_id="a"),
            _job(script=USE_AFTER_CONSUME, job_id="b"),
            _job(script=UNROLL_BOUND, job_id="c"),
        ]

        async def go():
            with CompileEngine(workers=0) as engine:
                async with ServiceFrontier(engine) as frontier:
                    return await frontier.run(jobs)

        results = asyncio.run(go())
        assert [r.job_id for r in results] == ["a", "b", "c"]
        assert results[0].ok and results[2].ok and not results[1].ok

    def test_bounded_queue_applies_backpressure(self):
        # With max_queue=1 every producer must wait for a dispatcher
        # pop before the next admission; all jobs still complete.
        jobs = [_job(job_id=f"j{i}") for i in range(8)]

        async def go():
            with CompileEngine(workers=0,
                               cache=CompilationCache()) as engine:
                async with ServiceFrontier(engine, max_queue=1,
                                           dispatchers=1) as frontier:
                    results = await frontier.run(jobs)
                    depth = frontier.queue_depth
                return results, depth, engine.stats.completed

        results, depth, completed = asyncio.run(go())
        assert all(r.ok for r in results)
        assert depth == 0
        assert completed == 8

    def test_queue_depth_samples_never_negative(self):
        # Regression: depth used to be incremented only after put(),
        # so a dispatcher could pop-and-decrement first and the
        # profiler sampled transiently negative depths.
        class _DepthRecorder:
            def __init__(self):
                self.samples = []

            def record_queue_depth(self, depth):
                self.samples.append(depth)

            def record_service_job(self, *args, **kwargs):
                pass

            def record_worker_restart(self):
                pass

        recorder = _DepthRecorder()
        jobs = [_job(job_id=f"d{i}") for i in range(12)]

        async def go():
            with CompileEngine(workers=0, profiler=recorder) as engine:
                async with ServiceFrontier(engine, max_queue=2,
                                           dispatchers=2) as frontier:
                    return await frontier.run(jobs)

        results = asyncio.run(go())
        assert all(r.ok for r in results)
        # Depth is sampled on both edges now: once at admission (the
        # rising slope, always >= 1 because the submitter counts its
        # own job) and once at dequeue (the falling slope, >= 0).
        assert len(recorder.samples) == 2 * len(jobs)
        assert all(sample >= 0 for sample in recorder.samples)
        assert sum(1 for s in recorder.samples if s >= 1) >= len(jobs)

    def test_submit_before_start_raises(self):
        async def go():
            with CompileEngine(workers=0) as engine:
                frontier = ServiceFrontier(engine)
                with pytest.raises(RuntimeError):
                    await frontier.submit(_job())

        asyncio.run(go())

    def test_invalid_queue_bound(self):
        with CompileEngine(workers=0) as engine:
            with pytest.raises(ValueError):
                ServiceFrontier(engine, max_queue=0)

    def test_close_is_idempotent(self):
        async def go():
            with CompileEngine(workers=0) as engine:
                frontier = ServiceFrontier(engine)
                await frontier.start()
                await frontier.close()
                await frontier.close()

        asyncio.run(go())

    def test_submit_after_close_raises_instead_of_hanging(self):
        # Regression: a job enqueued behind the shutdown sentinels was
        # never dispatched and its submitter awaited forever.
        async def go():
            with CompileEngine(workers=0) as engine:
                frontier = ServiceFrontier(engine)
                await frontier.start()
                await frontier.close()
                with pytest.raises(ServiceClosedError):
                    await asyncio.wait_for(frontier.submit(_job()),
                                           timeout=5.0)

        asyncio.run(go())

    def test_submit_during_drain_raises_but_admitted_jobs_finish(self):
        # A dispatcher is mid-job (blocked in the engine) while
        # close() drains: a late submit must fail fast, and the job
        # admitted before close() must still complete.
        class _SlowEngine:
            workers = 0
            profiler = None
            faults = None

            def __init__(self):
                self.release = threading.Event()

            def run_job(self, job):
                assert self.release.wait(10.0)
                return JobResult(job.job_id, JobStatus.SUCCESS)

        async def go():
            engine = _SlowEngine()
            frontier = ServiceFrontier(engine, dispatchers=1)
            await frontier.start()
            admitted = asyncio.ensure_future(
                frontier.submit(_job(job_id="admitted"))
            )
            # Let the dispatcher pick the job up and block in run_job.
            await asyncio.sleep(0.05)
            closer = asyncio.ensure_future(frontier.close())
            await asyncio.sleep(0.05)
            with pytest.raises(ServiceClosedError):
                await frontier.submit(_job(job_id="late"))
            engine.release.set()
            await asyncio.wait_for(closer, timeout=10.0)
            result = await asyncio.wait_for(admitted, timeout=10.0)
            assert result.status is JobStatus.SUCCESS

        asyncio.run(go())

    def test_close_racing_submit_refuses_instead_of_hanging(self):
        # Regression (close/submit race): submit() passed its closed
        # check, then parked in queue.put(); close() ran to completion
        # meanwhile. asyncio.Queue wakeups are not FIFO-fair with
        # fresh puts, so the job could land behind (or after) the
        # shutdown sentinels — never dispatched, submitter hung
        # forever. The gate below deterministically forces that exact
        # interleaving: the job's put is held while close() finishes,
        # then released into the dead queue.
        async def go():
            with CompileEngine(workers=0) as engine:
                frontier = ServiceFrontier(engine, dispatchers=1)
                await frontier.start()
                gate = asyncio.Event()
                parked = asyncio.Event()
                real_put = frontier._queue.put

                async def gated_put(item):
                    if item is not None:  # sentinels pass the gate
                        parked.set()
                        await gate.wait()
                    await real_put(item)

                frontier._queue.put = gated_put
                submitter = asyncio.ensure_future(
                    frontier.submit(_job(job_id="racer"))
                )
                # The submit is past its closed-flag check, parked in
                # put(); now let close() win the race outright.
                await asyncio.wait_for(parked.wait(), timeout=5.0)
                await asyncio.wait_for(frontier.close(), timeout=5.0)
                gate.set()
                with pytest.raises(ServiceClosedError):
                    await asyncio.wait_for(submitter, timeout=5.0)

        asyncio.run(go())

    def test_refused_submit_ends_spans_and_trace_validates(self, tmp_path):
        # Regression (span leak on refusal): the per-job root span
        # opens before admission, so a refusal used to leave it (and
        # its queue.wait child) unended — validate_chrome_trace then
        # flags the child as an orphan because unended spans never
        # reach the exporter. Interleave the same close/submit race
        # with a tracer attached and check the exported trace.
        from repro.observability import (
            Tracer,
            validate_chrome_trace,
            validate_events,
        )
        from repro.observability.events import EventLog

        tracer = Tracer()
        events = EventLog()

        async def go():
            with CompileEngine(workers=0, tracer=tracer,
                               events=events) as engine:
                frontier = ServiceFrontier(engine, dispatchers=1)
                await frontier.start()
                ok = await frontier.submit(_job(job_id="fine"))
                assert ok.ok
                gate = asyncio.Event()
                parked = asyncio.Event()
                real_put = frontier._queue.put

                async def gated_put(item):
                    if item is not None:
                        parked.set()
                        await gate.wait()
                    await real_put(item)

                frontier._queue.put = gated_put
                submitter = asyncio.ensure_future(
                    frontier.submit(_job(job_id="refused"))
                )
                await asyncio.wait_for(parked.wait(), timeout=5.0)
                await asyncio.wait_for(frontier.close(), timeout=5.0)
                gate.set()
                with pytest.raises(ServiceClosedError):
                    await asyncio.wait_for(submitter, timeout=5.0)

        asyncio.run(go())
        trace_out = tmp_path / "trace.json"
        tracer.write_chrome(str(trace_out))
        trace = json.loads(trace_out.read_text())
        assert validate_chrome_trace(trace) == []
        # The refused job's spans are present and marked as errors —
        # ended, not leaked.
        statuses = {
            event["args"].get("status")
            for event in trace["traceEvents"]
            if event.get("ph") == "X"
            and event["args"].get("job_id") == "refused"
        }
        assert statuses == {"error"}
        # The event stream stays schema-valid too: the refusal emits
        # the terminal COMPLETED (status=cancelled) so the vocabulary
        # stays closed.
        assert validate_events(events.records()) == []
        refusal = [r for r in events.records()
                   if r.get("job_id") == "refused"]
        assert [r["event"] for r in refusal] == ["ADMITTED", "COMPLETED"]
        assert refusal[-1]["status"] == "cancelled"

    def test_restart_after_close_accepts_jobs_again(self):
        async def go():
            with CompileEngine(workers=0) as engine:
                frontier = ServiceFrontier(engine)
                await frontier.start()
                await frontier.close()
                await frontier.start()
                try:
                    return await frontier.submit(_job())
                finally:
                    await frontier.close()

        assert asyncio.run(go()).ok


class TestBatchCli:
    @pytest.fixture()
    def tree(self, tmp_path):
        payloads = tmp_path / "payloads"
        schedules = tmp_path / "schedules"
        payloads.mkdir()
        schedules.mkdir()
        (payloads / "a.mlir").write_text(PAYLOAD)
        (payloads / "b.mlir").write_text(PAYLOAD)
        (schedules / "unroll.mlir").write_text(UNROLL)
        (schedules / "bound.mlir").write_text(UNROLL_BOUND)
        return tmp_path

    def test_batch_compiles_the_product(self, tree, capsys):
        out = tree / "out"
        metrics = tree / "metrics.json"
        code = batch_main([
            str(tree / "payloads"),
            "--schedule", str(tree / "schedules"),
            "--jobs", "0",
            "-o", str(out),
            "--json", str(metrics),
        ])
        assert code == 0
        produced = sorted(p.name for p in out.iterdir())
        assert produced == [
            "a.bound.mlir", "a.unroll.mlir",
            "b.bound.mlir", "b.unroll.mlir",
        ]
        data = json.loads(metrics.read_text())
        assert data["jobs"] == 4
        assert data["by_status"] == {"success": 4}
        # a and b are identical payloads: 2 distinct compilations,
        # 2 cache hits.
        assert data["engine"]["executed"] == 2
        assert data["engine"]["cache_hits"] == 2
        assert data["cache"]["hit_rate"] == 0.5
        assert "service" in data["profiler"]

    def test_batch_param_binding(self, tree, capsys):
        out = tree / "out"
        code = batch_main([
            str(tree / "payloads" / "a.mlir"),
            "--schedule", str(tree / "schedules" / "bound.mlir"),
            "--jobs", "0",
            "--param", "factor=4",
            "-o", str(out),
        ])
        assert code == 0
        text = (out / "a.bound.mlir").read_text()
        assert text.count("1 : i64") == 4

    def test_batch_reports_failures(self, tree, capsys):
        bad = tree / "schedules" / "bad.mlir"
        bad.write_text(USE_AFTER_CONSUME)
        code = batch_main([
            str(tree / "payloads" / "a.mlir"),
            "--schedule", str(bad),
            "--jobs", "0",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "rejected" in captured.out
        assert "error" in captured.err

    def test_duplicate_schedule_stems_do_not_collide(self, tree, capsys):
        # Regression: --schedule is repeatable across directories, and
        # two files named unroll.mlir used to produce one job id —
        # with -o, the second output silently overwrote the first.
        other = tree / "schedules2"
        other.mkdir()
        (other / "unroll.mlir").write_text(UNROLL_BOUND)
        out = tree / "out"
        code = batch_main([
            str(tree / "payloads" / "a.mlir"),
            "--schedule", str(tree / "schedules" / "unroll.mlir"),
            "--schedule", str(other / "unroll.mlir"),
            "--jobs", "0",
            "-o", str(out),
        ])
        assert code == 0
        produced = sorted(p.name for p in out.iterdir())
        assert produced == [
            "a.schedules.unroll.mlir",
            "a.schedules2.unroll.mlir",
        ]

    def test_batch_missing_inputs(self, tree, capsys):
        code = batch_main([
            str(tree / "nope"),
            "--schedule", str(tree / "schedules"),
        ])
        assert code == 2

    def test_batch_bad_param(self, tree, capsys):
        code = batch_main([
            str(tree / "payloads"),
            "--schedule", str(tree / "schedules"),
            "--param", "oops",
        ])
        assert code == 2


class TestUniqueLabels:
    def test_distinct_stems_stay_plain(self):
        assert _unique_labels(["a/x.mlir", "b/y.mlir"]) == ["x", "y"]

    def test_duplicate_stems_gain_parent_dir(self):
        assert _unique_labels(["a/x.mlir", "b/x.mlir"]) == ["a.x", "b.x"]

    def test_same_file_twice_falls_back_to_index(self):
        assert _unique_labels(["a/x.mlir", "a/x.mlir"]) == \
            ["a.x.0", "a.x.1"]
