"""CompileEngine: classification, caching, coalescing, crash containment.

The sleep/crash transform ops below are registered at import time —
before any engine (and hence any pool) is constructed — so fork-started
workers inherit them and can execute the hostile schedules.
"""

import os
import textwrap
import time

import pytest

import repro.core  # registers transform ops
import repro.dialects  # registers payload ops
from repro.core.dialect import TransformOp
from repro.core.errors import TransformResult
from repro.ir.core import register_op
from repro.service import (
    CompilationCache,
    CompileEngine,
    CompileJob,
    JobStatus,
)


@register_op
class _ServiceTestSleepOp(TransformOp):
    """Blocks the worker long enough to trip any sub-second deadline."""

    NAME = "transform.test.service_sleep"

    def apply(self, interpreter, state) -> TransformResult:
        time.sleep(5.0)
        return TransformResult.success()


@register_op
class _ServiceTestRaiseOp(TransformOp):
    """Raises a raw exception from transform code — contained into a
    definite failure by default, propagated verbatim under strict."""

    NAME = "transform.test.service_raise"

    def apply(self, interpreter, state) -> TransformResult:
        raise ValueError("raw crash from transform code")


@register_op
class _ServiceTestCrashOp(TransformOp):
    """Kills the worker process outright — no exception barrier can
    contain ``os._exit``, which is exactly the point."""

    NAME = "transform.test.service_crash"

    def apply(self, interpreter, state) -> TransformResult:
        os._exit(3)


PAYLOAD = textwrap.dedent("""
    "builtin.module"() ({
      "func.func"() ({
        %lb = "arith.constant"() {value = 0 : index} : () -> index
        %ub = "arith.constant"() {value = 8 : index} : () -> index
        %st = "arith.constant"() {value = 1 : index} : () -> index
        "scf.for"(%lb, %ub, %st) ({
        ^bb0(%i: index):
          %c = "arith.constant"() {value = 1 : i64} : () -> i64
          "scf.yield"() : () -> ()
        }) : (index, index, index) -> ()
        "func.return"() : () -> ()
      }) {sym_name = "f", function_type = () -> ()} : () -> ()
    }) : () -> ()
""").strip()

UNROLL = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops) {factor = 2 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()

UNROLL_BOUND = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %factor = "transform.param.constant"() {binding = "factor", value = 2 : i64} : () -> !transform.param<i64>
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops, %factor) : (!transform.any_op, !transform.param<i64>) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()

#: Statically broken: %loops is used after loop.unroll consumed it.
USE_AFTER_CONSUME = textwrap.dedent("""
    "transform.sequence"() ({
    ^bb0(%root: !transform.any_op):
      %loops = "transform.match_op"(%root) {names = ["scf.for"], position = "all"} : (!transform.any_op) -> !transform.any_op
      "transform.loop.unroll"(%loops) {factor = 2 : i64} : (!transform.any_op) -> ()
      "transform.annotate"(%loops) {attr_name = "mark", value = 1 : i64} : (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }) : () -> ()
""").strip()


def _hostile_script(op_name):
    return textwrap.dedent(f"""
        "transform.sequence"() ({{
        ^bb0(%root: !transform.any_op):
          "{op_name}"() : () -> ()
          "transform.yield"() : () -> ()
        }}) : () -> ()
    """).strip()


def _job(payload=PAYLOAD, script=UNROLL, **kwargs):
    return CompileJob(payload_text=payload, script_text=script, **kwargs)


class TestClassification:
    def test_success_inline(self):
        with CompileEngine(workers=0) as engine:
            result = engine.run_job(_job())
        assert result.status is JobStatus.SUCCESS
        # Partial unroll by 2 duplicates the loop body in place.
        assert result.output and result.output.count("1 : i64") == 2
        assert result.stats["transforms_executed"] > 0
        assert result.ok

    def test_success_pooled(self):
        with CompileEngine(workers=1) as engine:
            result = engine.run_job(_job())
        assert result.status is JobStatus.SUCCESS
        assert result.worker_seconds > 0
        assert result.attempts == 1

    def test_preflight_rejects_use_after_consume(self):
        with CompileEngine(workers=0) as engine:
            result = engine.run_job(_job(script=USE_AFTER_CONSUME))
        assert result.status is JobStatus.REJECTED
        assert "error" in result.diagnostics
        assert engine.stats.rejected == 1
        assert engine.stats.executed == 0
        assert not result.ok

    def test_preflight_verdict_is_memoized(self):
        with CompileEngine(workers=0) as engine:
            for _ in range(3):
                engine.run_job(_job(script=USE_AFTER_CONSUME))
            assert len(engine._script_gate) == 1
            assert engine.stats.rejected == 3

    def test_unparsable_payload_rejected(self):
        with CompileEngine(workers=0) as engine:
            result = engine.run_job(_job(payload="not ir at all"))
        assert result.status is JobStatus.REJECTED
        assert "does not parse" in result.diagnostics

    def test_definite_failure_classified(self):
        # Statically clean, dynamically definite: unregistered op name
        # inside the sequence trips the interpreter's dispatch error.
        with CompileEngine(workers=0, preflight=False) as engine:
            result = engine.run_job(
                _job(script=_hostile_script("transform.test.nonexistent"))
            )
        assert result.status is JobStatus.DEFINITE
        assert result.output is None
        assert "error" in result.diagnostics

    def test_shutdown_cancels_new_work(self):
        engine = CompileEngine(workers=0)
        engine.shutdown()
        result = engine.run_job(_job())
        assert result.status is JobStatus.CANCELLED
        assert engine.stats.cancelled == 1


class TestCacheIntegration:
    def test_second_job_hits_cache(self):
        cache = CompilationCache(capacity=8)
        with CompileEngine(workers=0, cache=cache) as engine:
            first = engine.run_job(_job())
            second = engine.run_job(_job())
        assert not first.cache_hit
        assert second.cache_hit
        assert second.output == first.output
        assert engine.stats.executed == 1
        assert engine.stats.cache_hits == 1
        assert cache.stats.hit_rate > 0

    def test_formatting_differences_share_a_key(self):
        # normalize_keys reprints both inputs, so whitespace-shifted
        # payload text maps to the same content address.
        reindented = PAYLOAD.replace("    ", "  ")
        cache = CompilationCache(capacity=8)
        with CompileEngine(workers=0, cache=cache) as engine:
            first = engine.run_job(_job())
            second = engine.run_job(_job(payload=reindented))
        assert second.cache_hit
        assert second.key == first.key

    def test_params_split_the_key(self):
        cache = CompilationCache(capacity=8)
        with CompileEngine(workers=0, cache=cache) as engine:
            two = engine.run_job(
                _job(script=UNROLL_BOUND, params={"factor": 2})
            )
            four = engine.run_job(
                _job(script=UNROLL_BOUND, params={"factor": 4})
            )
        assert not four.cache_hit
        assert two.output != four.output
        # Partial unroll duplicates the body `factor` times in place.
        assert two.output.count("1 : i64") == 2
        assert four.output.count("1 : i64") == 4

    def test_rejected_jobs_never_cached(self):
        cache = CompilationCache(capacity=8)
        with CompileEngine(workers=0, cache=cache) as engine:
            engine.run_job(_job(script=USE_AFTER_CONSUME))
            engine.run_job(_job(script=USE_AFTER_CONSUME))
        assert cache.stats.puts == 0


class TestParameterBinding:
    def test_binding_overrides_the_default(self):
        with CompileEngine(workers=0, cache=None) as engine:
            default = engine.run_job(_job(script=UNROLL_BOUND))
            bound = engine.run_job(
                _job(script=UNROLL_BOUND, params={"factor": 8})
            )
        assert default.status is JobStatus.SUCCESS
        assert bound.status is JobStatus.SUCCESS
        assert default.output != bound.output

    def test_unknown_binding_ignored(self):
        with CompileEngine(workers=0, cache=None) as engine:
            default = engine.run_job(_job(script=UNROLL_BOUND))
            stray = engine.run_job(
                _job(script=UNROLL_BOUND, params={"nope": 8})
            )
        assert stray.output == default.output


class TestPooledEquivalence:
    """Satellite: pooled runs reproduce sequential runs exactly —
    byte-identical output and identical interpreter stats, proving no
    hidden module-level state leaks between jobs in a worker."""

    def test_sequential_vs_pooled_identical(self):
        jobs = [
            _job(),
            _job(script=UNROLL_BOUND, params={"factor": 4}),
            _job(script=UNROLL_BOUND),
        ]
        with CompileEngine(workers=0, cache=None) as engine:
            sequential = engine.run_batch(jobs)
        with CompileEngine(workers=2, cache=None) as engine:
            pooled = engine.run_batch(jobs)
        assert len(sequential) == len(pooled) == len(jobs)
        for seq, pool in zip(sequential, pooled):
            assert pool.status is seq.status
            assert pool.output == seq.output
            assert pool.stats == seq.stats
            assert pool.diagnostics == seq.diagnostics

    def test_worker_state_does_not_accumulate(self):
        # The same job through one single-process worker, repeatedly:
        # stats must not drift run over run.
        job_stats = []
        with CompileEngine(workers=1, cache=None) as engine:
            for _ in range(3):
                result = engine.run_job(_job())
                assert result.status is JobStatus.SUCCESS
                job_stats.append(result.stats)
        assert job_stats[0] == job_stats[1] == job_stats[2]


class TestBatchAndCoalescing:
    def test_batch_preserves_submission_order(self):
        jobs = [
            _job(job_id="a"),
            _job(script=UNROLL_BOUND, job_id="b"),
            _job(script=USE_AFTER_CONSUME, job_id="c"),
        ]
        with CompileEngine(workers=1) as engine:
            results = engine.run_batch(jobs)
        assert [r.job_id for r in results] == ["a", "b", "c"]
        assert results[2].status is JobStatus.REJECTED

    def test_duplicate_jobs_coalesce_or_hit_cache(self):
        cache = CompilationCache(capacity=8)
        jobs = [_job(job_id=f"dup-{i}") for i in range(6)]
        with CompileEngine(workers=2, cache=cache) as engine:
            results = engine.run_batch(jobs)
            stats = engine.stats
        assert all(r.status is JobStatus.SUCCESS for r in results)
        outputs = {r.output for r in results}
        assert len(outputs) == 1
        # One execution did the work; everyone else shared it.
        assert stats.executed == 1
        assert stats.coalesced + stats.cache_hits == 5

    def test_empty_batch(self):
        with CompileEngine(workers=0) as engine:
            assert engine.run_batch([]) == []


class TestStrictParity:
    """Pooled and workers=0 execution must classify error paths
    identically — including strict mode's raw-exception propagation."""

    def test_nonstrict_classifies_identically(self):
        script = _hostile_script("transform.test.service_raise")
        with CompileEngine(workers=0, preflight=False) as engine:
            inline = engine.run_job(_job(script=script))
        with CompileEngine(workers=1, preflight=False) as engine:
            pooled = engine.run_job(_job(script=script))
        assert inline.status is JobStatus.DEFINITE
        assert pooled.status is inline.status
        assert pooled.diagnostics == inline.diagnostics

    def test_strict_propagates_raw_in_both_modes(self):
        script = _hostile_script("transform.test.service_raise")
        with CompileEngine(workers=0, preflight=False,
                           strict=True) as engine:
            with pytest.raises(ValueError, match="raw crash"):
                engine.run_job(_job(script=script))
        with CompileEngine(workers=1, preflight=False,
                           strict=True) as engine:
            with pytest.raises(ValueError, match="raw crash"):
                engine.run_job(_job(script=script))


class TestHostileWorkers:
    def test_timeout_classified_and_contained(self):
        script = _hostile_script("transform.test.service_sleep")
        with CompileEngine(workers=1, preflight=False,
                           job_timeout=0.25) as engine:
            result = engine.run_job(_job(script=script))
        assert result.status is JobStatus.TIMEOUT
        assert "deadline" in result.diagnostics
        assert engine.stats.timeouts == 1

    def test_timeout_reclaims_the_pool(self):
        # Regression: the hung worker used to keep running after
        # cancel(), so with workers=1 every later job timed out too.
        script = _hostile_script("transform.test.service_sleep")
        with CompileEngine(workers=1, preflight=False,
                           job_timeout=0.25) as engine:
            hung = engine.run_job(_job(script=script))
            assert hung.status is JobStatus.TIMEOUT
            assert engine.stats.worker_restarts >= 1
            healthy = engine.run_job(_job(timeout=30.0))
            assert healthy.status is JobStatus.SUCCESS

    def test_crash_retries_then_classifies(self):
        script = _hostile_script("transform.test.service_crash")
        with CompileEngine(workers=1, preflight=False) as engine:
            result = engine.run_job(_job(script=script))
            assert result.status is JobStatus.CRASHED
            assert result.attempts == 2
            assert engine.stats.crashes == 2
            assert engine.stats.worker_restarts >= 1
            # The restarted pool still serves well-behaved jobs.
            healthy = engine.run_job(_job())
            assert healthy.status is JobStatus.SUCCESS

    def test_crash_without_retry(self):
        script = _hostile_script("transform.test.service_crash")
        with CompileEngine(workers=1, preflight=False,
                           retry_crashed=False) as engine:
            result = engine.run_job(_job(script=script))
        assert result.status is JobStatus.CRASHED
        assert result.attempts == 1


class TestValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            CompileEngine(workers=-1)

    def test_bad_cache_capacity_rejected(self):
        with pytest.raises(ValueError):
            CompilationCache(capacity=0)
