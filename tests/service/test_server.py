"""The repro-serve daemon: protocol, quotas, streams, drain, TERM."""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from types import SimpleNamespace

import pytest

from repro.observability import read_events, validate_chrome_trace
from repro.service import (
    AsyncServiceClient,
    CompileEngine,
    CompileServer,
    JobResult,
    JobStatus,
    RemoteError,
    ServiceClient,
)
from repro.service.client import parse_address
from repro.service.frontier import main as batch_main

from .test_engine import PAYLOAD, UNROLL, UNROLL_BOUND


class _GatedEngine:
    """Engine stub whose jobs block until released — the tool for
    holding the server's in-flight set open deterministically."""

    workers = 0
    profiler = None
    faults = None
    tracer = None
    cache = None

    def __init__(self):
        self.events = None  # the server attaches an EventLog
        self.release = threading.Event()
        self.stats = SimpleNamespace(
            as_dict=lambda: {"completed": 0}, completed=0
        )

    def run_job(self, job, parent_span=None):
        self.events.emit("STARTED", job_id=job.job_id)
        assert self.release.wait(10.0)
        self.events.emit("COMPLETED", job_id=job.job_id,
                         status="success")
        return JobResult(job.job_id, JobStatus.SUCCESS)


def _sock(tmp_path) -> str:
    return str(tmp_path / "serve.sock")


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:8765") == \
            ("tcp", "127.0.0.1", 8765)

    def test_bare_port(self):
        assert parse_address(":8765") == ("tcp", "127.0.0.1", 8765)

    def test_unix_path(self):
        assert parse_address("/tmp/x.sock") == \
            ("unix", "/tmp/x.sock", None)

    def test_path_with_colon_stays_unix(self):
        assert parse_address("/tmp/odd:1/s.sock")[0] == "unix"


class TestServerRoundtrip:
    def test_connect_submit_stream_drain(self, tmp_path):
        # The canonical lifecycle: connect, streamed submit, cached
        # resubmit, stats, drain — then submits are refused with a
        # structured error, and stop() tears down cleanly.
        async def go():
            engine = CompileEngine(workers=0)
            sock = _sock(tmp_path)
            try:
                async with CompileServer(engine, socket_path=sock,
                                         max_queue=8) as server:
                    client = await AsyncServiceClient.connect(sock)
                    seen = []
                    result = await client.submit(
                        PAYLOAD, UNROLL, job_id="first",
                        priority="interactive",
                        on_event=lambda f: seen.append(f["event"]),
                    )
                    assert result.ok and result.job_id == "first"
                    assert seen[0] == "ADMITTED"
                    assert seen[-1] == "COMPLETED"
                    again = await client.submit(PAYLOAD, UNROLL)
                    assert again.ok
                    stats = await client.stats()
                    assert stats["server"]["submitted"] == 2
                    assert stats["server"]["completed"] == 2
                    assert stats["server"]["streamed"] == 1
                    drained = await client.drain()
                    assert drained["type"] == "drained"
                    with pytest.raises(RemoteError) as exc:
                        await client.submit(PAYLOAD, UNROLL)
                    assert exc.value.code == "draining"
                    assert server.stats.drain_rejected == 1
                    await client.close()
            finally:
                engine.shutdown()

        asyncio.run(go())

    def test_param_binding_and_bad_request(self, tmp_path):
        async def go():
            engine = CompileEngine(workers=0)
            sock = _sock(tmp_path)
            try:
                async with CompileServer(engine, socket_path=sock):
                    client = await AsyncServiceClient.connect(sock)
                    result = await client.submit(
                        PAYLOAD, UNROLL_BOUND, params={"factor": 4}
                    )
                    assert result.ok
                    assert result.output.count("1 : i64") == 4
                    with pytest.raises(RemoteError) as exc:
                        await client.submit(None, UNROLL)
                    assert exc.value.code == "bad-request"
                    with pytest.raises(RemoteError) as exc:
                        await client.submit(PAYLOAD, UNROLL,
                                            priority="urgent")
                    assert exc.value.code == "bad-request"
                    await client.close()
            finally:
                engine.shutdown()

        asyncio.run(go())

    def test_submit_by_path(self, tmp_path):
        payload_file = tmp_path / "p.mlir"
        payload_file.write_text(PAYLOAD)
        schedule_file = tmp_path / "s.mlir"
        schedule_file.write_text(UNROLL)

        async def go():
            engine = CompileEngine(workers=0)
            sock = _sock(tmp_path)
            try:
                async with CompileServer(engine, socket_path=sock):
                    client = await AsyncServiceClient.connect(sock)
                    result = await client.submit(
                        payload_path=str(payload_file),
                        script_path=str(schedule_file),
                    )
                    assert result.ok
                    await client.close()
            finally:
                engine.shutdown()

        asyncio.run(go())


class TestQuota:
    def test_quota_exhaustion_is_a_structured_error_not_a_hang(
            self, tmp_path):
        # With a quota of 1, a second submit while the first is still
        # in flight must come back immediately as code="quota" — and
        # succeed once the slot frees.
        async def go():
            engine = _GatedEngine()
            sock = _sock(tmp_path)
            async with CompileServer(engine, socket_path=sock,
                                     client_quota=1) as server:
                client = await AsyncServiceClient.connect(sock)
                first = asyncio.ensure_future(
                    client.submit(PAYLOAD, UNROLL, job_id="held")
                )
                await asyncio.sleep(0.1)  # job is gated in run_job
                with pytest.raises(RemoteError) as exc:
                    await asyncio.wait_for(
                        client.submit(PAYLOAD, UNROLL), timeout=5.0
                    )
                assert exc.value.code == "quota"
                assert server.stats.quota_rejected == 1
                engine.release.set()
                result = await asyncio.wait_for(first, timeout=10.0)
                assert result.ok
                retry = await asyncio.wait_for(
                    client.submit(PAYLOAD, UNROLL), timeout=10.0
                )
                assert retry.ok
                await client.close()

        asyncio.run(go())


class TestEventStreams:
    def test_concurrent_clients_see_disjoint_streams(self, tmp_path):
        # Two clients submit under the same requested job id while the
        # first is still in flight: the server must disambiguate the
        # ids, and each client's stream must only carry its own job.
        async def go():
            engine = _GatedEngine()
            sock = _sock(tmp_path)
            async with CompileServer(engine, socket_path=sock):
                one = await AsyncServiceClient.connect(sock)
                two = await AsyncServiceClient.connect(sock)
                seen_one, seen_two = [], []
                first = asyncio.ensure_future(one.submit(
                    PAYLOAD, UNROLL, job_id="dup",
                    on_event=seen_one.append,
                ))
                await asyncio.sleep(0.1)  # "dup" is now in flight
                second = asyncio.ensure_future(two.submit(
                    PAYLOAD, UNROLL, job_id="dup",
                    on_event=seen_two.append,
                ))
                await asyncio.sleep(0.1)
                engine.release.set()
                result_one = await asyncio.wait_for(first, 10.0)
                result_two = await asyncio.wait_for(second, 10.0)
                assert result_one.job_id == "dup"
                assert result_two.job_id == "dup~1"
                ids_one = {f["job_id"] for f in seen_one}
                ids_two = {f["job_id"] for f in seen_two}
                assert ids_one == {"dup"}
                assert ids_two == {"dup~1"}
                assert seen_one and seen_one[-1]["event"] == "COMPLETED"
                assert seen_two and seen_two[-1]["event"] == "COMPLETED"
                await one.close()
                await two.close()

        asyncio.run(go())


class TestReload:
    def test_reload_hot_swaps_cache_dir(self, tmp_path):
        async def go():
            from repro.service import CompilationCache

            dir_a = str(tmp_path / "cache-a")
            dir_b = str(tmp_path / "cache-b")
            engine = CompileEngine(
                workers=0,
                cache=CompilationCache(capacity=16, disk_path=dir_a),
            )
            sock = _sock(tmp_path)
            try:
                async with CompileServer(engine, socket_path=sock):
                    client = await AsyncServiceClient.connect(sock)
                    assert (await client.submit(PAYLOAD, UNROLL)).ok
                    ack = await client.reload(cache_dir=dir_b)
                    assert ack["type"] == "reloaded"
                    assert "cache" in ack["applied"]
                    # Admissions resumed, and the swap took: the same
                    # job is a miss against the fresh store, which
                    # then persists under the new directory.
                    result = await client.submit(PAYLOAD, UNROLL)
                    assert result.ok
                    assert engine.cache.disk_path == dir_b
                    assert any(
                        name.endswith(".json")
                        for name in os.listdir(dir_b)
                    )
                    await client.close()
            finally:
                engine.shutdown()

        asyncio.run(go())


def _start_threaded_server(engine, sock):
    """Run a CompileServer on a private loop in a daemon thread, for
    exercising the blocking client and the CLI paths."""
    loop = asyncio.new_event_loop()
    server = CompileServer(engine, socket_path=sock, max_queue=16)
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)

        async def go():
            await server.start()
            started.set()
            await server.serve_forever()

        loop.run_until_complete(go())
        loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10.0)

    def stop():
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10.0)
        thread.join(10.0)

    return server, stop


class TestSyncClient:
    def test_blocking_roundtrip(self, tmp_path):
        engine = CompileEngine(workers=0)
        sock = _sock(tmp_path)
        server, stop = _start_threaded_server(engine, sock)
        try:
            with ServiceClient(sock) as client:
                events = []
                result = client.submit(PAYLOAD, UNROLL,
                                       job_id="sync",
                                       on_event=events.append)
                assert result.ok and result.job_id == "sync"
                assert events[-1]["event"] == "COMPLETED"
                assert client.ping()["type"] == "pong"
                assert client.stats()["server"]["submitted"] == 1
        finally:
            stop()
            engine.shutdown()


class TestBatchConnect:
    def test_repro_batch_connect_routes_through_server(
            self, tmp_path, capsys):
        engine = CompileEngine(workers=0)
        sock = _sock(tmp_path)
        server, stop = _start_threaded_server(engine, sock)
        payloads = tmp_path / "payloads"
        payloads.mkdir()
        (payloads / "a.mlir").write_text(PAYLOAD)
        (payloads / "b.mlir").write_text(PAYLOAD)
        schedule = tmp_path / "unroll.mlir"
        schedule.write_text(UNROLL)
        out = tmp_path / "out"
        metrics = tmp_path / "metrics.json"
        try:
            code = batch_main([
                str(payloads),
                "--schedule", str(schedule),
                "--connect", sock,
                "-o", str(out),
                "--json", str(metrics),
            ])
            assert code == 0
            produced = sorted(p.name for p in out.iterdir())
            assert produced == ["a.unroll.mlir", "b.unroll.mlir"]
            data = json.loads(metrics.read_text())
            assert data["jobs"] == 2
            assert data["by_status"] == {"success": 2}
            assert data["connect"] == sock
            assert data["server"]["server"]["submitted"] == 2
            # The batch ran on the server's engine, not a local one.
            assert engine.stats.completed == 2
        finally:
            stop()
            engine.shutdown()


class TestDaemonProcess:
    def test_sigterm_mid_batch_drains_admitted_then_exits_zero(
            self, tmp_path):
        # Boot the real CLI, park jobs on the daemon, TERM it mid
        # batch: admitted jobs must finish (their submitters get
        # results), late submits must be refused with code=draining,
        # the process must exit 0, and the exported trace must
        # validate.
        sock = _sock(tmp_path)
        trace_out = str(tmp_path / "serve-trace.json")
        events_out = str(tmp_path / "serve-events.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__),
                                         "..", "..", "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server",
             "--socket", sock, "--jobs", "0",
             "--trace-out", trace_out, "--events-out", events_out],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            ready = proc.stdout.readline()
            assert "listening on" in ready
            results, errors = [], []

            def submit(job_id):
                try:
                    with ServiceClient(sock, timeout=30.0) as client:
                        results.append(client.submit(
                            PAYLOAD, UNROLL, job_id=job_id
                        ))
                except RemoteError as error:
                    errors.append(error)

            threads = [
                threading.Thread(target=submit, args=(f"term-{i}",))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(30.0)
            code = proc.wait(timeout=30.0)
            assert code == 0
            # Every submitter got a definitive answer: a finished job
            # or a structured refusal — never a hang.
            assert len(results) + len(errors) == 4
            assert all(r.ok for r in results)
            assert all(e.code in ("draining", "disconnected")
                       for e in errors)
            # Admitted jobs ran to completion before exit.
            assert results, "TERM drained without finishing any job"
            trace = json.load(open(trace_out))
            assert validate_chrome_trace(trace) == []
            recorded = read_events(events_out)
            done = [r for r in recorded
                    if r.get("event") == "COMPLETED"]
            assert len(done) >= len(results)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10.0)
