"""Resilience policies: retry/backoff, quarantine, pool health — unit
level and wired through a live CompileEngine.

Hostile transform ops come from test_engine (registered at import
time, so fork-started workers inherit them).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.profiling import Profiler
from repro.service import CompileEngine, CompileJob, JobStatus
from repro.service.resilience import (
    JobQuarantine,
    PoolHealthMonitor,
    PoolHealthPolicy,
    QuarantinePolicy,
    RetryPolicy,
)
from repro.testing.faults import FaultPlan, FaultSite

from .test_engine import PAYLOAD, UNROLL, _hostile_script

CRASH = _hostile_script("transform.test.service_crash")
SLEEP = _hostile_script("transform.test.service_sleep")


def _job(payload=PAYLOAD, script=UNROLL, **kwargs):
    return CompileJob(payload_text=payload, script_text=script, **kwargs)


class TestRetryPolicy:
    def test_default_matches_legacy_retry_once_on_crash(self):
        policy = RetryPolicy()
        assert policy.should_retry("crashed", 1)
        assert not policy.should_retry("crashed", 2)
        assert not policy.should_retry("timeout", 1)

    def test_none_never_retries(self):
        policy = RetryPolicy.none()
        assert not policy.should_retry("crashed", 1)
        assert not policy.should_retry("timeout", 1)

    def test_timeout_opt_in(self):
        policy = RetryPolicy(max_attempts=3,
                             retry_statuses=frozenset({"timeout"}))
        assert policy.should_retry("timeout", 2)
        assert not policy.should_retry("crashed", 1)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=8, base_backoff=0.1,
                             backoff_multiplier=2.0, max_backoff=0.35,
                             jitter=0.0)
        assert policy.backoff_seconds("k", 1) == pytest.approx(0.1)
        assert policy.backoff_seconds("k", 2) == pytest.approx(0.2)
        # 0.4 raw, capped to 0.35.
        assert policy.backoff_seconds("k", 3) == pytest.approx(0.35)

    def test_backoff_jitter_is_deterministic(self):
        policy = RetryPolicy(base_backoff=0.1, jitter=0.5)
        a = policy.backoff_seconds("key-one", 1)
        b = RetryPolicy(base_backoff=0.1, jitter=0.5).backoff_seconds(
            "key-one", 1)
        assert a == b
        # Jitter multiplies into [1, 1.5); a different key decorrelates.
        assert 0.1 <= a < 0.15
        assert policy.backoff_seconds("key-two", 1) != a

    def test_zero_base_means_no_sleep(self):
        assert RetryPolicy().backoff_seconds("k", 1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(retry_statuses=frozenset({"definite"}))


class TestJobQuarantine:
    def test_poisons_at_threshold(self):
        ledger = JobQuarantine(QuarantinePolicy(threshold=2))
        assert not ledger.record_failure("k", "crashed")
        assert not ledger.is_poisoned("k")
        # The tripping failure reports True exactly once.
        assert ledger.record_failure("k", "crashed")
        assert ledger.is_poisoned("k")
        assert not ledger.record_failure("k", "crashed")
        assert ledger.poisoned_count == 1

    def test_ignores_non_pool_failures(self):
        ledger = JobQuarantine(QuarantinePolicy(threshold=1))
        assert not ledger.record_failure("k", "definite")
        assert not ledger.is_poisoned("k")

    def test_diagnose_names_the_breaker(self):
        ledger = JobQuarantine(QuarantinePolicy(threshold=1))
        ledger.record_failure("k", "timeout")
        message = ledger.diagnose("k")
        assert "quarantined" in message and "timeout" in message

    def test_clear_forgets(self):
        ledger = JobQuarantine(QuarantinePolicy(threshold=1))
        ledger.record_failure("k", "crashed")
        ledger.clear()
        assert not ledger.is_poisoned("k")
        assert ledger.poisoned_count == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            QuarantinePolicy(threshold=0)


class TestPoolHealthMonitor:
    def test_trips_inside_window(self):
        monitor = PoolHealthMonitor(
            PoolHealthPolicy(max_restarts=3, window_seconds=10.0))
        assert not monitor.record_restart(now=100.0)
        assert not monitor.record_restart(now=101.0)
        assert monitor.record_restart(now=102.0)
        assert monitor.tripped
        # Tripped is latched; no second True.
        assert not monitor.record_restart(now=103.0)

    def test_old_restarts_age_out(self):
        monitor = PoolHealthMonitor(
            PoolHealthPolicy(max_restarts=3, window_seconds=10.0))
        assert not monitor.record_restart(now=0.0)
        assert not monitor.record_restart(now=1.0)
        # 20s later the first two are outside the window.
        assert not monitor.record_restart(now=20.0)
        assert monitor.recent_restarts == 1
        assert not monitor.tripped

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PoolHealthPolicy(max_restarts=0)
        with pytest.raises(ValueError):
            PoolHealthPolicy(window_seconds=0.0)


class TestEngineRetry:
    def test_injected_crash_recovers_on_retry(self):
        # worker_crash at rate 1.0 but max_fires=1: the first pooled
        # execution dies, the retry (a fresh decision) succeeds —
        # output identical to a clean run.
        plan = FaultPlan(seed=7, rates={FaultSite.WORKER_CRASH: 1.0},
                         max_fires=1)
        profiler = Profiler()
        with CompileEngine(workers=1, faults=plan,
                           profiler=profiler) as engine:
            result = engine.run_job(_job())
            reference = engine.run_job(_job(job_id="ref"))
        assert result.status is JobStatus.SUCCESS
        assert result.attempts == 2
        assert result.output == reference.output
        assert engine.stats.crashes == 1
        assert engine.stats.retries == 1
        assert profiler.resilience.retries == 1
        assert plan.injected == {"worker_crash": 1}

    def test_timeout_retry_opt_in(self):
        plan = FaultPlan(seed=3, rates={FaultSite.WORKER_HANG: 1.0},
                         max_fires=1)
        policy = RetryPolicy(max_attempts=2,
                             retry_statuses=frozenset({"crashed",
                                                       "timeout"}))
        with CompileEngine(workers=1, job_timeout=0.5, faults=plan,
                           retry_policy=policy) as engine:
            result = engine.run_job(_job())
        assert result.status is JobStatus.SUCCESS
        assert result.attempts == 2
        assert engine.stats.timeouts == 1
        assert engine.stats.retries == 1

    def test_retry_none_makes_first_crash_terminal(self):
        with CompileEngine(workers=1, preflight=False,
                           retry_policy=RetryPolicy.none(),
                           quarantine=None) as engine:
            result = engine.run_job(_job(script=CRASH))
        assert result.status is JobStatus.CRASHED
        assert result.attempts == 1
        assert engine.stats.retries == 0

    def test_legacy_retry_crashed_flag_maps_to_policy(self):
        assert CompileEngine(workers=0).retry_policy.max_attempts == 2
        engine = CompileEngine(workers=0, retry_crashed=False)
        assert engine.retry_policy.max_attempts == 1


class TestEngineQuarantine:
    def test_poison_job_trips_breaker_then_short_circuits(self):
        profiler = Profiler()
        with CompileEngine(
                workers=1, preflight=False,
                retry_policy=RetryPolicy.none(),
                quarantine=QuarantinePolicy(threshold=2),
                profiler=profiler) as engine:
            first = engine.run_job(_job(script=CRASH))
            second = engine.run_job(_job(script=CRASH))
            executed_before = engine.stats.crashes
            third = engine.run_job(_job(script=CRASH))
        assert first.status is JobStatus.CRASHED
        assert second.status is JobStatus.POISONED
        assert "quarantined" in second.diagnostics
        # The third submission never reaches the pool.
        assert third.status is JobStatus.POISONED
        assert engine.stats.crashes == executed_before == 2
        assert engine.stats.quarantined == 2
        assert profiler.resilience.quarantined == 2

    def test_retries_count_toward_quarantine(self):
        # threshold=2 with retry-once: attempt 1 crashes (count 1,
        # retry granted), attempt 2 crashes (count 2 → poisoned).
        with CompileEngine(
                workers=1, preflight=False,
                retry_policy=RetryPolicy(max_attempts=3),
                quarantine=QuarantinePolicy(threshold=2)) as engine:
            result = engine.run_job(_job(script=CRASH))
        assert result.status is JobStatus.POISONED
        assert result.attempts == 2
        assert engine.stats.retries == 1

    def test_quarantine_none_disables_breaker(self):
        with CompileEngine(workers=1, preflight=False,
                           retry_policy=RetryPolicy.none(),
                           quarantine=None) as engine:
            for _ in range(4):
                result = engine.run_job(_job(script=CRASH))
                assert result.status is JobStatus.CRASHED


class TestPoolDegradation:
    def test_crash_loop_degrades_to_in_process(self):
        profiler = Profiler()
        with CompileEngine(
                workers=1, preflight=False,
                retry_policy=RetryPolicy.none(),
                quarantine=None,
                pool_health=PoolHealthPolicy(max_restarts=2,
                                             window_seconds=60.0),
                profiler=profiler) as engine:
            # Two distinct poison jobs (params split the content key)
            # crash the pool twice inside the window.
            engine.run_job(_job(script=CRASH, params={"n": 1}))
            engine.run_job(_job(script=CRASH, params={"n": 2}))
            assert engine.degraded
            # The engine stays live: jobs now run in-process.
            survivor = engine.run_job(_job())
        assert survivor.status is JobStatus.SUCCESS
        assert engine.stats.pool_degradations == 1
        assert profiler.resilience.pool_degradations == 1
        assert "degraded to in-process" in engine.degraded_diagnostic

    def test_pool_health_none_never_degrades(self):
        with CompileEngine(workers=1, preflight=False,
                           retry_policy=RetryPolicy.none(),
                           quarantine=None, pool_health=None) as engine:
            for index in range(3):
                engine.run_job(_job(script=CRASH,
                                    params={"n": index}))
            assert not engine.degraded
        assert engine.stats.worker_restarts == 3


class TestRestartRace:
    def test_concurrent_timeouts_restart_pool_exactly_once(self):
        # Both workers hang on the same generation; both dispatcher
        # threads time out and race into _restart_pool. The generation
        # guard must produce exactly one restart (and increment).
        barrier = threading.Barrier(2)

        with CompileEngine(workers=2, preflight=False,
                           job_timeout=0.4,
                           retry_policy=RetryPolicy.none(),
                           quarantine=None) as engine:
            def run(index):
                barrier.wait()
                return engine.run_job(
                    _job(script=SLEEP, params={"n": index},
                         job_id=f"hang-{index}")
                )

            with ThreadPoolExecutor(max_workers=2) as threads:
                results = list(threads.map(run, range(2)))
            restarts = engine.stats.worker_restarts
            # The replacement pool still works.
            survivor = engine.run_job(_job())
        # The race loser may see the killed pool as a crash before its
        # own deadline fires; either way both jobs fail terminally and
        # the pool restarts exactly once.
        assert all(r.status in (JobStatus.TIMEOUT, JobStatus.CRASHED)
                   for r in results)
        assert JobStatus.TIMEOUT in {r.status for r in results}
        assert restarts == 1
        assert survivor.status is JobStatus.SUCCESS
