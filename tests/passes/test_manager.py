"""Tests for the pass manager and pipeline parsing."""

import pytest

from repro.dialects import builtin
from repro.ir import Operation
from repro.passes import PASS_REGISTRY, Pass, PassManager, parse_pipeline, register_pass


class CountingPass(Pass):
    NAME = "test-counting"
    runs = 0

    def run(self, op):
        CountingPass.runs += 1


if "test-counting" not in PASS_REGISTRY:
    register_pass(CountingPass)


class TestRegistry:
    def test_core_passes_registered(self):
        for name in ("canonicalize", "cse", "inline",
                     "loop-invariant-code-motion", "convert-scf-to-cf",
                     "reconcile-unrealized-casts", "lower-affine",
                     "tosa-to-linalg"):
            assert name in PASS_REGISTRY

    def test_register_requires_name(self):
        class Nameless(Pass):
            pass

        with pytest.raises(ValueError):
            register_pass(Nameless)


class TestPassManager:
    def test_add_by_name_and_instance(self):
        manager = PassManager()
        manager.add("canonicalize")
        manager.add(CountingPass())
        assert manager.pipeline_string() == "canonicalize,test-counting"

    def test_unknown_pass(self):
        with pytest.raises(ValueError, match="unknown pass"):
            PassManager().add("no-such-pass")

    def test_run_returns_timing(self):
        module = builtin.module()
        manager = PassManager(["canonicalize", "cse"])
        timing = manager.run(module)
        assert len(timing.per_pass) == 2
        assert timing.total >= 0
        assert "canonicalize" in timing.render()

    def test_runs_in_order(self):
        order = []

        class A(Pass):
            NAME = "order-a"

            def run(self, op):
                order.append("a")

        class B(Pass):
            NAME = "order-b"

            def run(self, op):
                order.append("b")

        manager = PassManager([A(), B(), A()])
        manager.run(builtin.module())
        assert order == ["a", "b", "a"]

    def test_verify_each(self):
        class Corrupting(Pass):
            NAME = "corrupting"

            def run(self, op):
                # Append a terminator in a wrong position.
                from repro.ir import Block, Operation

                block = op.regions[0].entry_block
                block.insert(0, Operation.create("func.return"))
                block.append(Operation.create("test.after"))

        module = builtin.module()
        manager = PassManager([Corrupting()], verify_each=True)
        with pytest.raises(ValueError):
            manager.run(module)


class TestPipelineParsing:
    def test_simple(self):
        manager = parse_pipeline("canonicalize,cse")
        assert [p.NAME for p in manager.passes] == ["canonicalize", "cse"]

    def test_options(self):
        manager = parse_pipeline("inline(always=1)")
        assert manager.passes[0].options == {"always": 1}

    def test_whitespace_and_empty_chunks(self):
        manager = parse_pipeline(" canonicalize , ,cse ")
        assert len(manager.passes) == 2

    def test_unknown_pass_in_pipeline(self):
        with pytest.raises(ValueError):
            parse_pipeline("definitely-not-a-pass")
