"""Tests for the Table-2 lowering passes (and case study 2's scenarios)."""

import pytest

from repro.dialects import arith, builtin, func, memref as memref_dialect, scf
from repro.ir import Builder, F32, I1, INDEX
from repro.ir.types import memref
from repro.passes import PassManager
from repro.rewrite.conversion import ConversionError

#: The broken pipeline of §4.2, exactly as in the paper.
BROKEN_PIPELINE = [
    "convert-scf-to-cf",
    "convert-arith-to-llvm",
    "convert-cf-to-llvm",
    "convert-func-to-llvm",
    "expand-strided-metadata",
    "finalize-memref-to-llvm",
    "reconcile-unrealized-casts",
]

#: The ad-hoc fix: lower-affine (+ re-run arith lowering) after (5).
FIXED_PIPELINE = (
    BROKEN_PIPELINE[:5]
    + ["lower-affine", "convert-arith-to-llvm"]
    + BROKEN_PIPELINE[5:]
)


def build_subview_payload(dynamic_offset: bool):
    """The case-study-2 function: subview + forall store of 42."""
    module = builtin.module()
    arg_types = [memref(64, 64)] + ([INDEX] if dynamic_offset else [])
    f = func.func("view", arg_types)
    module.body.append(f)
    builder = Builder.at_end(f.body)
    offset = f.body.args[1] if dynamic_offset else 0
    view = memref_dialect.subview(
        builder, f.body.args[0], [offset, 0], [4, 4], [1, 1]
    )
    c4 = arith.index_constant(builder, 4)
    forall = scf.forall(builder, [c4, c4])
    body = Builder.at_end(forall.body)
    value = arith.constant(body, 42.0, F32)
    memref_dialect.store(body, value, view, forall.induction_vars)
    scf.yield_(body)
    func.return_(builder)
    module.verify()
    return module


def op_names(module):
    return {op.name for op in module.walk() if op is not module}


class TestSCFToCF:
    def build_loop_module(self):
        module = builtin.module()
        f = func.func("f", [])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 4)
        step = arith.index_constant(builder, 1)
        loop = scf.for_(builder, lb, ub, step)
        scf.yield_(Builder.at_end(loop.body))
        func.return_(builder)
        return module, f

    def test_loop_becomes_cfg(self):
        module, f = self.build_loop_module()
        PassManager(["convert-scf-to-cf"]).run(module)
        names = op_names(module)
        assert "scf.for" not in names
        assert "cf.br" in names
        assert "cf.cond_br" in names
        # entry, cond, body, continuation
        assert len(f.regions[0].blocks) == 4

    def test_nested_loops(self):
        module = builtin.module()
        f = func.func("f", [])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 4)
        step = arith.index_constant(builder, 1)
        outer = scf.for_(builder, lb, ub, step)
        outer_body = Builder.at_end(outer.body)
        inner = scf.for_(outer_body, lb, ub, step)
        scf.yield_(Builder.at_end(inner.body))
        scf.yield_(Builder.at_end(outer.body))
        func.return_(builder)
        PassManager(["convert-scf-to-cf"]).run(module)
        assert "scf.for" not in op_names(module)
        assert len(f.regions[0].blocks) == 7

    def test_loop_results_via_block_args(self):
        module = builtin.module()
        f = func.func("f", [], [F32])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 4)
        step = arith.index_constant(builder, 1)
        init = arith.constant(builder, 0.0, F32)
        loop = scf.for_(builder, lb, ub, step, [init])
        body = Builder.at_end(loop.body)
        doubled = arith.addf(body, loop.iter_args[0], loop.iter_args[0])
        scf.yield_(body, [doubled])
        func.return_(builder, [loop.results[0]])
        PassManager(["convert-scf-to-cf"]).run(module)
        module.verify()
        ret = [op for op in module.walk() if op.name == "func.return"][0]
        # The returned value now comes from a block argument.
        from repro.ir.core import BlockArgument

        assert isinstance(ret.operand(0), BlockArgument)

    def test_scf_if_lowering(self):
        module = builtin.module()
        f = func.func("f", [I1])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        if_op = scf.if_(builder, f.body.args[0], with_else=True)
        then_builder = Builder.at_end(if_op.then_block)
        then_builder.create("test.then")
        scf.yield_(then_builder)
        else_builder = Builder.at_end(if_op.else_block)
        else_builder.create("test.else")
        scf.yield_(else_builder)
        func.return_(builder)
        PassManager(["convert-scf-to-cf"]).run(module)
        names = op_names(module)
        assert "scf.if" not in names
        assert "cf.cond_br" in names
        assert "test.then" in names and "test.else" in names


class TestFullPipeline:
    def test_static_offset_succeeds(self):
        module = build_subview_payload(dynamic_offset=False)
        PassManager(BROKEN_PIPELINE).run(module)
        names = op_names(module)
        assert all(name.startswith("llvm.") for name in names), names

    def test_dynamic_offset_fails_with_papers_error(self):
        module = build_subview_payload(dynamic_offset=True)
        with pytest.raises(ConversionError) as excinfo:
            PassManager(BROKEN_PIPELINE).run(module)
        assert (
            "failed to legalize operation "
            "'builtin.unrealized_conversion_cast' that was explicitly "
            "marked illegal"
        ) in str(excinfo.value)

    def test_dynamic_offset_fixed_pipeline_succeeds(self):
        module = build_subview_payload(dynamic_offset=True)
        PassManager(FIXED_PIPELINE).run(module)
        names = op_names(module)
        assert all(name.startswith("llvm.") for name in names), names

    def test_expand_strided_metadata_introduces_affine_apply(self):
        module = build_subview_payload(dynamic_offset=True)
        PassManager(["expand-strided-metadata"]).run(module)
        names = op_names(module)
        assert "affine.apply" in names
        assert "memref.subview" not in names
        assert "memref.reinterpret_cast" in names

    def test_expand_skips_trivial_subviews(self):
        module = build_subview_payload(dynamic_offset=False)
        PassManager(["expand-strided-metadata"]).run(module)
        names = op_names(module)
        assert "affine.apply" not in names
        # The trivial (zero-offset, unit-stride) subview passes through
        # untouched — it satisfies memref.subview.constr already.
        assert "memref.subview" in names


class TestLowerAffine:
    def test_apply_becomes_arith(self):
        from repro.dialects import affine as affine_dialect
        from repro.ir.affine import AffineMap, symbol

        module = builtin.module()
        f = func.func("f", [INDEX])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        map_ = AffineMap(0, 1, (symbol(0) * 64 + 8,))
        result = affine_dialect.apply(builder, map_, [f.body.args[0]])
        builder.create("test.keep", operands=[result])
        func.return_(builder)
        PassManager(["lower-affine"]).run(module)
        names = op_names(module)
        assert "affine.apply" not in names
        assert "arith.muli" in names and "arith.addi" in names

    def test_min_becomes_minsi(self):
        from repro.dialects import affine as affine_dialect
        from repro.ir.affine import AffineMap, dim

        module = builtin.module()
        f = func.func("f", [INDEX, INDEX])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        map_ = AffineMap(2, 0, (dim(0), dim(1)))
        result = affine_dialect.min_(builder, map_, list(f.body.args))
        builder.create("test.keep", operands=[result])
        func.return_(builder)
        PassManager(["lower-affine"]).run(module)
        assert "arith.minsi" in op_names(module)


class TestReconcile:
    def test_cancelling_pair_removed(self):
        from repro.ir import I64, Operation

        module = builtin.module()
        f = func.func("f", [INDEX], [INDEX])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        to_i64 = builder.create(
            "builtin.unrealized_conversion_cast",
            operands=[f.body.args[0]], result_types=[I64],
        )
        back = builder.create(
            "builtin.unrealized_conversion_cast",
            operands=[to_i64.result], result_types=[INDEX],
        )
        func.return_(builder, [back.result])
        PassManager(["reconcile-unrealized-casts"]).run(module)
        ret = f.body.ops[-1]
        assert ret.operand(0) is f.body.args[0]
        assert "builtin.unrealized_conversion_cast" not in op_names(module)

    def test_leftover_cast_raises(self):
        from repro.ir import I64

        module = builtin.module()
        f = func.func("f", [INDEX], [])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        cast = builder.create(
            "builtin.unrealized_conversion_cast",
            operands=[f.body.args[0]], result_types=[I64],
        )
        builder.create("test.keep", operands=[cast.result])
        func.return_(builder)
        with pytest.raises(ConversionError, match="failed to legalize"):
            PassManager(["reconcile-unrealized-casts"]).run(module)

    def test_unused_cast_erased(self):
        from repro.ir import I64

        module = builtin.module()
        f = func.func("f", [INDEX], [])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        builder.create(
            "builtin.unrealized_conversion_cast",
            operands=[f.body.args[0]], result_types=[I64],
        )
        func.return_(builder)
        PassManager(["reconcile-unrealized-casts"]).run(module)
        assert "builtin.unrealized_conversion_cast" not in op_names(module)
