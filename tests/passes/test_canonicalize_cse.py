"""Tests for canonicalization, DCE and CSE."""

import pytest

from repro.dialects import arith, builtin, func, scf
from repro.ir import Builder, F64, I1, I32, INDEX
from repro.passes import PassManager
from repro.passes.canonicalize import eliminate_dead_code


def make_func(arg_types=()):
    module = builtin.module()
    f = func.func("f", list(arg_types), [])
    module.body.append(f)
    return module, f, Builder.at_end(f.body)


def constants_in(module):
    return [
        op.value for op in module.walk() if op.name == "arith.constant"
    ]


class TestConstantFolding:
    def test_addi_folds(self):
        module, f, b = make_func()
        a = arith.constant(b, 2, I32)
        c = arith.constant(b, 3, I32)
        added = arith.addi(b, a, c)
        keep = b.create("test.keep", operands=[added])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert keep.operand(0).defining_op().value == 5
        assert not any(op.name == "arith.addi" for op in module.walk())

    def test_float_folds(self):
        module, f, b = make_func()
        a = arith.constant(b, 2.0, F64)
        c = arith.constant(b, 4.0, F64)
        prod = arith.mulf(b, a, c)
        b.create("test.keep", operands=[prod])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert 8.0 in constants_in(module)

    def test_division_by_zero_not_folded(self):
        module, f, b = make_func()
        a = arith.constant(b, 2, I32)
        zero = arith.constant(b, 0, I32)
        divided = arith.divsi(b, a, zero)
        b.create("test.keep", operands=[divided])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert any(op.name == "arith.divsi" for op in module.walk())

    def test_cmpi_folds(self):
        module, f, b = make_func()
        a = arith.constant(b, 2, I32)
        c = arith.constant(b, 3, I32)
        cmp = arith.cmpi(b, "slt", a, c)
        b.create("test.keep", operands=[cmp])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert not any(op.name == "arith.cmpi" for op in module.walk())


class TestIdentities:
    def test_add_zero(self):
        module, f, b = make_func((I32,))
        zero = arith.constant(b, 0, I32)
        result = arith.addi(b, f.body.args[0], zero)
        keep = b.create("test.keep", operands=[result])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert keep.operand(0) is f.body.args[0]

    def test_commuted_add_zero(self):
        module, f, b = make_func((I32,))
        zero = arith.constant(b, 0, I32)
        result = arith.addi(b, zero, f.body.args[0])
        keep = b.create("test.keep", operands=[result])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert keep.operand(0) is f.body.args[0]

    def test_sub_zero_not_commuted(self):
        module, f, b = make_func((I32,))
        zero = arith.constant(b, 0, I32)
        result = arith.subi(b, zero, f.body.args[0])  # 0 - x != x
        keep = b.create("test.keep", operands=[result])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert keep.operand(0).defining_op().name == "arith.subi"

    def test_mul_zero(self):
        module, f, b = make_func((I32,))
        zero = arith.constant(b, 0, I32)
        result = arith.muli(b, f.body.args[0], zero)
        keep = b.create("test.keep", operands=[result])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert keep.operand(0).defining_op().value == 0

    def test_select_constant_cond(self):
        module, f, b = make_func((I32, I32))
        true_const = arith.constant(b, 1, I1)
        chosen = arith.select(b, true_const, f.body.args[0],
                              f.body.args[1])
        keep = b.create("test.keep", operands=[chosen])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert keep.operand(0) is f.body.args[0]


class TestControlFlowFolds:
    def test_zero_trip_loop_removed(self):
        module, f, b = make_func()
        lb = arith.index_constant(b, 5)
        ub = arith.index_constant(b, 5)
        step = arith.index_constant(b, 1)
        loop = scf.for_(b, lb, ub, step)
        scf.yield_(Builder.at_end(loop.body))
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert not any(op.name == "scf.for" for op in module.walk())

    def test_constant_if_inlines_taken_branch(self):
        module, f, b = make_func()
        cond = arith.constant(b, 1, I1)
        if_op = scf.if_(b, cond, result_types=[INDEX], with_else=True)
        tb = Builder.at_end(if_op.then_block)
        then_value = arith.index_constant(tb, 10)
        scf.yield_(tb, [then_value])
        eb = Builder.at_end(if_op.else_block)
        else_value = arith.index_constant(eb, 20)
        scf.yield_(eb, [else_value])
        keep = b.create("test.keep", operands=[if_op.results[0]])
        func.return_(b)
        PassManager(["canonicalize"]).run(module)
        assert keep.operand(0).defining_op().value == 10
        assert not any(op.name == "scf.if" for op in module.walk())


class TestDCE:
    def test_unused_pure_chain_removed(self):
        module, f, b = make_func()
        a = arith.constant(b, 1, I32)
        c = arith.constant(b, 2, I32)
        arith.addi(b, a, c)  # unused
        func.return_(b)
        assert eliminate_dead_code(module)
        assert len(f.body.ops) == 1  # only func.return

    def test_side_effecting_ops_kept(self):
        from repro.dialects import memref as memref_dialect
        from repro.ir.types import memref

        module, f, b = make_func()
        memref_dialect.alloc(b, memref(4))  # side-effecting, unused
        func.return_(b)
        eliminate_dead_code(module)
        assert any(op.name == "memref.alloc" for op in module.walk())


class TestCSE:
    def test_duplicate_constants_merged(self):
        module, f, b = make_func()
        a = arith.constant(b, 7, I32)
        c = arith.constant(b, 7, I32)
        keep = b.create("test.keep", operands=[a, c])
        func.return_(b)
        PassManager(["cse"]).run(module)
        assert keep.operand(0) is keep.operand(1)
        assert constants_in(module) == [7]

    def test_different_constants_kept(self):
        module, f, b = make_func()
        arith_a = arith.constant(b, 1, I32)
        arith_b = arith.constant(b, 2, I32)
        b.create("test.keep", operands=[arith_a, arith_b])
        func.return_(b)
        PassManager(["cse"]).run(module)
        assert sorted(constants_in(module)) == [1, 2]

    def test_impure_ops_not_merged(self):
        from repro.dialects import memref as memref_dialect
        from repro.ir.types import memref

        module, f, b = make_func()
        first = memref_dialect.alloc(b, memref(4))
        second = memref_dialect.alloc(b, memref(4))
        b.create("test.keep", operands=[first, second])
        func.return_(b)
        PassManager(["cse"]).run(module)
        assert sum(
            1 for op in module.walk() if op.name == "memref.alloc"
        ) == 2

    def test_nested_scope_can_reuse_outer(self):
        module, f, b = make_func()
        outer_const = arith.constant(b, 3, I32)
        lb = arith.index_constant(b, 0)
        ub = arith.index_constant(b, 2)
        step = arith.index_constant(b, 1)
        loop = scf.for_(b, lb, ub, step)
        loop_builder = Builder.at_end(loop.body)
        inner_const = arith.constant(loop_builder, 3, I32)
        keep = loop_builder.create("test.keep", operands=[inner_const])
        scf.yield_(loop_builder)
        func.return_(b)
        PassManager(["cse"]).run(module)
        assert keep.operand(0) is outer_const
