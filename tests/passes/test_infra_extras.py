"""Extra pass-infrastructure coverage: FunctionPass, timing, printing."""

import pytest

from repro.dialects import builtin, func
from repro.ir import Builder, I32
from repro.ir.printer import value_name
from repro.passes.manager import FunctionPass, PassManager, PassTiming


class MarkingPass(FunctionPass):
    NAME = "test-marking"

    def run_on_function(self, func_op):
        func_op.set_attr("visited", True)


class TestFunctionPass:
    def build_module(self, n=3):
        module = builtin.module()
        for index in range(n):
            f = func.func(f"f{index}", [])
            module.body.append(f)
            Builder.at_end(f.body).create("func.return")
        return module

    def test_runs_on_every_function(self):
        module = self.build_module(3)
        MarkingPass().run(module)
        functions = list(module.walk_ops("func.func"))
        assert all(f.attr("visited") is not None for f in functions)

    def test_runs_directly_on_a_function(self):
        module = self.build_module(1)
        f = next(module.walk_ops("func.func"))
        MarkingPass().run(f)
        assert f.attr("visited") is not None


class TestPassTiming:
    def test_total_sums_per_pass(self):
        timing = PassTiming([("a", 0.5), ("b", 0.25)])
        assert timing.total == pytest.approx(0.75)

    def test_render_contains_rows(self):
        timing = PassTiming([("canonicalize", 0.001)])
        rendered = timing.render()
        assert "canonicalize" in rendered
        assert "total" in rendered

    def test_manager_timing_shape(self):
        module = builtin.module()
        timing = PassManager(["cse", "cse", "canonicalize"]).run(module)
        assert [name for name, _ in timing.per_pass] == [
            "cse", "cse", "canonicalize"
        ]


class TestValueName:
    def test_reports_printed_name(self):
        module = builtin.module()
        f = func.func("f", [I32])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        op = builder.create("test.op", operands=[f.body.args[0]],
                            result_types=[I32])
        builder.create("func.return")
        assert value_name(module, f.body.args[0]) == "%0"
        assert value_name(module, op.result) == "%1"

    def test_unknown_value(self):
        from repro.ir import Operation

        module = builtin.module()
        stray = Operation.create("test.stray", result_types=[I32])
        assert value_name(module, stray.result) == "<unknown>"
