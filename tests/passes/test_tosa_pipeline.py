"""Tests for the TOSA -> Linalg pipeline (Table 1's workload)."""

import pytest

from repro.dialects import builtin, func, tosa
from repro.ir import Builder
from repro.ir.types import F32, tensor
from repro.passes import PassManager
from repro.passes.tosa_pipeline import (
    TOSA_TO_LINALG_PIPELINE,
    tosa_to_linalg_pipeline,
)


def make_graph(build_body):
    module = builtin.module()
    t = tensor(4, 8, element_type=F32)
    f = func.func("main", [t], [t])
    module.body.append(f)
    builder = Builder.at_end(f.body)
    result = build_body(builder, f.body.args[0], t)
    func.return_(builder, [result])
    module.verify()
    return module


def names(module):
    return {op.name for op in module.walk() if op is not module}


class TestDecompositions:
    def test_softmax(self):
        module = make_graph(
            lambda b, x, t: tosa.op(b, "softmax", [x], t)
        )
        PassManager(["tosa-optional-decompositions"]).run(module)
        got = names(module)
        assert "tosa.softmax" not in got
        assert {"tosa.exp", "tosa.reduce_sum", "tosa.reciprocal",
                "tosa.mul"} <= got

    def test_fully_connected(self):
        def body(b, x, t):
            weights = tosa.const(b, tensor(8, 8, element_type=F32))
            bias = tosa.const(b, tensor(8, element_type=F32))
            return tosa.op(b, "fully_connected", [x, weights, bias], t)

        module = make_graph(body)
        PassManager(["tosa-optional-decompositions"]).run(module)
        got = names(module)
        assert "tosa.fully_connected" not in got
        assert "tosa.matmul" in got
        assert "tosa.transpose" in got


class TestBroadcastable:
    def test_rank_mismatch_gets_reshape(self):
        def body(b, x, t):
            bias = tosa.const(b, tensor(8, element_type=F32))
            return tosa.op(b, "add", [x, bias], t)

        module = make_graph(body)
        PassManager(["tosa-make-broadcastable"]).run(module)
        assert "tosa.reshape" in names(module)
        add = next(module.walk_ops("tosa.add"))
        assert add.operand(1).type.rank == 2

    def test_equal_ranks_untouched(self):
        module = make_graph(
            lambda b, x, t: tosa.op(b, "add", [x, x], t)
        )
        PassManager(["tosa-make-broadcastable"]).run(module)
        assert "tosa.reshape" not in names(module)


class TestConversions:
    def test_elementwise_to_generic(self):
        module = make_graph(
            lambda b, x, t: tosa.op(b, "add", [x, x], t)
        )
        PassManager(["tosa-to-linalg"]).run(module)
        got = names(module)
        assert "tosa.add" not in got
        assert "linalg.generic" in got
        generic = next(module.walk_ops("linalg.generic"))
        assert generic.iterator_types == ["parallel", "parallel"]
        body_names = [op.name for op in generic.body.ops]
        assert "arith.addf" in body_names
        assert body_names[-1] == "linalg.yield"

    def test_reduce_to_linalg_reduce(self):
        def body(b, x, t):
            reduced = tensor(4, 1, element_type=F32)
            return tosa.op(b, "reduce_max", [x], reduced, axis=1)

        module = builtin.module()
        t = tensor(4, 8, element_type=F32)
        f = func.func("main", [t], [tensor(4, 1, element_type=F32)])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        result = body(builder, f.body.args[0], t)
        func.return_(builder, [result])
        PassManager(["tosa-to-linalg"]).run(module)
        got = names(module)
        assert "linalg.reduce" in got
        reduce = next(module.walk_ops("linalg.reduce"))
        assert any(
            op.name == "arith.maximumf" for op in reduce.body.ops
        )

    def test_matmul_to_named(self):
        def body(b, x, t):
            other = tosa.const(b, tensor(8, 4, element_type=F32))
            return tosa.op(b, "matmul", [x, other],
                           tensor(4, 4, element_type=F32))

        module = builtin.module()
        t = tensor(4, 8, element_type=F32)
        f = func.func("main", [t], [tensor(4, 4, element_type=F32)])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        result = body(builder, f.body.args[0], t)
        func.return_(builder, [result])
        PassManager(["tosa-to-linalg-named"]).run(module)
        got = names(module)
        assert "linalg.batch_matmul" in got
        assert "linalg.fill" in got and "tensor.empty" in got

    def test_const_to_arith(self):
        module = make_graph(
            lambda b, x, t: tosa.const(b, t)
        )
        PassManager(["tosa-to-arith"]).run(module)
        got = names(module)
        assert "tosa.const" not in got
        assert "arith.constant" in got

    def test_reshape_to_tensor(self):
        def body(b, x, t):
            return tosa.op(b, "reshape", [x],
                           tensor(32, element_type=F32), new_shape=[32])

        module = builtin.module()
        t = tensor(4, 8, element_type=F32)
        f = func.func("main", [t], [tensor(32, element_type=F32)])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        result = body(builder, f.body.args[0], t)
        func.return_(builder, [result])
        PassManager(["tosa-to-tensor"]).run(module)
        assert "tensor.reshape" in names(module)


class TestFullPipeline:
    def test_pipeline_order(self):
        manager = tosa_to_linalg_pipeline()
        assert manager.pipeline_string() == ",".join(
            TOSA_TO_LINALG_PIPELINE
        )

    @pytest.mark.parametrize("model", ["squeezenet", "whisper_decoder"])
    def test_models_lower_fully(self, model):
        from repro.mlmodels import build_model, count_ops

        module = build_model(model)
        tosa_to_linalg_pipeline().run(module)
        assert count_ops(module, "tosa.") == 0
        remaining = names(module)
        allowed_prefixes = ("linalg.", "tensor.", "arith.", "func.")
        assert all(
            name.startswith(allowed_prefixes) for name in remaining
        ), remaining
