"""Tests for the inliner and loop-invariant code motion."""

import pytest

from repro.dialects import arith, builtin, func, scf
from repro.ir import Builder, I32, INDEX
from repro.passes import PassManager
from repro.passes.inliner import InliningError, detect_recursion, inline_call
from repro.passes.licm import hoist_loop_invariants, is_loop_invariant


def make_callee(module, name="callee", mark_inline=True):
    callee = func.func(name, [I32], [I32])
    if mark_inline:
        callee.set_attr("inline", True)
    module.body.append(callee)
    builder = Builder.at_end(callee.body)
    doubled = arith.addi(builder, callee.body.args[0],
                         callee.body.args[0])
    func.return_(builder, [doubled])
    return callee


class TestInliner:
    def build_caller(self, mark_inline=True):
        module = builtin.module()
        make_callee(module, mark_inline=mark_inline)
        caller = func.func("caller", [I32], [I32])
        module.body.append(caller)
        builder = Builder.at_end(caller.body)
        call = func.call(builder, "callee", [caller.body.args[0]], [I32])
        func.return_(builder, [call.results[0]])
        return module, caller

    def test_inlines_marked_callee(self):
        module, caller = self.build_caller()
        PassManager(["inline"]).run(module)
        names = [op.name for op in caller.walk()]
        assert "func.call" not in names
        assert "arith.addi" in names

    def test_skips_unmarked_by_default(self):
        module, caller = self.build_caller(mark_inline=False)
        PassManager(["inline"]).run(module)
        assert any(op.name == "func.call" for op in caller.walk())

    def test_always_option(self):
        module, caller = self.build_caller(mark_inline=False)
        PassManager([]).add("inline", always=True).run(module)
        assert not any(op.name == "func.call" for op in caller.walk())

    def test_inline_call_wires_results(self):
        module, caller = self.build_caller()
        call = next(caller.walk_ops("func.call"))
        from repro.ir.context import SymbolTable

        callee = SymbolTable(module).lookup("callee")
        inline_call(call, callee)
        ret = caller.body.ops[-1]
        assert ret.name == "func.return"
        assert ret.operand(0).defining_op().name == "arith.addi"

    def test_inline_declaration_fails(self):
        module = builtin.module()
        declaration = func.func("ext", [I32], [I32], declaration=True)
        module.body.append(declaration)
        caller = func.func("caller", [I32], [I32])
        module.body.append(caller)
        builder = Builder.at_end(caller.body)
        call = func.call(builder, "ext", [caller.body.args[0]], [I32])
        func.return_(builder, [call.results[0]])
        with pytest.raises(InliningError):
            inline_call(call, declaration)

    def test_recursion_detected(self):
        module = builtin.module()
        rec = func.func("rec", [I32], [I32])
        rec.set_attr("inline", True)
        module.body.append(rec)
        builder = Builder.at_end(rec.body)
        call = func.call(builder, "rec", [rec.body.args[0]], [I32])
        func.return_(builder, [call.results[0]])
        assert detect_recursion(module)
        with pytest.raises(InliningError, match="recursive"):
            PassManager(["inline"]).run(module)

    def test_mutual_recursion_detected(self):
        module = builtin.module()
        for name, other in (("a", "b"), ("b", "a")):
            f = func.func(name, [], [])
            module.body.append(f)
            builder = Builder.at_end(f.body)
            func.call(builder, other)
            func.return_(builder)
        assert detect_recursion(module)


class TestLICM:
    def build_loop_with_invariant(self):
        module = builtin.module()
        f = func.func("f", [INDEX])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 8)
        step = arith.index_constant(builder, 1)
        loop = scf.for_(builder, lb, ub, step)
        body = Builder.at_end(loop.body)
        invariant = arith.addi(body, f.body.args[0], f.body.args[0])
        variant = arith.addi(body, loop.induction_var, invariant)
        body.create("test.sink", operands=[variant])
        scf.yield_(body)
        func.return_(builder)
        return module, f, loop, invariant, variant

    def test_is_loop_invariant(self):
        _module, _f, loop, invariant, variant = \
            self.build_loop_with_invariant()
        assert is_loop_invariant(invariant.defining_op(), loop)
        assert not is_loop_invariant(variant.defining_op(), loop)

    def test_hoist_moves_invariant_out(self):
        module, f, loop, invariant, _variant = \
            self.build_loop_with_invariant()
        count = hoist_loop_invariants(loop)
        assert count == 1
        assert invariant.defining_op().parent is f.body

    def test_pass_runs_on_nested_loops(self):
        module = builtin.module()
        f = func.func("f", [INDEX])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 4)
        step = arith.index_constant(builder, 1)
        outer = scf.for_(builder, lb, ub, step)
        outer_builder = Builder.at_end(outer.body)
        inner = scf.for_(outer_builder, lb, ub, step)
        inner_builder = Builder.at_end(inner.body)
        invariant = arith.addi(inner_builder, f.body.args[0],
                               f.body.args[0])
        inner_builder.create("test.sink", operands=[invariant])
        scf.yield_(inner_builder)
        scf.yield_(Builder.at_end(outer.body))
        func.return_(builder)
        PassManager(["loop-invariant-code-motion"]).run(module)
        # sink uses the value inside, so computation must be before
        # the *outer* loop now... the sink keeps it anchored inside.
        assert invariant.defining_op().parent is not inner.body

    def test_side_effecting_not_hoisted(self):
        from repro.dialects import memref as memref_dialect
        from repro.ir.types import memref

        module = builtin.module()
        f = func.func("f", [])
        module.body.append(f)
        builder = Builder.at_end(f.body)
        lb = arith.index_constant(builder, 0)
        ub = arith.index_constant(builder, 4)
        step = arith.index_constant(builder, 1)
        loop = scf.for_(builder, lb, ub, step)
        body = Builder.at_end(loop.body)
        ref = memref_dialect.alloc(body, memref(4))
        body.create("test.sink", operands=[ref])
        scf.yield_(body)
        func.return_(builder)
        hoist_loop_invariants(loop)
        assert ref.defining_op().parent is loop.body
