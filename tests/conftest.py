"""Shared fixtures and helpers for the test suite."""

import pytest

# Importing the dialects registers every operation; tests rely on that.
import repro.dialects  # noqa: F401
import repro.passes  # noqa: F401
import repro.core  # noqa: F401


@pytest.fixture
def matmul_module():
    """A fresh 8x8x8 matmul module (small enough to interpret fast)."""
    from repro.execution.workloads import build_matmul_module

    return build_matmul_module(8, 8, 8)


@pytest.fixture
def resnet_module():
    from repro.execution.workloads import build_resnet_layer_module

    return build_resnet_layer_module()
