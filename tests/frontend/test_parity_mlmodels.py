"""Digest parity: frontend-traced generators vs textual builders.

If the traced MLP hashes identically to the hand-built one, the two
authoring paths share compile-service cache entries — the contract
that makes the frontend a drop-in for textual payloads.
"""

import pytest

from repro.ir.hashing import op_digest
from repro.ir.printer import print_op
from repro.mlmodels import (
    FRONTEND_GENERATORS,
    build_mlp_frontend,
    build_mlp_model,
)


@pytest.mark.parametrize("seq,hidden", [(32, 64), (16, 32), (8, 8)])
def test_mlp_digest_parity(seq, hidden):
    textual = build_mlp_model(seq=seq, hidden=hidden)
    traced = build_mlp_frontend(seq=seq, hidden=hidden)
    assert op_digest(traced) == op_digest(textual)


def test_mlp_print_parity():
    # Stronger than digest equality: the printed forms agree too.
    assert print_op(build_mlp_frontend()) == print_op(build_mlp_model())


def test_frontend_generators_verify():
    for name, generator in FRONTEND_GENERATORS.items():
        module = generator()
        module.verify()
        assert module.name == "builtin.module", name
