"""Property: every module is digest-stable under print -> parse.

The digest keys the compile-service caches, so a module whose reparsed
form hashes differently would silently miss (or worse, collide with)
its own cache entries. The property is checked over the fuzz corpus
(random textual-builder modules) and over every frontend-traced module
we ship.
"""

import random

import pytest

from repro import frontend as fe
from repro.ir.hashing import op_digest
from repro.ir.parser import parse
from repro.ir.printer import print_op
from repro.mlmodels import FRONTEND_GENERATORS, MODEL_SPECS, build_model
from repro.testing.fuzz import PayloadFuzzer


def roundtrips(module) -> bool:
    return op_digest(parse(print_op(module), "<rt>")) == op_digest(module)


@pytest.mark.parametrize("seed", range(25))
def test_fuzz_corpus_modules_roundtrip(seed):
    module = PayloadFuzzer(random.Random(seed)).module()
    assert roundtrips(module)


@pytest.mark.parametrize("name", sorted(FRONTEND_GENERATORS))
def test_frontend_generators_roundtrip(name):
    assert roundtrips(FRONTEND_GENERATORS[name]())


def test_textual_generator_roundtrips():
    # The smallest Table-1 model keeps this property check cheap.
    assert "squeezenet" in MODEL_SPECS
    assert roundtrips(build_model("squeezenet"))


def test_traced_functions_roundtrip():
    @fe.jit
    def loops(n: fe.INDEX):
        for i in range(0, 32, 1):
            for j in range(16):
                t = (i * 16 + j) * 2

    @fe.jit
    def tensors(x: fe.Tensor[8, 8], y: fe.Tensor[8, 8]):
        return fe.ops.tanh(fe.ops.matmul(x, y) + x)

    @fe.jit
    def scalars(a: fe.F64, b: fe.F64) -> fe.F64:
        return (a + b) * a - b / a

    for traced in (loops, tensors, scalars):
        module = traced.module
        assert roundtrips(module)
        assert traced.digest == op_digest(module)
