"""Acceptance: frontend-authored payload + schedule through repro-serve.

A ``@frontend.jit``-decorated Python function and a builder-emitted
schedule are written as ``.py`` files, submitted twice with
``repro-batch --connect`` against a live server, and the second
submission is answered from the cache. The traced payload is
digest-identical to its printed/reparsed form — the property that
makes the cache hit possible.
"""

import asyncio
import json
import threading

from repro import frontend as fe
from repro.ir.hashing import op_digest
from repro.ir.parser import parse
from repro.ir.printer import print_op
from repro.service import CompileEngine, CompileServer
from repro.service.cache import CompilationCache
from repro.service.frontier import main as batch_main

PAYLOAD_PY = """\
from repro import frontend as fe


@fe.jit
def payload(x: fe.F64):
    for i in range(0, 64, 1):
        for j in range(32):
            t = (i * 32 + j) * 2
"""

SCHEDULE_PY = """\
from repro.frontend import Schedule

SCHEDULE = Schedule()
SCHEDULE.match("scf.for", position="first") \\
        .tile(sizes=[8, 8]).unroll(4).vectorize()
"""


def _start_threaded_server(engine, sock):
    """CompileServer on a private loop in a daemon thread (the pattern
    from tests/service/test_server.py), for driving the blocking CLI."""
    loop = asyncio.new_event_loop()
    server = CompileServer(engine, socket_path=sock, max_queue=16)
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)

        async def go():
            await server.start()
            started.set()
            await server.serve_forever()

        loop.run_until_complete(go())
        loop.close()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10.0)

    def stop():
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(10.0)
        thread.join(10.0)

    return server, stop


def test_frontend_batch_over_serve_hits_cache(tmp_path, capsys):
    payload_py = tmp_path / "payload.py"
    payload_py.write_text(PAYLOAD_PY)
    schedule_py = tmp_path / "schedule.py"
    schedule_py.write_text(SCHEDULE_PY)
    sock = str(tmp_path / "serve.sock")
    out = tmp_path / "out"
    metrics = tmp_path / "metrics.json"

    engine = CompileEngine(workers=0,
                           cache=CompilationCache(capacity=64))
    server, stop = _start_threaded_server(engine, sock)
    argv = [str(payload_py), "--schedule", str(schedule_py),
            "--connect", sock, "-o", str(out), "--json", str(metrics)]
    try:
        assert batch_main(argv) == 0
        first = capsys.readouterr().out
        assert "payload.schedule: success" in first
        assert "(cached)" not in first

        # Same .py inputs, same digests: answered from the cache.
        assert batch_main(argv) == 0
        second = capsys.readouterr().out
        assert "payload.schedule: success (cached)" in second

        data = json.loads(metrics.read_text())
        assert data["by_status"] == {"success": 1}
        assert engine.stats.completed == 2
    finally:
        stop()
        engine.shutdown()

    transformed = (out / "payload.schedule.mlir").read_text()
    module = parse(transformed, "<out>")
    assert '"transform.' not in transformed  # payload out, not script
    module.verify()


def test_traced_payload_digest_matches_reparse():
    @fe.jit
    def payload(x: fe.F64):
        for i in range(0, 64, 1):
            for j in range(32):
                t = (i * 32 + j) * 2

    module = payload.module
    reparsed = parse(print_op(module), "<reparse>")
    assert op_digest(reparsed) == op_digest(module)
    assert payload.digest == op_digest(reparsed)
