"""Satellite: the builder fuzz mode (``repro.testing.fuzz --frontend``).

Random fluent chains must emit scripts that lint with zero
error-severity diagnostics, survive print->parse digest round-trips,
and reject stale-handle reuse at the Python level.
"""

import random

from repro.testing.fuzz import (
    FrontendScheduleFuzzer,
    main,
    run_frontend_case,
    run_frontend_fuzz,
)


def test_frontend_fuzz_smoke():
    report = run_frontend_fuzz(seed=0, cases=40)
    assert report.ok, report.render()
    assert report.cases == 40
    assert report.outcomes.get("clean") == 40
    assert not report.outcomes.get("violated")
    assert "all invariants held" in report.render()


def test_single_case_is_deterministic():
    first, first_failures = run_frontend_case(12345)
    again, again_failures = run_frontend_case(12345)
    assert not first_failures and not again_failures
    assert first.kind == again.kind == "clean"
    assert first.payload_print == again.payload_print


def test_stale_probes_never_slip_through():
    # ``violations`` records stale-handle probes the builder FAILED to
    # reject; the guard must hold for every generated chain.
    for seed in range(30):
        fuzzer = FrontendScheduleFuzzer(random.Random(seed))
        fuzzer.build()
        assert not fuzzer.violations, (seed, fuzzer.violations)


def test_cli_frontend_flag():
    assert main(["--frontend", "--cases", "10"]) == 0
    assert main(["--frontend", "--case-seed", "7"]) == 0
