"""Builder templates with param bindings on the autotuning path."""

from repro.analysis.lint import Severity
from repro.autotuning import (
    Parameter,
    RandomSearchTuner,
    SearchSpace,
    case_study_5_template,
    case_study_5_template_problem,
    template_tuning_problem,
    tune_transform_script,
)
from repro.execution.workloads import build_batch_matmul_module


def test_template_is_lint_clean_with_bindings():
    template = case_study_5_template()
    text = template.mlir
    for binding in ("TILE1", "TILE2", "VEC"):
        assert f'binding = "{binding}"' in text
    errors = [d for d in template.lint().diagnostics
              if d.severity is Severity.ERROR]
    assert not errors


def test_template_objective_differentiates_configs():
    problem = case_study_5_template_problem()
    fast = problem.objective({"TILE1": 8, "TILE2": 8, "VEC": 8})
    slow = problem.objective({"TILE1": 1, "TILE2": 1, "VEC": 1})
    assert fast != float("inf") and slow != float("inf")
    assert fast != slow


def test_template_problem_respects_constraints():
    problem = case_study_5_template_problem(k=104, vector_width=8)
    assert problem.space.is_valid({"TILE1": 4, "TILE2": 4, "VEC": 8})
    assert not problem.space.is_valid({"TILE1": 4, "TILE2": 4, "VEC": 16})


def test_template_tuning_short_run_improves_on_worst():
    problem = case_study_5_template_problem()
    result, summary = tune_transform_script(
        problem, tuner=RandomSearchTuner(seed=3), n_trials=8)
    assert result.trials
    best = result.best
    assert best.value <= max(t.value for t in result.trials)
    assert best.value != float("inf")
    curve = result.best_so_far()
    assert curve == sorted(curve, reverse=True)
    assert summary["best_seconds"] == best.value
    assert summary["baseline_seconds"] > 0


def test_template_tuning_problem_accepts_prebuilt_script():
    template = case_study_5_template()
    script = template.build()
    space = SearchSpace(parameters=[
        Parameter.of("TILE1", [2, 4]),
        Parameter.of("TILE2", [2, 4]),
        Parameter.of("VEC", [1]),
    ])
    problem = template_tuning_problem(
        script, lambda: build_batch_matmul_module(2, 16, 16, 16), space)
    value = problem.objective({"TILE1": 2, "TILE2": 2, "VEC": 1})
    assert value != float("inf")
