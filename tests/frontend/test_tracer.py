"""Payload tracing: Python -> repro.ir staging."""

import pytest

from repro import frontend as fe
from repro.frontend import TraceError
from repro.ir.hashing import op_digest
from repro.ir.parser import parse
from repro.ir.printer import print_op
from repro.ir.types import F32, F64, INDEX, TensorType


class TestScalarsAndLoops:
    def test_range_loops_become_scf_for(self):
        @fe.jit
        def nest(n: fe.INDEX):
            for i in range(0, 64, 1):
                for j in range(32):
                    t = (i + j) * i

        text = nest.mlir
        assert text.count('"scf.for"') == 2
        assert '"arith.addi"' in text and '"arith.muli"' in text
        assert '"func.func"' in text

    def test_traced_range_bounds_from_arguments(self):
        @fe.jit
        def dynamic(n: fe.INDEX):
            for i in range(n):
                t = i + 1

        loop = [op for op in dynamic.module.walk()
                if op.name == "scf.for"][0]
        # The upper bound is the function argument, not a constant.
        assert loop.operands[1].defining_op() is None

    def test_scalar_float_arithmetic(self):
        @fe.jit
        def scalars(x: F64, y: F64):
            return (x + y) * x - y / x

        text = scalars.mlir
        for op in ("arith.addf", "arith.mulf", "arith.subf", "arith.divf"):
            assert f'"{op}"' in text

    def test_comparisons(self):
        @fe.jit
        def compare(i: fe.I64):
            c = i < 4
            return c

        assert '"arith.cmpi"' in compare.mlir

    def test_function_type_reflects_results(self):
        @fe.jit
        def identity(x: F64) -> F64:
            return x

        function = [op for op in identity.module.walk()
                    if op.name == "func.func"][0]
        assert function.function_type.results == (F64,)


class TestTensors:
    def test_tensor_annotation(self):
        assert fe.Tensor[4, 8] == TensorType((4, 8), F32)
        assert fe.Tensor[4, 8, F64] == TensorType((4, 8), F64)

    def test_matmul_shape_inference(self):
        @fe.jit
        def mm(a: fe.Tensor[4, 8], b: fe.Tensor[8, 16]):
            return fe.ops.matmul(a, b)

        assert "tensor<4x16xf32>" in mm.mlir

    def test_matmul_shape_mismatch(self):
        @fe.jit
        def bad(a: fe.Tensor[4, 8], b: fe.Tensor[4, 8]):
            return fe.ops.matmul(a, b)

        with pytest.raises(TraceError, match="shape mismatch"):
            bad.trace()

    def test_elementwise_and_reduce(self):
        @fe.jit
        def graph(x: fe.Tensor[8, 8]):
            y = fe.ops.tanh(x * x)
            return fe.ops.reduce_sum(y, axis=1)

        text = graph.mlir
        assert '"tosa.mul"' in text and '"tosa.tanh"' in text
        assert "tensor<8x1xf32>" in text

    def test_transpose_and_reshape(self):
        @fe.jit
        def shapes(x: fe.Tensor[2, 6]):
            t = fe.ops.transpose(x, [1, 0])
            return fe.ops.reshape(t, [3, 4])

        assert "tensor<6x2xf32>" in shapes.mlir
        assert "tensor<3x4xf32>" in shapes.mlir

    def test_reshape_conserves_elements(self):
        @fe.jit
        def bad(x: fe.Tensor[2, 6]):
            return fe.ops.reshape(x, [5, 5])

        with pytest.raises(TraceError, match="element count"):
            bad.trace()


class TestRestrictions:
    def test_data_dependent_branch_rejected(self):
        @fe.jit
        def branchy(x: F64):
            if x > 1.0:
                return x
            return x + 1.0

        with pytest.raises(TraceError, match="control flow"):
            branchy.trace()

    def test_loop_escape_rejected(self):
        @fe.jit
        def escape(n: fe.INDEX):
            last = None
            for i in range(8):
                last = i + 1
            return last

        with pytest.raises(TraceError, match="after the loop"):
            escape.trace()

    def test_missing_annotation_rejected(self):
        @fe.jit
        def bare(x):
            return x

        with pytest.raises(TraceError, match="annotation"):
            bare.trace()

    def test_return_annotation_mismatch(self):
        @fe.jit
        def wrong(x: F64) -> INDEX:
            return x

        with pytest.raises(TraceError, match="declares result types"):
            wrong.trace()

    def test_calling_a_traced_function_with_args(self):
        @fe.jit
        def f(x: F64):
            return x

        with pytest.raises(TraceError, match="staged"):
            f(1.0)

    def test_ops_outside_trace_rejected(self):
        with pytest.raises(TraceError, match="being traced"):
            fe.ops.const((4, 4))


class TestDigestStability:
    def test_traced_module_roundtrips(self):
        @fe.jit
        def nest(n: fe.INDEX):
            for i in range(16):
                t = i * i

        module = nest.module
        reparsed = parse(print_op(module), "<again>")
        assert op_digest(reparsed) == op_digest(module)
        assert nest.digest == op_digest(module)

    def test_fresh_traces_are_digest_identical(self):
        @fe.jit
        def nest(n: fe.INDEX):
            for i in range(16):
                t = i + 2

        assert op_digest(nest.trace()) == op_digest(nest.trace())

    def test_traced_module_verifies(self):
        @fe.jit
        def graph(x: fe.Tensor[4, 4]):
            return fe.ops.tanh(x)

        graph.module.verify()
