"""Fluent schedule builder: emission, consumption, lint-cleanliness."""

import pytest

from repro.analysis.lint import Severity
from repro.frontend import Schedule, ScheduleError
from repro.ir.hashing import op_digest
from repro.ir.parser import parse
from repro.ir.printer import print_op


def errors_of(engine):
    return [d for d in engine.diagnostics if d.severity is Severity.ERROR]


class TestFluentChains:
    def test_issue_headline_chain(self):
        # The exact chain from the issue: unroll consumes the inner
        # tile loop, the cursor falls back to the outer loop, and
        # vectorize applies there.
        schedule = Schedule()
        schedule.match("linalg.matmul").tile(sizes=[32, 32]) \
                .unroll(4).vectorize()
        text = schedule.mlir
        for op in ("transform.match_op", "transform.loop.tile",
                   "transform.loop.unroll", "transform.loop.vectorize"):
            assert f'"{op}"' in text
        assert not errors_of(schedule.lint())

    def test_consuming_op_moves_cursor(self):
        schedule = Schedule()
        schedule.match("scf.for").tile(sizes=[8, 8], keep="outer",
                                       names=("outer", "inner"))
        assert schedule._cursor is schedule.handle("outer")
        schedule.use("inner").unroll(full=True)
        assert not schedule.handle("inner").live

    def test_split_and_peel(self):
        schedule = Schedule()
        schedule.match("scf.for", position="first") \
                .split(4, keep="rest").peel()
        text = schedule.mlir
        assert '"transform.loop.split"' in text
        assert '"transform.loop.peel"' in text
        assert not errors_of(schedule.lint())

    def test_structured_chain(self):
        schedule = Schedule()
        schedule.match("linalg.matmul").generalize() \
                .lower_to_loops().vectorize(4)
        assert '"transform.structured.generalize"' in schedule.mlir
        assert not errors_of(schedule.lint())

    def test_merge_and_select(self):
        schedule = Schedule()
        schedule.match("scf.for", name="loops")
        schedule.match("linalg.matmul", name="mms")
        schedule.merge("loops", "mms").select("scf.for").print_("picked")
        assert '"transform.merge_handles"' in schedule.mlir
        assert not errors_of(schedule.lint())


class TestUseAfterConsume:
    def test_reuse_raises(self):
        schedule = Schedule()
        schedule.match("scf.for", name="loop")
        schedule.use("loop").unroll(2)
        with pytest.raises(ScheduleError, match="use-after-consume"):
            schedule.use("loop")

    def test_error_names_the_consumer(self):
        schedule = Schedule()
        loop = schedule.match("scf.for")._cursor
        schedule.unroll(2)
        with pytest.raises(ScheduleError,
                           match="consumed by 'unroll'"):
            schedule.use(loop)

    def test_no_cursor_is_an_error(self):
        with pytest.raises(ScheduleError, match="needs a current handle"):
            Schedule().tile(sizes=[4])

    def test_unknown_name_is_an_error(self):
        with pytest.raises(ScheduleError, match="no handle named"):
            Schedule().handle("nope")

    def test_cross_schedule_handles_rejected(self):
        first = Schedule()
        handle = first.match("scf.for")._cursor
        second = Schedule()
        with pytest.raises(ScheduleError, match="different Schedule"):
            second.use(handle)


class TestParams:
    def test_binding_attribute(self):
        schedule = Schedule()
        tile = schedule.param([4, 4], binding="TILES")
        schedule.match("scf.for", position="first") \
                .tile(sizes=tile, keep="inner")
        text = schedule.mlir
        assert '"transform.param.constant"' in text
        assert 'binding = "TILES"' in text
        assert not errors_of(schedule.lint())

    def test_scalar_params_as_tile_operands(self):
        schedule = Schedule()
        t1 = schedule.param(8, binding="T1")
        t2 = schedule.param(4, binding="T2")
        schedule.match("scf.for", position="first") \
                .tile(sizes=[t1, t2])
        tile_ops = [op for op in schedule.script.walk()
                    if op.name == "transform.loop.tile"]
        assert len(tile_ops[0].operands) == 3
        assert not errors_of(schedule.lint())

    def test_param_width_for_vectorize(self):
        schedule = Schedule()
        vec = schedule.param(8, binding="VEC")
        schedule.match("scf.for", position="last").vectorize(vec)
        assert not errors_of(schedule.lint())

    def test_non_param_sizes_rejected(self):
        schedule = Schedule()
        loop = schedule.match("scf.for", name="other")._cursor
        schedule.match("scf.for", position="first")
        with pytest.raises(ScheduleError, match="param handle"):
            schedule.tile(sizes=loop)


class TestMacrosAndLibrary:
    def test_define_and_include(self):
        schedule = Schedule()
        schedule.define(
            "tile8",
            lambda scope: scope.tile(sizes=[8, 8])._cursor,
        )
        schedule.match("scf.for", position="first").include("tile8")
        text = schedule.mlir
        assert '"transform.named_sequence"' in text
        assert '"transform.include"' in text
        assert not errors_of(schedule.lint())

    def test_include_propagates_consumption(self):
        schedule = Schedule()
        schedule.define("consume_it",
                        lambda scope: scope.tile(sizes=[4, 4])._cursor)
        schedule.match("scf.for", name="loop")
        schedule.include("consume_it", args=["loop"])
        with pytest.raises(ScheduleError, match="use-after-consume"):
            schedule.use("loop")

    def test_include_unknown_macro(self):
        schedule = Schedule()
        schedule.match("scf.for")
        with pytest.raises(ScheduleError, match="unknown sequence"):
            schedule.include("nope")

    def test_library_include(self):
        schedule = Schedule().use_library()
        schedule.match("scf.for", position="first") \
                .include("tile_and_unroll_remainder")
        assert '"transform.named_sequence"' in schedule.mlir
        assert not errors_of(schedule.lint())

    def test_redefinition_rejected(self):
        schedule = Schedule()
        schedule.define("twice", lambda scope: None)
        with pytest.raises(ScheduleError, match="already defined"):
            schedule.define("twice", lambda scope: None)


class TestAlternatives:
    def test_regions_and_fallback(self):
        schedule = Schedule()
        schedule.match("scf.for", position="first")
        schedule.alternatives(
            lambda alt: alt.tile(sizes=[16, 16]).unroll(4),
            None,
        )
        alts = [op for op in schedule.script.walk()
                if op.name == "transform.alternatives"]
        assert len(alts[0].regions) == 2
        assert not errors_of(schedule.lint())

    def test_region_handles_do_not_escape(self):
        schedule = Schedule()
        schedule.match("scf.for", position="first")
        escaped = []
        schedule.alternatives(
            lambda alt: escaped.append(
                alt.tile(sizes=[4, 4], names=("o", "i"))._cursor),
        )
        with pytest.raises(ScheduleError, match="use-after-consume"):
            schedule.use(escaped[0])


class TestBuildLifecycle:
    def test_build_is_idempotent(self):
        schedule = Schedule()
        schedule.match("scf.for").unroll(2)
        assert schedule.build() is schedule.build()
        assert schedule.digest == op_digest(schedule.script)

    def test_emission_after_build_rejected(self):
        schedule = Schedule()
        schedule.match("scf.for")
        schedule.build()
        with pytest.raises(ScheduleError, match="closed|already built"):
            schedule.match("scf.for")

    def test_built_script_roundtrips(self):
        schedule = Schedule().use_library()
        tile = schedule.param([4, 4], binding="TILES")
        schedule.match("scf.for", position="first") \
                .tile(sizes=tile).include("lower_to_llvm", args=[])
        script = schedule.script
        reparsed = parse(print_op(script), "<again>")
        assert op_digest(reparsed) == op_digest(script)
