"""Loading .py payload/schedule modules, and repro-batch over them."""

import pytest

from repro.frontend import FrontendError
from repro.frontend.loader import (
    is_python_module,
    load_payload_text,
    load_schedule_text,
    read_payload_source,
    read_schedule_source,
)
from repro.ir.parser import parse
from repro.service.frontier import main as batch_main

PAYLOAD_PY = """\
from repro import frontend as fe


@fe.jit
def payload(x: fe.F64):
    for i in range(16):
        t = i + 1
"""

SCHEDULE_PY = """\
from repro.frontend import Schedule

SCHEDULE = Schedule()
SCHEDULE.match("scf.for").unroll(full=True)
"""


class TestLoader:
    def test_is_python_module(self):
        assert is_python_module("x.py")
        assert not is_python_module("x.mlir")

    def test_load_payload_text(self, tmp_path):
        path = tmp_path / "payload.py"
        path.write_text(PAYLOAD_PY)
        text = load_payload_text(str(path))
        module = parse(text, "<loaded>")
        assert any(op.name == "scf.for" for op in module.walk())

    def test_load_schedule_text(self, tmp_path):
        path = tmp_path / "schedule.py"
        path.write_text(SCHEDULE_PY)
        text = load_schedule_text(str(path))
        module = parse(text, "<loaded>")
        assert any(op.name == "transform.loop.unroll"
                   for op in module.walk())

    def test_unnamed_single_instance_found(self, tmp_path):
        path = tmp_path / "anon.py"
        path.write_text(PAYLOAD_PY.replace("def payload", "def traced"))
        assert "scf.for" in load_payload_text(str(path))

    def test_missing_payload_rejected(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("X = 1\n")
        with pytest.raises(FrontendError, match="no payload"):
            load_payload_text(str(path))

    def test_ambiguous_payload_rejected(self, tmp_path):
        path = tmp_path / "two.py"
        path.write_text(
            PAYLOAD_PY.replace("def payload", "def first")
            + "\n"
            + PAYLOAD_PY.replace("def payload", "def second")
            .replace("from repro import frontend as fe\n", "")
        )
        with pytest.raises(FrontendError, match="ambiguous"):
            load_payload_text(str(path))

    def test_callable_factory(self, tmp_path):
        path = tmp_path / "factory.py"
        path.write_text(
            "from repro.mlmodels import build_mlp_frontend\n"
            "def PAYLOAD():\n"
            "    return build_mlp_frontend(seq=8, hidden=8)\n"
        )
        assert "tosa.matmul" in load_payload_text(str(path))

    def test_read_source_passthrough(self, tmp_path):
        mlir = tmp_path / "raw.mlir"
        mlir.write_text('"builtin.module"() ({ }) : () -> ()\n')
        assert read_payload_source(str(mlir)).startswith('"builtin')
        assert read_schedule_source(str(mlir)).startswith('"builtin')


class TestBatchCLI:
    def test_local_batch_with_python_inputs(self, tmp_path, capsys):
        payload = tmp_path / "payload.py"
        payload.write_text(PAYLOAD_PY)
        schedule = tmp_path / "schedule.py"
        schedule.write_text(SCHEDULE_PY)
        out = tmp_path / "out"
        code = batch_main([str(payload), "--schedule", str(schedule),
                           "--jobs", "0", "-o", str(out)])
        assert code == 0
        assert "payload.schedule: success" in capsys.readouterr().out
        transformed = (out / "payload.schedule.mlir").read_text()
        parse(transformed, "<out>").verify()

    def test_directory_mixes_mlir_and_python(self, tmp_path, capsys):
        payloads = tmp_path / "payloads"
        payloads.mkdir()
        (payloads / "traced.py").write_text(PAYLOAD_PY)
        textual = parse(load_payload_text(str(payloads / "traced.py")),
                        "<t>")
        from repro.ir.printer import print_op
        (payloads / "textual.mlir").write_text(print_op(textual))
        schedule = tmp_path / "schedule.py"
        schedule.write_text(SCHEDULE_PY)
        code = batch_main([str(payloads), "--schedule", str(schedule),
                           "--jobs", "0"])
        assert code == 0
        output = capsys.readouterr().out
        assert "traced.schedule: success" in output
        assert "textual.schedule: success" in output

    def test_broken_python_module_is_a_clean_error(self, tmp_path,
                                                   capsys):
        payload = tmp_path / "broken.py"
        payload.write_text("raise RuntimeError('boom')\n")
        schedule = tmp_path / "schedule.py"
        schedule.write_text(SCHEDULE_PY)
        code = batch_main([str(payload), "--schedule", str(schedule),
                           "--jobs", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
