"""Case study 3: debugging counter-productive optimization patterns.

Models the paper's Enzyme/JAX StableHLO peephole-pattern hunt: a set of
100+ work-reducing/enabling patterns, an XLA-like fusion cost model in
which exactly one pattern ("fold reshape/transpose into full reduce")
is end-to-end counter-productive, and a binary-search driver that finds
it through transform scripts instead of C++ rebuilds.
"""

from .patterns import (
    ALL_PATTERN_NAMES,
    CULPRIT_PATTERN,
    make_pattern,
    register_all_patterns,
)
from .fusion import FusionCostModel, FusionReport
from .workload import build_llm_block_module
from .search import (
    BinarySearchResult,
    evaluate_pattern_set,
    find_counterproductive_pattern,
)

__all__ = [
    "ALL_PATTERN_NAMES",
    "BinarySearchResult",
    "CULPRIT_PATTERN",
    "FusionCostModel",
    "FusionReport",
    "build_llm_block_module",
    "evaluate_pattern_set",
    "find_counterproductive_pattern",
    "make_pattern",
    "register_all_patterns",
]
