"""The case-study-3 payload: an LLM-block-like StableHLO function.

Built to contain firing sites for every pattern family of
:mod:`repro.enzyme.patterns`: masked attention-style segments with
zero-padding adds, double negations/transpositions, transposes feeding
``dot_general``, convert chains, and — crucially — a full additive
reduction guarded by a ``reshape`` whose folding (the culprit pattern)
merges the heavy elementwise producer chain into the reduce's fusion
cluster.
"""

from __future__ import annotations


from ..dialects import builtin, func
from ..dialects import stablehlo as hlo
from ..ir.builder import Builder
from ..ir.core import Operation, Value
from ..ir.types import F32, TensorType, tensor


def _constant(builder: Builder, type: TensorType, value: float) -> Value:
    return builder.create(
        "stablehlo.constant",
        result_types=[type],
        attributes={"value": value},
    ).result


def _block(builder: Builder, hidden: Value, weights: Value,
           seq: int, dim: int, index: int) -> Value:
    """One transformer-ish block with pattern-firing sites."""
    t_seq_dim = tensor(seq, dim, element_type=F32)
    t_dim_seq = tensor(dim, seq, element_type=F32)
    scalar = tensor(1, element_type=F32)

    # Enabling site: transpose feeding a dot_general (matmul_of_transpose).
    w_t = hlo.op(builder, "transpose", [weights], t_dim_seq,
                 permutation=[1, 0])
    projected = hlo.op(builder, "dot_general", [hidden, w_t], t_seq_dim)

    # Work-reduction site: mask added via pad-of-zero (add_of_zero_pad).
    zero = _constant(builder, scalar, 0.0)
    mask_core = hlo.op(builder, "tanh", [projected], t_seq_dim)
    padded_mask = builder.create(
        "stablehlo.pad",
        operands=[mask_core, zero],
        result_types=[t_seq_dim],
    ).result
    masked = hlo.op(builder, "add", [projected, padded_mask], t_seq_dim)

    # Involution site: negate(negate(x)).
    negated = hlo.op(builder, "negate", [masked], t_seq_dim)
    restored = hlo.op(builder, "negate", [negated], t_seq_dim)

    # Identity site: multiply by one.
    one = _constant(builder, t_seq_dim, 1.0)
    scaled = hlo.op(builder, "multiply", [restored, one], t_seq_dim)

    # Double-transpose site.
    flipped = hlo.op(builder, "transpose", [scaled], t_dim_seq,
                     permutation=[1, 0])
    unflipped = hlo.op(builder, "transpose", [flipped], t_seq_dim,
                       permutation=[1, 0])

    # Elementwise tail: softmax-ish chain (a sizeable fusion cluster).
    exped = hlo.op(builder, "exponential", [unflipped], t_seq_dim)
    logistic = hlo.op(builder, "logistic", [exped], t_seq_dim)
    summed = hlo.op(builder, "add", [logistic, hidden], t_seq_dim)

    # Convert-of-convert site.
    widened = hlo.op(builder, "convert", [summed],
                     tensor(seq, dim, element_type=F32))
    narrowed = hlo.op(builder, "convert", [widened], t_seq_dim)
    return narrowed


def build_llm_block_module(seq: int = 512, dim: int = 512,
                           n_blocks: int = 4,
                           function_name: str = "llm_forward"
                           ) -> Operation:
    """Build the payload; the final loss is a full additive reduction
    whose operand flows through a ``reshape`` — the fusion barrier that
    the culprit pattern removes."""
    module = builtin.module()
    t_seq_dim = tensor(seq, dim, element_type=F32)
    function = func.func(
        function_name, [t_seq_dim, t_seq_dim], [tensor(1, element_type=F32)]
    )
    module.body.append(function)
    builder = Builder.at_end(function.body)
    hidden, weights = function.body.args

    for index in range(n_blocks):
        hidden = _block(builder, hidden, weights, seq, dim, index)

    # Final loss: reshape (barrier) then a full additive reduction.
    flat = hlo.op(builder, "reshape", [hidden],
                  tensor(seq * dim, element_type=F32))
    zero = _constant(builder, tensor(1, element_type=F32), 0.0)
    loss = hlo.reduce(builder, flat, zero, [0],
                      tensor(1, element_type=F32), kind="add")
    func.return_(builder, [loss])
    module.verify()
    return module
