"""Binary search over the pattern set via transform scripts (§4.3).

The paper's workflow: instead of recompiling a 5.4 GiB C++ toolchain
per experiment (~10 minutes each), the pattern set is expressed in a
transform script (``transform.apply_patterns``) and the binary search
simply edits the pattern list — each iteration re-*interprets* the
script in seconds. This module implements that loop and identifies the
counter-productive pattern.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core import dialect as transform
from ..core.interpreter import TransformInterpreter
from ..ir.core import Operation
from .fusion import FusionCostModel


@dataclass
class SearchIteration:
    """One evaluated pattern subset."""

    patterns: List[str]
    modelled_seconds: float
    compile_seconds: float


@dataclass
class BinarySearchResult:
    culprit: Optional[str]
    iterations: List[SearchIteration] = field(default_factory=list)

    @property
    def total_compile_seconds(self) -> float:
        return sum(it.compile_seconds for it in self.iterations)


def build_apply_patterns_script(pattern_names: Sequence[str]) -> Operation:
    """A script matching the paper's listing: apply the given patterns
    to the payload function."""
    script, builder, root = transform.sequence()
    function = transform.match_op(builder, root, "func.func",
                                  position="first")
    transform.apply_patterns(builder, function, list(pattern_names))
    transform.yield_(builder)
    return script


def evaluate_pattern_set(
    payload_factory: Callable[[], Operation],
    pattern_names: Sequence[str],
    cost_model: Optional[FusionCostModel] = None,
) -> SearchIteration:
    """Apply a pattern subset via a transform script and model runtime.

    Returns the modelled end-to-end runtime and the *actual* time spent
    compiling (script interpretation + pattern application) — the
    per-iteration cost the paper reports as "up to 4 seconds" against
    ~10 minutes for a C++ rebuild.
    """
    cost_model = cost_model or FusionCostModel()
    payload = payload_factory()
    script = build_apply_patterns_script(pattern_names)
    start = time.perf_counter()
    TransformInterpreter().apply(script, payload)
    compile_seconds = time.perf_counter() - start
    report = cost_model.estimate_module(payload)
    return SearchIteration(list(pattern_names), report.seconds,
                           compile_seconds)


def find_counterproductive_pattern(
    payload_factory: Callable[[], Operation],
    pattern_names: Sequence[str],
    cost_model: Optional[FusionCostModel] = None,
    tolerance: float = 1.005,
) -> BinarySearchResult:
    """Binary-search the pattern whose removal improves performance.

    Precondition (as in the paper): the full pattern set performs worse
    than some subset. The search maintains a candidate interval and a
    set of always-on patterns, halving the interval each iteration:
    if disabling the first half restores performance, the culprit is in
    that half; otherwise it is in the second half.
    """
    cost_model = cost_model or FusionCostModel()
    result = BinarySearchResult(culprit=None)

    def measure(subset: Sequence[str]) -> float:
        iteration = evaluate_pattern_set(payload_factory, subset,
                                         cost_model)
        result.iterations.append(iteration)
        return iteration.modelled_seconds

    all_names = list(pattern_names)
    full_runtime = measure(all_names)

    # Invariant: the culprit is among ``candidates``. Each round removes
    # one half of the candidates (keeping everything else enabled) and
    # keeps the half whose removal helps more — comparing the two
    # removals against each other cancels out the performance the good
    # patterns in each half contribute.
    candidates = list(all_names)
    while len(candidates) > 1:
        middle = len(candidates) // 2
        first, second = candidates[:middle], candidates[middle:]
        without_first = [n for n in all_names if n not in set(first)]
        without_second = [n for n in all_names if n not in set(second)]
        runtime_without_first = measure(without_first)
        runtime_without_second = measure(without_second)
        candidates = (
            first
            if runtime_without_first <= runtime_without_second
            else second
        )

    candidate = candidates[0] if candidates else None
    if candidate is not None:
        without_candidate = [n for n in all_names if n != candidate]
        runtime = measure(without_candidate)
        if runtime * tolerance < full_runtime:
            result.culprit = candidate
    return result
