"""The StableHLO peephole pattern set (paper §4.3).

Over 100 patterns in the two families the paper describes:

* **work reduction** — e.g. not adding tensor elements produced by
  padding with zero, folding double negation/transposition, constant
  identities;
* **enabling** — e.g. permuting ``transpose`` towards a ``dot_general``
  that supports transposed operands so it folds away.

Every pattern is registered under ``transform.pattern.<name>`` so a
transform script can apply any subset via ``transform.apply_patterns``
— the mechanism that makes the case-study-3 binary search a 4-second
script edit instead of a 10-minute compiler rebuild.

The counter-productive pattern is ``fold_reshape_transpose_into_reduce``:
it strictly reduces work locally, but removing the reshape/transpose
"fusion barrier" lets the XLA-like backend build an oversized fusion
cluster (see :mod:`repro.enzyme.fusion`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.dialect import register_transform_pattern
from ..ir.attributes import unwrap
from ..ir.core import Operation
from ..rewrite.pattern import PatternRewriter, RewritePattern

#: The pattern the paper's binary search identifies as counter-productive.
CULPRIT_PATTERN = "fold_reshape_transpose_into_reduce"

_BINARY_OPS = ("add", "subtract", "multiply", "divide", "maximum",
               "minimum", "power")
_UNARY_INVOLUTIONS = ("negate",)
_UNARY_OPS = ("negate", "exponential", "log", "rsqrt", "sqrt", "tanh",
              "logistic", "abs", "sign", "convert", "floor", "ceil",
              "cosine", "sine")
_SHAPE_OPS = ("transpose", "reshape")

_IDENTITY_ELEMENT = {
    "add": 0.0,
    "subtract": 0.0,
    "multiply": 1.0,
    "divide": 1.0,
    "maximum": None,
    "minimum": None,
    "power": 1.0,
}


def _is_zero_constant(op: Optional[Operation]) -> bool:
    if op is None or op.name != "stablehlo.constant":
        return False
    value = op.attr("value")
    return value is not None and unwrap(value) in (0, 0.0)


def _is_constant(op: Optional[Operation], payload: float) -> bool:
    if op is None or op.name != "stablehlo.constant":
        return False
    value = op.attr("value")
    return value is not None and unwrap(value) == payload


class _Pattern(RewritePattern):
    """A named pattern wrapping a match/rewrite callable."""

    def __init__(self, name: str, root: str, fn) -> None:
        self.root_name = root
        self.label = name
        self._fn = fn
        super().__init__()

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        return self._fn(op, rewriter)


# ---------------------------------------------------------------------------
# Pattern factories
# ---------------------------------------------------------------------------


def _fold_identity_operand(binary: str, side: int):
    """``op(x, identity) -> x`` (and the mirrored side for index 0)."""
    identity = _IDENTITY_ELEMENT.get(binary)

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if identity is None or op.num_operands != 2:
            return False
        candidate = op.operand(side).defining_op()
        if not _is_constant(candidate, identity):
            return False
        if binary in ("subtract", "divide", "power") and side == 0:
            return False  # identity only on the right for these
        keep = op.operand(1 - side)
        if keep.type != op.results[0].type:
            return False
        rewriter.replace_op(op, [keep])
        return True

    return fn


def _fold_op_of_zero_pad(binary: str):
    """``op(x, pad(zero, ...)) -> op(x, broadcast(zero))``-style work cut.

    Simplified to the paper's motivating case: adding elements produced
    by zero padding is a no-op, so the add collapses onto the unpadded
    operand via a pad of the result — modelled here by bypassing the pad
    when shapes agree.
    """

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if binary not in ("add", "subtract") or op.num_operands != 2:
            return False
        for side in (0, 1):
            pad = op.operand(side).defining_op()
            if pad is None or pad.name != "stablehlo.pad":
                continue
            pad_value = (
                pad.operand(1).defining_op()
                if pad.num_operands > 1
                else None
            )
            if not _is_zero_constant(pad_value):
                continue
            source = pad.operand(0)
            if source.type != op.results[0].type:
                continue
            rewriter.replace_op(op, [op.operand(1 - side)]
                                if source.type != op.operand(1 - side).type
                                else [op.operand(1 - side)])
            return True
        return False

    return fn


def _fold_involution(unary: str):
    """``negate(negate(x)) -> x`` and friends."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        inner = op.operand(0).defining_op()
        if inner is None or inner.name != op.name:
            return False
        source = inner.operand(0)
        if source.type != op.results[0].type:
            return False
        rewriter.replace_op(op, [source])
        return True

    return fn


def _fold_double_shape(shape_op: str):
    """``transpose(transpose(x)) -> x`` when permutations cancel;
    ``reshape(reshape(x)) -> reshape(x)``."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        inner = op.operand(0).defining_op()
        if inner is None or inner.name != op.name:
            return False
        source = inner.operand(0)
        if shape_op == "transpose":
            outer_perm = unwrap(op.attr("permutation")) if op.attr(
                "permutation") else None
            inner_perm = unwrap(inner.attr("permutation")) if inner.attr(
                "permutation") else None
            if outer_perm is None or inner_perm is None:
                return False
            composed = [inner_perm[p] for p in outer_perm]
            if composed != list(range(len(composed))):
                return False
            if source.type != op.results[0].type:
                return False
            rewriter.replace_op(op, [source])
            return True
        # reshape(reshape(x)) -> reshape(x) with the outer target shape.
        rewriter.set_insertion_point_before(op)
        new_op = rewriter.create(
            "stablehlo.reshape",
            operands=[source],
            result_types=[op.results[0].type],
            attributes=dict(op.attributes),
        )
        rewriter.replace_op(op, new_op.results)
        return True

    return fn


def _commute_shape_through_unary(shape_op: str, unary: str):
    """``shape(unary(x)) -> unary(shape(x))`` — an *enabling* pattern:
    moves transposes towards consumers (e.g. dot_general) that absorb
    them."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        inner = op.operand(0).defining_op()
        if inner is None or inner.name != f"stablehlo.{unary}":
            return False
        if inner.attr("commuted") is not None:
            return False  # avoid ping-pong
        source = inner.operand(0)
        rewriter.set_insertion_point_before(op)
        moved_shape = rewriter.create(
            f"stablehlo.{shape_op}",
            operands=[source],
            result_types=[op.results[0].type],
            attributes=dict(op.attributes),
        )
        new_unary = rewriter.create(
            f"stablehlo.{unary}",
            operands=[moved_shape.result],
            result_types=[op.results[0].type],
            attributes={"commuted": True},
        )
        rewriter.replace_op(op, new_unary.results)
        return True

    return fn


def _fold_transpose_into_dot(side: int):
    """``dot_general(transpose(x), y) -> dot_general(x, y) {transpose_a}``.

    dot_general supports transposed operands, so the explicit transpose
    folds into a flag — the "matmul_of_transpose" enabling pattern.
    """

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.num_operands <= side:
            return False
        transpose = op.operand(side).defining_op()
        if transpose is None or transpose.name != "stablehlo.transpose":
            return False
        flag = "transpose_a" if side == 0 else "transpose_b"
        if op.attr(flag) is not None:
            return False
        new_operands = list(op.operands)
        new_operands[side] = transpose.operand(0)
        rewriter.set_insertion_point_before(op)
        new_op = rewriter.create(
            "stablehlo.dot_general",
            operands=new_operands,
            result_types=[r.type for r in op.results],
            attributes={**dict(op.attributes), flag: True},
        )
        rewriter.replace_op(op, new_op.results)
        return True

    return fn


def _fold_shape_into_reduce(shape_op: str):
    """THE CULPRIT: ``reduce(shape(x)) -> reduce(x)`` for full reductions.

    A full additive reduction to a scalar is shape-agnostic (assuming
    -ffast-math associativity), so leading reshape/transpose ops are
    strictly redundant work... locally. Removing them merges the
    producer into the reduce's fusion cluster (the reshape/transpose
    acted as a fusion barrier), which the XLA-like fusion heuristic
    turns into an oversized, cache-inefficient cluster.
    """

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.name != "stablehlo.reduce":
            return False
        kind = op.attr("kind")
        if kind is not None and unwrap(kind) != "add":
            return False
        result_type = op.results[0].type
        if getattr(result_type, "shape", None) not in ((), (1,)):
            return False  # only *full* reductions are shape-agnostic
        inner = op.operand(0).defining_op()
        if inner is None or inner.name != f"stablehlo.{shape_op}":
            return False
        rewriter.modify_op_in_place(
            op, lambda: op.set_operand(0, inner.operand(0))
        )
        op.set_attr("folded_shape_barrier", True)
        return True

    return fn


def _fold_slice_of_pad():
    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.name != "stablehlo.slice":
            return False
        pad = op.operand(0).defining_op()
        if pad is None or pad.name != "stablehlo.pad":
            return False
        source = pad.operand(0)
        if source.type != op.results[0].type:
            return False
        rewriter.replace_op(op, [source])
        return True

    return fn


def _fold_convert_of_convert():
    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.name != "stablehlo.convert":
            return False
        inner = op.operand(0).defining_op()
        if inner is None or inner.name != "stablehlo.convert":
            return False
        if inner.operand(0).type != op.results[0].type:
            return False
        rewriter.replace_op(op, [inner.operand(0)])
        return True

    return fn


def _fold_broadcast_of_scalar_into_binary(binary: str):
    """``op(x, broadcast(c)) -> op(x, splat-const)``-style simplification
    (modelled as dropping the broadcast when types already agree)."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.num_operands != 2:
            return False
        for side in (0, 1):
            broadcast = op.operand(side).defining_op()
            if broadcast is None or \
                    broadcast.name != "stablehlo.broadcast_in_dim":
                continue
            source = broadcast.operand(0)
            if source.type != op.operand(side).type:
                continue
            rewriter.modify_op_in_place(
                op, lambda s=side, src=source: op.set_operand(s, src)
            )
            return True
        return False

    return fn


# ---------------------------------------------------------------------------
# Registry assembly
# ---------------------------------------------------------------------------


def _fold_unary_of_constant(unary: str):
    """Constant-fold ``unary(constant)`` (kept abstract: marks folded)."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        inner = op.operand(0).defining_op()
        if inner is None or inner.name != "stablehlo.constant":
            return False
        if op.results[0].type != inner.results[0].type:
            return False
        rewriter.set_insertion_point_before(op)
        folded = rewriter.create(
            "stablehlo.constant",
            result_types=[op.results[0].type],
            attributes={**dict(inner.attributes), "folded_through": unary},
        )
        rewriter.replace_op(op, folded.results)
        return True

    return fn


def _commute_constant_to_rhs(binary: str):
    """Canonicalize ``op(const, x) -> op(x, const)`` for commutative ops."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if binary not in ("add", "multiply", "maximum", "minimum"):
            return False
        lhs = op.operand(0).defining_op()
        rhs = op.operand(1).defining_op()
        if lhs is None or lhs.name != "stablehlo.constant":
            return False
        if rhs is not None and rhs.name == "stablehlo.constant":
            return False
        left, right = op.operand(0), op.operand(1)
        rewriter.modify_op_in_place(op, lambda: (
            op.set_operand(0, right), op.set_operand(1, left)
        ))
        return True

    return fn


def _fold_same_operands(binary: str):
    """``subtract(x, x) -> 0``, ``divide(x, x) -> 1``, ``max/min(x,x) -> x``."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.num_operands != 2 or op.operand(0) is not op.operand(1):
            return False
        if binary in ("maximum", "minimum"):
            rewriter.replace_op(op, [op.operand(0)])
            return True
        if binary in ("subtract", "divide"):
            payload = 0.0 if binary == "subtract" else 1.0
            rewriter.set_insertion_point_before(op)
            folded = rewriter.create(
                "stablehlo.constant",
                result_types=[op.results[0].type],
                attributes={"value": payload},
            )
            rewriter.replace_op(op, folded.results)
            return True
        return False

    return fn


def _fold_shape_of_shape_generic(outer: str, inner_name: str):
    """``slice(slice(x))``, ``pad(pad(x))``, ``broadcast(broadcast(x))``,
    ``reverse(reverse(x))`` simplifications (type-preserving cases)."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        inner = op.operand(0).defining_op()
        if inner is None or inner.name != f"stablehlo.{inner_name}":
            return False
        source = inner.operand(0)
        if outer == "reverse" and source.type == op.results[0].type:
            rewriter.replace_op(op, [source])
            return True
        if source.type != op.results[0].type:
            return False
        rewriter.replace_op(op, [source])
        return True

    return fn


def _fold_reduce_of_broadcast():
    """``reduce(broadcast(x)) -> multiply(x, count)``-style work cut
    (simplified to bypassing the broadcast when types permit)."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.name != "stablehlo.reduce":
            return False
        inner = op.operand(0).defining_op()
        if inner is None or inner.name != "stablehlo.broadcast_in_dim":
            return False
        if inner.operand(0).type != op.operand(0).type:
            return False
        rewriter.modify_op_in_place(
            op, lambda: op.set_operand(0, inner.operand(0))
        )
        return True

    return fn


def _fold_dot_of_reshape(side: int):
    """``dot_general(reshape(x), y)`` folds rank-preserving reshapes."""

    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.num_operands <= side:
            return False
        reshape = op.operand(side).defining_op()
        if reshape is None or reshape.name != "stablehlo.reshape":
            return False
        source = reshape.operand(0)
        if source.type != op.operand(side).type:
            return False
        rewriter.modify_op_in_place(
            op, lambda: op.set_operand(side, source)
        )
        return True

    return fn


def _fold_select_same():
    def fn(op: Operation, rewriter: PatternRewriter) -> bool:
        if op.name != "stablehlo.select" or op.num_operands != 3:
            return False
        if op.operand(1) is not op.operand(2):
            return False
        rewriter.replace_op(op, [op.operand(1)])
        return True

    return fn


def _build_catalog() -> Dict[str, tuple]:
    """(pattern name) -> (root op name, match/rewrite fn factory)."""
    catalog: Dict[str, tuple] = {}
    for binary in _BINARY_OPS:
        root = f"stablehlo.{binary}"
        for side, suffix in ((0, "lhs"), (1, "rhs")):
            catalog[f"fold_{binary}_identity_{suffix}"] = (
                root, _fold_identity_operand(binary, side)
            )
        catalog[f"fold_{binary}_of_zero_pad"] = (
            root, _fold_op_of_zero_pad(binary)
        )
        catalog[f"fold_broadcast_into_{binary}"] = (
            root, _fold_broadcast_of_scalar_into_binary(binary)
        )
    for unary in _UNARY_INVOLUTIONS:
        catalog[f"fold_{unary}_of_{unary}"] = (
            f"stablehlo.{unary}", _fold_involution(unary)
        )
    for shape_op in _SHAPE_OPS:
        catalog[f"fold_{shape_op}_of_{shape_op}"] = (
            f"stablehlo.{shape_op}", _fold_double_shape(shape_op)
        )
        for unary in _UNARY_OPS:
            catalog[f"{unary}_of_{shape_op}"] = (
                f"stablehlo.{shape_op}",
                _commute_shape_through_unary(shape_op, unary),
            )
    catalog["matmul_of_transpose_lhs"] = (
        "stablehlo.dot_general", _fold_transpose_into_dot(0)
    )
    catalog["matmul_of_transpose_rhs"] = (
        "stablehlo.dot_general", _fold_transpose_into_dot(1)
    )
    catalog["fold_slice_of_pad"] = ("stablehlo.slice", _fold_slice_of_pad())
    catalog["fold_convert_of_convert"] = (
        "stablehlo.convert", _fold_convert_of_convert()
    )
    for unary in _UNARY_OPS:
        catalog[f"fold_{unary}_of_constant"] = (
            f"stablehlo.{unary}", _fold_unary_of_constant(unary)
        )
    for binary in _BINARY_OPS:
        catalog[f"commute_{binary}_constant_to_rhs"] = (
            f"stablehlo.{binary}", _commute_constant_to_rhs(binary)
        )
        catalog[f"fold_{binary}_same_operands"] = (
            f"stablehlo.{binary}", _fold_same_operands(binary)
        )
    for shape_op in ("slice", "pad", "broadcast_in_dim", "reverse",
                     "concatenate"):
        catalog[f"fold_{shape_op}_of_{shape_op}"] = (
            f"stablehlo.{shape_op}",
            _fold_shape_of_shape_generic(shape_op, shape_op),
        )
    catalog["fold_reduce_of_broadcast"] = (
        "stablehlo.reduce", _fold_reduce_of_broadcast()
    )
    catalog["fold_dot_of_reshape_lhs"] = (
        "stablehlo.dot_general", _fold_dot_of_reshape(0)
    )
    catalog["fold_dot_of_reshape_rhs"] = (
        "stablehlo.dot_general", _fold_dot_of_reshape(1)
    )
    catalog["fold_select_same_branches"] = (
        "stablehlo.select", _fold_select_same()
    )
    # The culprit applies to both reshape and transpose producers but is
    # shipped (and searched for) as a single pattern, as in the paper.
    culprit_reshape = _fold_shape_into_reduce("reshape")
    culprit_transpose = _fold_shape_into_reduce("transpose")

    def culprit(op: Operation, rewriter: PatternRewriter) -> bool:
        return culprit_reshape(op, rewriter) or culprit_transpose(
            op, rewriter
        )

    catalog[CULPRIT_PATTERN] = ("stablehlo.reduce", culprit)
    return catalog


_CATALOG = _build_catalog()

#: All pattern names, stable order (the paper's "over 100" pattern set).
ALL_PATTERN_NAMES: List[str] = sorted(_CATALOG)


def make_pattern(name: str) -> RewritePattern:
    root, fn = _CATALOG[name]
    return _Pattern(name, root, fn)


def register_all_patterns() -> int:
    """Register every pattern for use in ``transform.apply_patterns``."""
    for name in ALL_PATTERN_NAMES:
        register_transform_pattern(
            name, lambda n=name: make_pattern(n)
        )
    return len(ALL_PATTERN_NAMES)


register_all_patterns()
