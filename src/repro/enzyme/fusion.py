"""An XLA-like fusion heuristic and cluster cost model (case study 3).

Greedily fuses elementwise producers into consumer clusters (the way
XLA builds loop fusions), then estimates runtime per cluster with a
roofline-style model that penalizes clusters whose working set exceeds
cache — the mechanism by which "fold reshape/transpose into full
reduce" becomes counter-productive: the folded reshape/transpose used
to act as a fusion *barrier*; without it, the heavy producer chain is
pulled into the reduce's cluster, which becomes larger and less
cache-efficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..ir.core import Operation
from ..ir.types import ShapedType

#: Ops that never fuse across (cluster barriers in the heuristic).
_FUSION_BARRIERS = {"stablehlo.reshape", "stablehlo.transpose",
                    "stablehlo.concatenate", "stablehlo.slice",
                    "stablehlo.pad"}

#: Heavy ops that seed their own cluster.
_HEAVY_OPS = {"stablehlo.dot_general", "stablehlo.convolution",
              "stablehlo.reduce"}

_ELEMENTWISE = {
    "stablehlo.add", "stablehlo.subtract", "stablehlo.multiply",
    "stablehlo.divide", "stablehlo.maximum", "stablehlo.minimum",
    "stablehlo.power", "stablehlo.negate", "stablehlo.exponential",
    "stablehlo.log", "stablehlo.rsqrt", "stablehlo.sqrt",
    "stablehlo.tanh", "stablehlo.logistic", "stablehlo.abs",
    "stablehlo.sign", "stablehlo.convert", "stablehlo.select",
    "stablehlo.compare", "stablehlo.broadcast_in_dim",
    "stablehlo.floor", "stablehlo.ceil", "stablehlo.cosine",
    "stablehlo.sine",
}


def _elements(op: Operation) -> int:
    for result in op.results:
        if isinstance(result.type, ShapedType) and \
                result.type.has_static_shape:
            return max(result.type.num_elements, 1)
    for operand in op.operands:
        if isinstance(operand.type, ShapedType) and \
                operand.type.has_static_shape:
            return max(operand.type.num_elements, 1)
    return 1


def _flops(op: Operation) -> float:
    if op.name == "stablehlo.dot_general":
        lhs = op.operand(0).type
        result = op.results[0].type
        if isinstance(lhs, ShapedType) and isinstance(result, ShapedType) \
                and lhs.has_static_shape and result.has_static_shape:
            k = lhs.shape[-1]
            return 2.0 * result.num_elements * k
        return 2.0e6
    if op.name == "stablehlo.reduce":
        return float(_elements(op.operand(0).defining_op() or op))
    if op.name in _ELEMENTWISE:
        return float(_elements(op))
    return 0.0


@dataclass
class FusionCluster:
    ops: List[Operation] = field(default_factory=list)

    @property
    def flops(self) -> float:
        return sum(_flops(op) for op in self.ops)

    @property
    def working_set_bytes(self) -> float:
        """Distinct tensors live inside the cluster, 4 bytes/elem."""
        seen: Set[int] = set()
        total = 0.0
        for op in self.ops:
            for value in [*op.operands, *op.results]:
                if id(value) in seen:
                    continue
                seen.add(id(value))
                value_type = value.type
                if isinstance(value_type, ShapedType) and \
                        value_type.has_static_shape:
                    total += value_type.num_elements * 4.0
        return total

    @property
    def boundary_bytes(self) -> float:
        """Bytes crossing the cluster boundary (materialized tensors)."""
        inside = {id(op) for op in self.ops}
        total = 0.0
        for op in self.ops:
            for operand in op.operands:
                producer = operand.defining_op()
                if producer is None or id(producer) not in inside:
                    operand_type = operand.type
                    if isinstance(operand_type, ShapedType) and \
                            operand_type.has_static_shape:
                        total += operand_type.num_elements * 4.0
            for result in op.results:
                if any(
                    id(use.owner) not in inside for use in result.uses
                ):
                    result_type = result.type
                    if isinstance(result_type, ShapedType) and \
                            result_type.has_static_shape:
                        total += result_type.num_elements * 4.0
        return total


@dataclass
class FusionReport:
    clusters: List[FusionCluster]
    seconds: float
    #: Per-cluster seconds for introspection.
    cluster_seconds: List[float]

    @property
    def largest_working_set(self) -> float:
        return max(
            (c.working_set_bytes for c in self.clusters), default=0.0
        )


class FusionCostModel:
    """Greedy fusion + roofline cost with a cache-pressure penalty."""

    def __init__(self, peak_flops: float = 1.0e11,
                 memory_bandwidth: float = 8.0e10,
                 cache_bytes: float = 4.0e6,
                 oversize_penalty: float = 1.0,
                 reduce_fusion_slowdown: float = 3.5,
                 kernel_launch_seconds: float = 2.0e-6):
        self.peak_flops = peak_flops
        self.memory_bandwidth = memory_bandwidth
        self.cache_bytes = cache_bytes
        self.oversize_penalty = oversize_penalty
        #: Fusing producers into a reduction-rooted cluster inhibits the
        #: tiled/vectorized codegen of the whole cluster (the mechanism
        #: behind the paper's "larger, less cache-efficient fusion
        #: clusters").
        self.reduce_fusion_slowdown = reduce_fusion_slowdown
        self.kernel_launch_seconds = kernel_launch_seconds

    # -- clustering ----------------------------------------------------------

    def build_clusters(self, func_op: Operation) -> List[FusionCluster]:
        """Greedy producer-into-consumer fusion with barriers."""
        assignment: Dict[int, FusionCluster] = {}
        clusters: List[FusionCluster] = []

        ops = [
            op for op in func_op.walk()
            if op.name.startswith("stablehlo.")
            and op.name not in ("stablehlo.constant", "stablehlo.return")
        ]
        # Reverse topological-ish: walk backwards so consumers cluster
        # first and producers join them.
        for op in reversed(ops):
            cluster = assignment.get(id(op))
            if cluster is None:
                cluster = FusionCluster([op])
                clusters.append(cluster)
                assignment[id(op)] = cluster
            if op.name in _FUSION_BARRIERS:
                continue  # never pull producers through a barrier
            for operand in op.operands:
                producer = operand.defining_op()
                if producer is None or id(producer) in assignment:
                    continue
                if producer.name in _FUSION_BARRIERS:
                    continue
                if producer.name in _HEAVY_OPS:
                    continue  # GEMM-like ops run as library calls, unfused
                if producer.name in _ELEMENTWISE:
                    cluster.ops.append(producer)
                    assignment[id(producer)] = cluster
        return clusters

    # -- cost ------------------------------------------------------------------

    def cluster_seconds(self, cluster: FusionCluster) -> float:
        compute = cluster.flops / self.peak_flops
        traffic = cluster.boundary_bytes / self.memory_bandwidth
        seconds = max(compute, traffic) + self.kernel_launch_seconds
        if all(op.name in ("stablehlo.dot_general",
                           "stablehlo.convolution")
               for op in cluster.ops):
            # Library GEMMs are internally cache-blocked: no penalty.
            return seconds
        working_set = cluster.working_set_bytes
        if working_set > self.cache_bytes:
            # Oversized fusion: intermediates spill; efficiency degrades
            # with how badly the cluster overflows the cache.
            overflow = working_set / self.cache_bytes
            seconds *= 1.0 + self.oversize_penalty * (overflow - 1.0) / (
                overflow + 1.0
            ) * min(overflow, 4.0)
        has_reduce = any(op.name == "stablehlo.reduce" for op in cluster.ops)
        if has_reduce and len(cluster.ops) > 1:
            seconds *= self.reduce_fusion_slowdown
        return seconds

    def estimate(self, func_op: Operation) -> FusionReport:
        clusters = self.build_clusters(func_op)
        per_cluster = [self.cluster_seconds(c) for c in clusters]
        return FusionReport(clusters, sum(per_cluster), per_cluster)

    def estimate_module(self, module: Operation) -> FusionReport:
        for op in module.walk_ops("func.func"):
            if op.regions[0].blocks:
                return self.estimate(op)
        raise ValueError("no function found")
