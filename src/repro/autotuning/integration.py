"""Driving parameterized transform scripts with a tuner (case study 5).

The paper's Fig. 9 script exposes its tile sizes as *parameters*; an
autotuner (BaCO) proposes configurations, the interpreter applies the
script, and a measurement feeds back into the search. Here the
measurement is the cache-aware cost model of
:mod:`repro.execution.costmodel`, so convergence happens for the same
mechanistic reason as on hardware: better tilings have better locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core import dialect as transform
from ..core.interpreter import TransformInterpreter
from ..execution.costmodel import CostModel
from ..execution.workloads import build_batch_matmul_module
from ..ir.core import Operation
from .space import Config, Parameter, SearchSpace
from .tuner import BayesianTuner, TuningResult


@dataclass
class TransformTuningProblem:
    """A tunable compilation problem: payload + parameterized script."""

    space: SearchSpace
    payload_factory: Callable[[], Operation]
    script_factory: Callable[[Config], Operation]
    cost_model: CostModel = field(default_factory=CostModel)
    #: Penalty value for configs whose script fails to apply.
    failure_seconds: float = float("inf")

    def objective(self, config: Config) -> float:
        """Apply the script for ``config`` and return modelled seconds."""
        payload = self.payload_factory()
        script = self.script_factory(config)
        try:
            TransformInterpreter().apply(script, payload)
        except Exception:
            return self.failure_seconds
        return self.cost_model.estimate_module(payload)

    def baseline_seconds(self) -> float:
        """Modelled runtime of the untransformed payload."""
        return self.cost_model.estimate_module(self.payload_factory())


def case_study_5_problem(batch: int = 4, m: int = 128, n: int = 128,
                         k: int = 104,
                         vector_width: int = 8) -> TransformTuningProblem:
    """The Fig. 9/10 setup: tunable tiling of a batch matmul.

    Parameters TILE1/TILE2 range over the divisors of the tiled
    dimensions (the "tile sizes must divide their dimension"
    constraint holds by construction of the value sets) and VEC toggles
    vectorization of the innermost loop — disabled unless the innermost
    trip count is divisible by the machine vector size (Fig. 10).
    """
    space = SearchSpace(
        parameters=[
            Parameter.divisors_of("TILE1", m),
            Parameter.divisors_of("TILE2", n),
            Parameter.of("VEC", [1, vector_width, 2 * vector_width]),
        ],
        constraints=[
            lambda config: config["VEC"] == 1 or k % config["VEC"] == 0,
        ],
    )

    def payload_factory() -> Operation:
        return build_batch_matmul_module(batch, m, n, k)

    def script_factory(config: Config) -> Operation:
        """The Fig. 9 script with parametric tile sizes."""
        script, builder, root = transform.sequence()
        i_loop = transform.match_op(builder, root, "scf.for",
                                    position="second")
        tile1 = config["TILE1"]
        tile2 = config["TILE2"]
        sizes = transform.param_constant(builder, [tile1, tile2])
        if tile1 > 1 or tile2 > 1:
            _outer, inner = transform.loop_tile(builder, i_loop, sizes)
            scope = inner
        else:
            scope = i_loop
        if config["VEC"] > 1:
            innermost = transform.match_op(builder, scope, "scf.for",
                                           position="last")
            transform.loop_vectorize(builder, innermost, config["VEC"])
        transform.yield_(builder)
        return script

    return TransformTuningProblem(space, payload_factory, script_factory)


def tune_transform_script(
    problem: TransformTuningProblem,
    tuner: Optional[object] = None,
    n_trials: int = 30,
) -> Tuple[TuningResult, Dict[str, object]]:
    """Run the tuning loop; returns the result plus a summary dict with
    the baseline runtime and the speedup evolution (the Fig. 11 series).
    """
    tuner = tuner or BayesianTuner(seed=0)
    result = tuner.minimize(problem.objective, problem.space, n_trials)
    # Fig. 11 normalizes to the first sampled configuration, as is usual
    # for autotuning evolution plots; we also report the untransformed
    # payload's runtime for reference.
    first_sample = result.trials[0].value
    naive = problem.baseline_seconds()
    summary = {
        "baseline_seconds": first_sample,
        "naive_seconds": naive,
        "best_config": result.best.config,
        "best_seconds": result.best.value,
        "final_speedup": first_sample / result.best.value,
        "speedup_over_naive": naive / result.best.value,
        "speedup_evolution": result.speedup_evolution(first_sample),
    }
    return result, summary


# ---------------------------------------------------------------------------
# Frontend builder templates
# ---------------------------------------------------------------------------


def template_tuning_problem(
    template,
    payload_factory: Callable[[], Operation],
    space: SearchSpace,
    cost_model: Optional[CostModel] = None,
) -> TransformTuningProblem:
    """A tuning problem driven by ONE schedule template.

    ``template`` is a :class:`repro.frontend.Schedule` (or an already
    built script op) whose ``transform.param.constant {binding}`` knobs
    name the parameters of ``space``. Each trial clones the template
    and rebinds the knobs through the *same* override path the compile
    service uses for job params
    (:func:`repro.service.worker.bind_parameters`), so a configuration
    tuned here is directly replayable as ``--param NAME=VALUE`` against
    ``repro-serve``.
    """
    script = template.build() if hasattr(template, "build") else template

    def script_factory(config: Config) -> Operation:
        bound = script.clone()
        from ..service.worker import bind_parameters
        bind_parameters(bound, dict(config))
        return bound

    return TransformTuningProblem(
        space=space,
        payload_factory=payload_factory,
        script_factory=script_factory,
        cost_model=cost_model or CostModel(),
    )


def case_study_5_template(default_tile: int = 4, default_vec: int = 1):
    """The Fig. 9 schedule as a frontend builder template: tile sizes
    and vector width are ``param.constant {binding}`` knobs instead of
    baked-in constants."""
    from ..frontend import Schedule

    schedule = Schedule()
    tile1 = schedule.param(default_tile, binding="TILE1")
    tile2 = schedule.param(default_tile, binding="TILE2")
    vec = schedule.param(default_vec, binding="VEC")
    schedule.match("scf.for", position="second") \
            .tile(sizes=[tile1, tile2], keep="inner")
    schedule.match("scf.for", position="last").vectorize(vec)
    return schedule


def case_study_5_template_problem(batch: int = 4, m: int = 128,
                                  n: int = 128, k: int = 104,
                                  vector_width: int = 8
                                  ) -> TransformTuningProblem:
    """The Fig. 9/10 problem re-expressed over the builder template."""
    space = SearchSpace(
        parameters=[
            Parameter.divisors_of("TILE1", m),
            Parameter.divisors_of("TILE2", n),
            Parameter.of("VEC", [1, vector_width, 2 * vector_width]),
        ],
        constraints=[
            lambda config: config["VEC"] == 1 or k % config["VEC"] == 0,
        ],
    )
    return template_tuning_problem(
        case_study_5_template(),
        lambda: build_batch_matmul_module(batch, m, n, k),
        space,
    )
