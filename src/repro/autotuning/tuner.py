"""Tuners: random search and BaCO-style Bayesian optimization.

The Bayesian tuner implements the standard GP + expected-improvement
loop on numpy: RBF-kernel Gaussian-process regression over the
normalized configuration encoding, EI acquisition maximized over a
sampled candidate pool from the *constrained* space (so constraints are
respected by construction, as in BaCO).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .space import Config, SearchSpace

Objective = Callable[[Config], float]


@dataclass
class Trial:
    config: Config
    value: float


@dataclass
class TuningResult:
    trials: List[Trial] = field(default_factory=list)

    @property
    def best(self) -> Trial:
        return min(self.trials, key=lambda t: t.value)

    def best_so_far(self) -> List[float]:
        """The Fig. 11 evolution curve: running minimum per iteration."""
        out: List[float] = []
        current = math.inf
        for trial in self.trials:
            current = min(current, trial.value)
            out.append(current)
        return out

    def speedup_evolution(self, baseline: float) -> List[float]:
        return [baseline / value for value in self.best_so_far()]


class RandomSearchTuner:
    """Uniform random sampling from the constrained space."""

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    def minimize(self, objective: Objective, space: SearchSpace,
                 n_trials: int = 30) -> TuningResult:
        result = TuningResult()
        seen = set()
        for _ in range(n_trials):
            config = space.sample(self.rng)
            key = tuple(sorted(config.items()))
            if key in seen and space.size() > n_trials:
                config = space.sample(self.rng)
                key = tuple(sorted(config.items()))
            seen.add(key)
            result.trials.append(Trial(config, objective(config)))
        return result


class _GaussianProcess:
    """Minimal RBF-kernel GP regression (numpy only)."""

    def __init__(self, length_scale: float = 0.3,
                 noise: float = 1e-6):
        self.length_scale = length_scale
        self.noise = noise
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._mean = 0.0
        self._std = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(a**2, axis=1)[:, None]
            + np.sum(b**2, axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return np.exp(-0.5 * np.maximum(sq, 0.0) / self.length_scale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._mean = float(np.mean(y))
        self._std = float(np.std(y)) or 1.0
        normalized = (y - self._mean) / self._std
        gram = self._kernel(x, x) + self.noise * np.eye(len(x))
        self._chol = np.linalg.cholesky(gram)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, normalized)
        )
        self._x = x

    def predict(self, x: np.ndarray):
        assert self._x is not None and self._alpha is not None
        cross = self._kernel(x, self._x)
        mean = cross @ self._alpha * self._std + self._mean
        v = np.linalg.solve(self._chol, cross.T)
        variance = np.maximum(
            1.0 - np.sum(v**2, axis=0), 1e-12
        ) * self._std**2
        return mean, np.sqrt(variance)


def _expected_improvement(mean: np.ndarray, std: np.ndarray,
                          best: float, xi: float = 0.01) -> np.ndarray:
    from scipy.stats import norm

    improvement = best - mean - xi
    z = improvement / std
    return improvement * norm.cdf(z) + std * norm.pdf(z)


class BayesianTuner:
    """BaCO-style Bayesian optimization over a constrained space."""

    def __init__(self, seed: int = 0, n_initial: int = 5,
                 candidate_pool: int = 256,
                 length_scale: float = 0.3):
        self.rng = np.random.default_rng(seed)
        self.n_initial = n_initial
        self.candidate_pool = candidate_pool
        self.length_scale = length_scale

    def minimize(self, objective: Objective, space: SearchSpace,
                 n_trials: int = 30) -> TuningResult:
        result = TuningResult()
        evaluated: Dict[tuple, float] = {}

        def run(config: Config) -> None:
            key = tuple(sorted(config.items()))
            if key in evaluated:
                value = evaluated[key]
            else:
                value = objective(config)
                evaluated[key] = value
            result.trials.append(Trial(config, value))

        # Phase 1: random initialization.
        for _ in range(min(self.n_initial, n_trials)):
            run(space.sample(self.rng))

        # Phase 2: GP + EI.
        while len(result.trials) < n_trials:
            xs = space.encode_batch([t.config for t in result.trials])
            ys = np.array([t.value for t in result.trials])
            gp = _GaussianProcess(self.length_scale)
            try:
                gp.fit(xs, ys)
            except np.linalg.LinAlgError:
                run(space.sample(self.rng))
                continue
            candidates = space.sample_batch(self.rng, self.candidate_pool)
            fresh = [
                c for c in candidates
                if tuple(sorted(c.items())) not in evaluated
            ] or candidates
            encoded = space.encode_batch(fresh)
            mean, std = gp.predict(encoded)
            acquisition = _expected_improvement(
                mean, std, float(np.min(ys))
            )
            run(fresh[int(np.argmax(acquisition))])
        return result
