"""Constrained tuning-parameter spaces (Fig. 10 of the paper).

A :class:`SearchSpace` holds ordinal parameters plus *constraints*
(predicates over full configurations) — e.g. "tile sizes must divide
their dimension" and "vectorization is disabled if the innermost trip
count is not divisible by the vector size".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence

import numpy as np

Config = Dict[str, int]


@dataclass(frozen=True)
class Parameter:
    """An ordinal tuning parameter with an explicit value set."""

    name: str
    values: tuple

    @staticmethod
    def of(name: str, values: Sequence[int]) -> "Parameter":
        if not values:
            raise ValueError(f"parameter {name!r} needs at least one value")
        return Parameter(name, tuple(values))

    @staticmethod
    def divisors_of(name: str, n: int,
                    minimum: int = 1) -> "Parameter":
        """All divisors of ``n`` >= minimum (the Fig. 10 tile-size sets)."""
        values = [d for d in range(minimum, n + 1) if n % d == 0]
        return Parameter(name, tuple(values))


class SearchSpace:
    """Parameters + configuration constraints."""

    def __init__(self, parameters: Sequence[Parameter],
                 constraints: Sequence[Callable[[Config], bool]] = ()):
        if not parameters:
            raise ValueError("search space needs at least one parameter")
        self.parameters = list(parameters)
        self.constraints = list(constraints)
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")

    # -- membership --------------------------------------------------------

    def is_valid(self, config: Config) -> bool:
        for parameter in self.parameters:
            if config.get(parameter.name) not in parameter.values:
                return False
        return all(constraint(config) for constraint in self.constraints)

    # -- enumeration / sampling ----------------------------------------------

    def all_configs(self) -> Iterator[Config]:
        """Every valid configuration (cartesian product, filtered)."""
        names = [p.name for p in self.parameters]
        for combo in itertools.product(
            *(p.values for p in self.parameters)
        ):
            config = dict(zip(names, combo))
            if all(constraint(config) for constraint in self.constraints):
                yield config

    def size(self) -> int:
        return sum(1 for _ in self.all_configs())

    def sample(self, rng: np.random.Generator,
               max_attempts: int = 10_000) -> Config:
        """Rejection-sample a valid configuration."""
        for _ in range(max_attempts):
            config = {
                p.name: p.values[int(rng.integers(len(p.values)))]
                for p in self.parameters
            }
            if all(constraint(config) for constraint in self.constraints):
                return config
        raise RuntimeError(
            "could not sample a valid configuration; constraints may be "
            "unsatisfiable"
        )

    def sample_batch(self, rng: np.random.Generator,
                     count: int) -> List[Config]:
        return [self.sample(rng) for _ in range(count)]

    # -- encoding for surrogate models --------------------------------------

    def encode(self, config: Config) -> np.ndarray:
        """Normalize a config to [0, 1]^d by value-set position."""
        out = np.empty(len(self.parameters))
        for index, parameter in enumerate(self.parameters):
            position = parameter.values.index(config[parameter.name])
            denominator = max(len(parameter.values) - 1, 1)
            out[index] = position / denominator
        return out

    def encode_batch(self, configs: Sequence[Config]) -> np.ndarray:
        return np.stack([self.encode(c) for c in configs])
