"""Autotuning (case study 5): constrained spaces + Bayesian optimization.

A BaCO-style tuner: a constrained parameter space (Fig. 10), random and
Gaussian-process/expected-improvement search (Fig. 11's performance
evolution), and the glue that drives *parameterized transform scripts*
through the interpreter and cost model.
"""

from .space import Parameter, SearchSpace
from .tuner import (
    BayesianTuner,
    RandomSearchTuner,
    Trial,
    TuningResult,
)
from .integration import (
    TransformTuningProblem,
    case_study_5_problem,
    case_study_5_template,
    case_study_5_template_problem,
    template_tuning_problem,
    tune_transform_script,
)

__all__ = [
    "BayesianTuner",
    "Parameter",
    "RandomSearchTuner",
    "SearchSpace",
    "TransformTuningProblem",
    "Trial",
    "TuningResult",
    "case_study_5_problem",
    "case_study_5_template",
    "case_study_5_template_problem",
    "template_tuning_problem",
    "tune_transform_script",
]
