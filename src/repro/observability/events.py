"""The structured event log: one JSONL record per job state change.

Spans answer "where did the time go"; events answer "what happened,
in what order". Every transition in a job's lifecycle — admitted to
the frontier queue, dequeued, started in the engine, answered from
the cache, dispatched to a worker, retried, quarantined, completed —
emits one record carrying the job id as the correlation id, so a
chaos-driver failure or a fuzzer crash is replayable against an exact
timeline (join the event log with the fired fault schedule on time
and job id).

Records are plain dicts; with a ``path`` the log writes each record
as one JSON line immediately (line-buffered, so a crashed process
still leaves a usable prefix). An in-memory copy is always kept for
tests and for the ``repro-serve`` streaming-status surface to read.

:func:`validate_events` is the schema check CI runs against the
emitter so the format cannot drift.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, List, Optional, Union

#: Version of the event record schema (the per-record ``v`` field).
EVENTS_SCHEMA_VERSION = 1

#: Every event type the service emits. ``emit`` rejects anything
#: else, so new lifecycle states must be added here (and to the
#: validator's expectations) deliberately.
EVENT_TYPES = frozenset({
    # frontier
    "ADMITTED",       # job entered the admission queue (depth)
    "DEQUEUED",       # a dispatcher popped it (depth)
    # engine front-end
    "STARTED",        # engine began processing
    "REJECTED",       # static preflight / parse refusal
    "CACHE_HIT",      # answered from the content-addressed cache
    "ASSEMBLED",      # answered from the per-function cache tier
    "COALESCED",      # follower of an in-flight identical job
    "POISONED",       # refused by the quarantine circuit breaker
    # pool boundary
    "DISPATCHED",     # one execution attempt began (pool or in-process)
    "RETRIED",        # the retry policy granted another attempt
    "TIMEOUT",        # an attempt exceeded the deadline
    "CRASHED",        # an attempt died with the pool
    "DEGRADED",       # crash-loop detection demoted the engine
    # terminal
    "COMPLETED",      # job reached a terminal status
})

#: Event types that mark the end of a job's lifecycle.
TERMINAL_EVENTS = frozenset({"COMPLETED"})


class EventLog:
    """Thread-safe JSONL event emitter with an in-memory copy.

    Live consumers (the ``repro-serve`` streaming-status surface)
    register with :meth:`subscribe`; every subscriber sees every
    record, in emission order, as it is emitted.
    """

    def __init__(self, path: Optional[str] = None):
        self._records: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._handle = open(path, "w") if path is not None else None
        self._subscribers: List[Callable[[Dict[str, object]], None]] = []

    def subscribe(
            self, callback: Callable[[Dict[str, object]], None],
    ) -> Callable[[], None]:
        """Invoke ``callback(record)`` on every future emit; returns
        an unsubscribe callable. Callbacks run on the emitting thread
        (the engine emits from dispatcher threads) and must be fast
        and non-blocking — hand records off to a queue, do not
        process them inline. A raising callback is dropped from the
        subscriber list rather than poisoning subsequent emits."""
        with self._lock:
            self._subscribers.append(callback)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._subscribers.remove(callback)
                except ValueError:
                    pass

        return unsubscribe

    def emit(self, event: str, job_id: Optional[str] = None,
             **fields: object) -> Dict[str, object]:
        if event not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event!r}")
        record: Dict[str, object] = {
            "v": EVENTS_SCHEMA_VERSION,
            "ts": time.time(),
            "event": event,
        }
        if job_id is not None:
            record["job_id"] = job_id
        record.update(fields)
        with self._lock:
            self._records.append(record)
            if self._handle is not None:
                self._handle.write(json.dumps(record) + "\n")
                self._handle.flush()
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(record)
            except Exception:
                with self._lock:
                    try:
                        self._subscribers.remove(callback)
                    except ValueError:
                        pass
        return record

    def records(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._records)

    def for_job(self, job_id: str) -> List[Dict[str, object]]:
        return [record for record in self.records()
                if record.get("job_id") == job_id]

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str) -> List[Dict[str, object]]:
    """Load a JSONL event file back into records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_events(
        records: Union[List[Dict[str, object]], List[str]],
) -> List[str]:
    """Structural validation of an event stream; empty = valid.

    Checks each record's required fields (``v``, ``ts``, ``event``)
    and type membership, and the per-job lifecycle shape: any job with
    a terminal event has exactly one, preceded (in emission order) by
    at least one non-terminal event, and COMPLETED records carry a
    ``status``.
    """
    problems: List[str] = []
    decoded: List[Dict[str, object]] = []
    for index, record in enumerate(records):
        if isinstance(record, str):
            try:
                record = json.loads(record)
            except json.JSONDecodeError as error:
                problems.append(f"record[{index}]: not JSON ({error})")
                continue
        if not isinstance(record, dict):
            problems.append(f"record[{index}]: not an object")
            continue
        if record.get("v") != EVENTS_SCHEMA_VERSION:
            problems.append(
                f"record[{index}]: v != {EVENTS_SCHEMA_VERSION}"
            )
        if not isinstance(record.get("ts"), (int, float)):
            problems.append(f"record[{index}]: ts is not a number")
        event = record.get("event")
        if event not in EVENT_TYPES:
            problems.append(f"record[{index}]: unknown event {event!r}")
            continue
        if event == "COMPLETED" and "status" not in record:
            problems.append(f"record[{index}]: COMPLETED without status")
        decoded.append(record)
    by_job: Dict[str, List[Dict[str, object]]] = {}
    for record in decoded:
        job_id = record.get("job_id")
        if isinstance(job_id, str):
            by_job.setdefault(job_id, []).append(record)
    for job_id, stream in by_job.items():
        terminals = [r for r in stream if r["event"] in TERMINAL_EVENTS]
        if len(terminals) > 1:
            problems.append(
                f"job {job_id}: {len(terminals)} terminal events"
            )
        if terminals and stream.index(terminals[0]) == 0 \
                and len(stream) > 1:
            problems.append(
                f"job {job_id}: terminal event precedes lifecycle events"
            )
    return problems
