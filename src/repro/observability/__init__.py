"""``repro.observability``: tracing, metrics, and structured events.

The introspection substrate of the compile service (and of the
planned ``repro-serve`` daemon): span-based job tracing with
cross-process propagation and Chrome-trace export
(:mod:`~repro.observability.tracing`), a unified versioned metrics
registry (:mod:`~repro.observability.metrics`), and a JSONL event log
of job state transitions (:mod:`~repro.observability.events`).
"""

from .events import (
    EVENT_TYPES,
    EVENTS_SCHEMA_VERSION,
    EventLog,
    read_events,
    validate_events,
)
from .metrics import (
    DEPTH_BUCKETS,
    METRICS_SCHEMA_VERSION,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_metrics_snapshot,
)
from .tracing import (
    TRACE_SCHEMA_VERSION,
    Span,
    SpanContext,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "EVENT_TYPES",
    "EVENTS_SCHEMA_VERSION",
    "EventLog",
    "read_events",
    "validate_events",
    "DEPTH_BUCKETS",
    "METRICS_SCHEMA_VERSION",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_metrics_snapshot",
    "TRACE_SCHEMA_VERSION",
    "Span",
    "SpanContext",
    "Tracer",
    "validate_chrome_trace",
]
