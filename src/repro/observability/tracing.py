"""Span-based tracing for the compile service.

A :class:`Span` is one timed unit of work — a job's admission wait, a
cache lookup, one pool dispatch attempt, one top-level transform op —
with a name, wall-clock start/end, a status, free-form attributes and
a parent link. A :class:`Tracer` collects finished spans; it is
thread-safe, so the asyncio frontier, the engine's dispatcher threads
and (via :meth:`Tracer.record`) the pool workers all feed one trace.

**Cross-process propagation.** Workers cannot share a tracer object
with the engine; instead the engine ships a :class:`SpanContext`
(trace id + parent span id) with the job, the worker records spans
into a local tracer seeded with that context, and the finished spans
travel back in the result payload as plain dicts (pickle- and
JSON-friendly, see :meth:`Span.to_dict`). ``Tracer.record`` absorbs
them, so one job's trace is complete across the process boundary.
Timestamps are ``time.time()`` — the one clock all processes on the
machine share — so engine-side and worker-side spans interleave
correctly in the exported timeline.

**Export.** :meth:`Tracer.export_chrome` renders the trace in the
Chrome trace-event JSON format (``ph: "X"`` complete events), directly
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
:func:`validate_chrome_trace` is the schema check CI runs against the
exporters so the format cannot drift.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

#: Version of the exported span/trace schema (bump on shape changes).
TRACE_SCHEMA_VERSION = 1


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """The wire form of a span identity: what crosses the pool
    boundary so a worker can parent its spans under an engine span."""

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_dict(data: Dict[str, str]) -> "SpanContext":
        return SpanContext(trace_id=data["trace_id"],
                           span_id=data["span_id"])


@dataclass
class Span:
    """One timed unit of work inside a trace."""

    name: str
    trace_id: str
    span_id: str = field(default_factory=_new_id)
    parent_id: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    #: "ok" | "error" | any domain string ("silenceable", "timeout"...).
    status: str = "ok"
    attributes: Dict[str, object] = field(default_factory=dict)
    pid: int = field(default_factory=os.getpid)
    tid: int = field(default_factory=threading.get_ident)

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (pickle/JSON friendly; the pool transport)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
            "pid": self.pid,
            "tid": self.tid,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Span":
        return Span(
            name=str(data["name"]),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),  # type: ignore[arg-type]
            start=float(data["start"]),  # type: ignore[arg-type]
            end=(None if data.get("end") is None
                 else float(data["end"])),  # type: ignore[arg-type]
            status=str(data.get("status", "ok")),
            attributes=dict(data.get("attributes") or {}),  # type: ignore[arg-type]
            pid=int(data.get("pid", 0)),  # type: ignore[arg-type]
            tid=int(data.get("tid", 0)),  # type: ignore[arg-type]
        )


ParentLike = Union[Span, SpanContext, str, None]


def _parent_id(parent: ParentLike) -> Optional[str]:
    if parent is None:
        return None
    if isinstance(parent, Span):
        return parent.span_id
    if isinstance(parent, SpanContext):
        return parent.span_id
    return str(parent)


class Tracer:
    """Collects spans for one trace; thread-safe.

    Every span started through a tracer carries the tracer's trace id.
    A worker-side tracer is constructed with the engine's trace id
    (from the propagated :class:`SpanContext`) so its spans join the
    same trace when shipped back.
    """

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or _new_id()
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------

    def start_span(self, name: str, parent: ParentLike = None,
                   attributes: Optional[Dict[str, object]] = None) -> Span:
        return Span(
            name=name,
            trace_id=self.trace_id,
            parent_id=_parent_id(parent),
            start=time.time(),
            attributes=dict(attributes or {}),
        )

    def end_span(self, span: Span, status: Optional[str] = None) -> Span:
        if status is not None:
            span.status = status
        # time.time() is not monotonic under clock steps; a span must
        # still never end before it starts (the exporter emits an
        # unsigned duration and consumers assert end >= start).
        span.end = max(time.time(), span.start)
        with self._lock:
            self._spans.append(span)
        return span

    def span(self, name: str, parent: ParentLike = None,
             attributes: Optional[Dict[str, object]] = None):
        """Context-manager form: ends the span on exit, flagging the
        status "error" when the body raised."""
        return _SpanScope(self, name, parent, attributes)

    def record(self, spans: List[Dict[str, object]]) -> None:
        """Absorb spans recorded in another process (dict form, from
        :meth:`Span.to_dict` — the worker result payload)."""
        if not spans:
            return
        decoded = [Span.from_dict(data) for data in spans]
        with self._lock:
            self._spans.extend(decoded)

    # -- introspection ------------------------------------------------------

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def to_dicts(self) -> List[Dict[str, object]]:
        with self._lock:
            return [span.to_dict() for span in self._spans]

    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans() if span.name == name]

    # -- export -------------------------------------------------------------

    def export_chrome(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event JSON object.

        One ``ph: "X"`` (complete) event per span; ``ts``/``dur`` are
        microseconds relative to the earliest span start, so the
        timeline opens at t=0 in Perfetto. Span identity and parent
        links ride in ``args`` (the viewer nests same-thread spans by
        time containment; cross-process parent links stay inspectable
        per event).
        """
        spans = self.spans()
        base = min((span.start for span in spans), default=0.0)
        events: List[Dict[str, object]] = []
        for span in spans:
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start - base) * 1e6,
                "dur": max(span.duration, 0.0) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                    **span.attributes,
                },
            })
        return {
            "displayTimeUnit": "ms",
            "otherData": {
                "schema_version": TRACE_SCHEMA_VERSION,
                "trace_id": self.trace_id,
                "epoch_base_seconds": base,
            },
            "traceEvents": events,
        }

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.export_chrome(), handle, indent=2)


class _SpanScope:
    """The object behind :meth:`Tracer.span`; yields the live span."""

    def __init__(self, tracer: Tracer, name: str, parent: ParentLike,
                 attributes: Optional[Dict[str, object]]):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attributes = attributes
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.start_span(
            self._name, self._parent, self._attributes
        )
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self.span is not None
        status = None
        if exc_type is not None and self.span.status == "ok":
            status = "error"
            self.span.attributes.setdefault(
                "exception", f"{exc_type.__name__}: {exc}"
            )
        self._tracer.end_span(self.span, status)


# ---------------------------------------------------------------------------
# Schema validation (used by tests and CI so the exporter cannot drift)
# ---------------------------------------------------------------------------


def validate_chrome_trace(trace: Dict[str, object]) -> List[str]:
    """Structural validation of an exported Chrome trace.

    Returns a list of problems (empty = valid): required top-level
    keys, per-event required fields, unique span ids, no orphan parent
    links, non-negative timestamps and durations (end >= start), and a
    single trace id across all events.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["trace is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    meta = trace.get("otherData")
    if (not isinstance(meta, dict)
            or meta.get("schema_version") != TRACE_SCHEMA_VERSION):
        problems.append(
            f"otherData.schema_version != {TRACE_SCHEMA_VERSION}"
        )
    span_ids = set()
    trace_ids = set()
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "dur", "pid", "tid", "args"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if event.get("ph") != "X":
            problems.append(f"{where}: ph is not 'X'")
        if not isinstance(event.get("ts"), (int, float)) \
                or event.get("ts", -1) < 0:
            problems.append(f"{where}: ts is not a non-negative number")
        if not isinstance(event.get("dur"), (int, float)) \
                or event.get("dur", -1) < 0:
            problems.append(f"{where}: dur is not a non-negative number")
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        span_id = args.get("span_id")
        if not span_id:
            problems.append(f"{where}: args.span_id missing")
        elif span_id in span_ids:
            problems.append(f"{where}: duplicate span_id {span_id}")
        else:
            span_ids.add(span_id)
        trace_ids.add(args.get("trace_id"))
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            continue
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        parent = args.get("parent_id")
        if parent is not None and parent not in span_ids:
            problems.append(
                f"traceEvents[{index}]: orphan parent_id {parent} "
                f"(span {args.get('span_id')})"
            )
    if len(trace_ids) > 1:
        problems.append(f"multiple trace ids in one trace: {trace_ids}")
    return problems


def iter_spans(trace: Dict[str, object]) -> Iterator[Dict[str, object]]:
    """Convenience: the events of an exported trace (assumed valid)."""
    for event in trace.get("traceEvents", []):  # type: ignore[union-attr]
        yield event
