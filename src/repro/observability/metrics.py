"""The unified metrics registry.

Before this module the service's telemetry lived in five ad-hoc
shapes: the profiler's dataclass sections, ``EngineStats.as_dict()``,
``CacheStats.as_dict()``, resilience counters, and the interpreter's
stats dict — each with its own ``to_json`` convention. A
:class:`MetricsRegistry` is the one sink they all plumb onto:

* :class:`Counter` — a monotonically increasing number (jobs
  completed, retries granted, cache hits);
* :class:`Gauge` — a point-in-time value (current queue depth,
  degraded flags, hit rates);
* :class:`Histogram` — a fixed-bucket distribution with estimated
  p50/p90/p99 (job wall time, queue depth at admission/dispatch,
  per-transform-op seconds).

``registry.snapshot()`` produces the single **versioned** JSON schema
(``schema_version``) that ``repro-batch --json`` emits and that the
future ``repro-serve`` ``/stats`` endpoint will serve;
:func:`validate_metrics_snapshot` is the drift check CI runs.

Fixed buckets keep ``observe`` O(log buckets) with zero allocation,
so instruments can sit on hot paths; percentiles are estimated by
linear interpolation inside the winning bucket (the standard
Prometheus-style estimation error: bounded by bucket width).
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Version of the snapshot schema (bump on shape changes).
METRICS_SCHEMA_VERSION = 1

#: Default bucket bounds for duration histograms, in seconds:
#: 100us .. 60s, roughly x2.5 per step.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default bucket bounds for small-integer distributions (queue
#: depth, batch sizes): powers of two up to 1024.
DEPTH_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
    512.0, 1024.0,
)


class Counter:
    """A monotonically increasing value (float-valued, so second
    totals can ride on it too)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Bridge hook for syncing an externally accumulated total
        (e.g. a profiler dataclass field) onto the registry. Regular
        instrumentation should use :meth:`inc`."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``bounds`` are the inclusive upper edges of each bucket; samples
    above the last bound land in the overflow bucket. Exact count,
    sum, min and max are tracked alongside, so means are exact and
    only the percentiles are bucket-estimates.
    """

    def __init__(self, name: str,
                 bounds: Sequence[float] = SECONDS_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and "
                             "non-empty")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # +1 = overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1) by linear interpolation
        inside the winning bucket, clamped to the observed min/max."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= target:
                    if index >= len(self.bounds):
                        # Overflow bucket: no upper edge; the observed
                        # max is the best estimate.
                        return float(self._max)  # type: ignore[arg-type]
                    hi = self.bounds[index]
                    lo = self.bounds[index - 1] if index > 0 else min(
                        0.0, self._min  # type: ignore[type-var]
                    )
                    fraction = (target - seen) / bucket_count
                    estimate = lo + (hi - lo) * fraction
                    return max(min(estimate, self._max),  # type: ignore[type-var]
                               self._min)  # type: ignore[type-var]
                seen += bucket_count
            return float(self._max)  # type: ignore[arg-type]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum
            lo, hi = self._min, self._max
        summary: Dict[str, object] = {
            "count": count,
            "sum": total,
            "min": lo if lo is not None else 0.0,
            "max": hi if hi is not None else 0.0,
            "mean": (total / count) if count else 0.0,
            "bounds": list(self.bounds),
            "bucket_counts": counts,
        }
        # Percentiles re-walk under their own lock acquisition; fine —
        # snapshot consistency is per-field, not transactional.
        summary["p50"] = self.quantile(0.50)
        summary["p90"] = self.quantile(0.90)
        summary["p99"] = self.quantile(0.99)
        return summary


class MetricsRegistry:
    """Process-wide named metrics with one versioned snapshot.

    ``counter``/``gauge``/``histogram`` get-or-create by name;
    requesting an existing name as a different kind raises, so two
    subsystems cannot silently alias one metric with different
    semantics.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = SECONDS_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def set_section(self, prefix: str,
                    values: Mapping[str, object]) -> None:
        """Sync a scalar mapping (an ``as_dict()``-style stats shape)
        onto the registry under ``prefix.``: ints become counters
        (set), floats and bools become gauges. This is how the legacy
        stats shapes — ``EngineStats``, ``CacheStats``, profiler
        dataclass sections — are re-plumbed onto the one registry
        without rewriting every recording site at once."""
        for key, value in values.items():
            name = f"{prefix}.{key}"
            if isinstance(value, bool):
                self.gauge(name).set(1.0 if value else 0.0)
            elif isinstance(value, int):
                self.counter(name).set(float(value))
            elif isinstance(value, float):
                self.gauge(name).set(value)
            elif isinstance(value, Mapping):
                self.set_section(name, value)
            # Non-numeric values (strings, None) are not metrics.

    def snapshot(self) -> Dict[str, object]:
        """The one versioned machine-readable dump."""
        with self._lock:
            metrics = dict(self._metrics)
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        for name in sorted(metrics):
            metric = metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            elif isinstance(metric, Histogram):
                histograms[name] = metric.snapshot()
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


# ---------------------------------------------------------------------------
# Schema validation (used by tests and CI so the snapshot cannot drift)
# ---------------------------------------------------------------------------

_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50",
                     "p90", "p99", "bounds", "bucket_counts")


def validate_metrics_snapshot(snapshot: Dict[str, object]) -> List[str]:
    """Structural validation of a registry snapshot; empty = valid."""
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return ["snapshot is not a JSON object"]
    if snapshot.get("schema_version") != METRICS_SCHEMA_VERSION:
        problems.append(
            f"schema_version != {METRICS_SCHEMA_VERSION}"
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            problems.append(f"{section} missing or not an object")
    for name, value in (snapshot.get("counters") or {}).items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"counter {name}: not a non-negative number")
    for name, value in (snapshot.get("gauges") or {}).items():
        if not isinstance(value, (int, float)):
            problems.append(f"gauge {name}: not a number")
    for name, hist in (snapshot.get("histograms") or {}).items():
        if not isinstance(hist, dict):
            problems.append(f"histogram {name}: not an object")
            continue
        for required in _HISTOGRAM_FIELDS:
            if required not in hist:
                problems.append(f"histogram {name}: missing {required!r}")
        counts = hist.get("bucket_counts")
        bounds = hist.get("bounds")
        if isinstance(counts, list) and isinstance(bounds, list) \
                and len(counts) != len(bounds) + 1:
            problems.append(
                f"histogram {name}: bucket_counts must have "
                f"len(bounds)+1 entries"
            )
        if isinstance(counts, list) \
                and isinstance(hist.get("count"), int) \
                and sum(counts) != hist["count"]:
            problems.append(
                f"histogram {name}: bucket counts do not sum to count"
            )
    return problems
