"""Command-line-style entry points (the ``mlir-opt`` analog).

The paper's workflow keeps payload and transform script in separate
files; :func:`transform_opt` mirrors that: both inputs are textual IR,
the script is interpreted against the payload, and the transformed
payload is printed back. A pass-pipeline mode mirrors plain
``mlir-opt --pass-pipeline=...``.

Usage from a shell::

    python -m repro.tools payload.mlir --script schedule.mlir
    python -m repro.tools payload.mlir --pipeline canonicalize,cse
    python -m repro.tools payload.mlir --script schedule.mlir --check
    python -m repro.tools payload.mlir --script schedule.mlir --verify

``--check`` additionally runs the static script verification
(invalidation analysis) and the static pipeline condition check before
interpreting anything, reporting plain strings. ``--verify`` runs the
full ``repro-lint`` analysis suite instead and reports MLIR-style
``error:``/``note:`` diagnostics (use site, consuming op, and — for
``transform.include`` call sites — the in-body consumer) on stderr,
aborting before interpretation when any error fires.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import repro.core  # noqa: F401 — registers transform ops
import repro.dialects  # noqa: F401 — registers payload ops
import repro.passes  # noqa: F401 — registers passes
from .core.conditions import payload_op_specs
from .core.errors import TransformInterpreterError
from .core.interpreter import TransformInterpreter
from .core.invalidation import verify_script
from .core.static_checker import check_transform_script
from .ir.parser import parse
from .ir.printer import print_op
from .passes.manager import parse_pipeline


class ToolError(Exception):
    """A user-facing tool failure (bad input, failed check, ...)."""


def transform_opt(
    payload_text: str,
    script_text: str,
    entry_point: Optional[str] = None,
    check: bool = False,
    final_allowed: Sequence[str] = ("llvm.*",),
    profiler=None,
    strict: bool = False,
    verify: bool = False,
    jobs: int = 1,
    tracer=None,
) -> str:
    """Apply a textual transform script to a textual payload.

    Returns the transformed payload in textual form. With ``check``,
    static script verification and the pipeline condition check run
    first and abort on errors (plain-string reporting); with
    ``verify``, the full ``repro-lint`` suite runs instead, printing
    MLIR-style ``error:``/``note:`` diagnostics to stderr. ``profiler``
    (a :class:`repro.profiling.Profiler`) collects the timing report.
    Definite interpretation failures raise
    :class:`~repro.core.errors.TransformInterpreterError` whose message
    is the interpreter's MLIR-style ``error:``/``note:`` diagnostic
    chain; ``strict`` disables the exception barrier so crashes in
    transform code propagate raw (for debugging).

    ``jobs > 1`` fans a multi-function payload out over the compile
    service, one function per worker, when the script provably
    distributes over functions (see :mod:`repro.service.sharding`);
    the output is byte-identical to ``jobs=1``, falling back to the
    sequential path whenever sharding does not apply or any shard
    reports anything but clean success.

    ``tracer`` (a :class:`repro.observability.Tracer`) records one
    span per top-level transform op — and, on the sharded path, the
    full engine/worker span tree of each shard job.
    """
    payload = parse(payload_text, "<payload>")
    script = parse(script_text, "<script>")

    if verify:
        from .analysis.lint import lint_script

        engine = lint_script(
            script,
            payload_specs=payload_op_specs(payload),
            final_allowed=final_allowed,
            entry_point=entry_point,
        )
        if engine.diagnostics:
            print(engine.render(), file=sys.stderr)
        if engine.has_errors():
            raise ToolError(
                f"static verification failed with "
                f"{len(engine.errors)} error(s) (see diagnostics above)"
            )
    if check:
        errors = verify_script(script)
        if errors:
            raise ToolError(
                "static script verification failed:\n"
                + "\n".join(f"  {e}" for e in errors)
            )
        report = check_transform_script(
            script, payload_op_specs(payload), final_allowed
        )
        if not report.ok:
            raise ToolError(
                "static pipeline check failed:\n" + report.render()
            )

    if jobs > 1 and entry_point is None:
        sharded = _transform_opt_sharded(
            payload, script, script_text, jobs,
            strict=strict, profiler=profiler, tracer=tracer,
        )
        if sharded is not None:
            return sharded

    interpreter = TransformInterpreter(profiler=profiler, strict=strict,
                                       tracer=tracer)
    result = interpreter.apply(script, payload, entry_point)
    if result.is_silenceable:
        print(f"warning: {interpreter.diagnostics.render()}",
              file=sys.stderr)
    payload.verify()
    return print_op(payload)


def _transform_opt_sharded(payload, script, script_text: str, jobs: int,
                           strict: bool = False,
                           profiler=None, tracer=None) -> Optional[str]:
    """Per-function fan-out over the compile service; None when the
    (payload, script) pair is not shardable, any shard failed, or a
    shard's module attributes diverged during reassembly —
    callers fall back to the sequential whole-module path, which also
    reruns non-clean schedules so silenceable skip semantics stay
    whole-module."""
    from .ir.hashing import op_digest
    from .service.engine import CompileEngine, CompileJob, JobStatus
    from .service.resilience import RetryPolicy
    from .service.sharding import (
        is_func_shardable,
        reassemble_module,
        shard_payload,
    )

    if not is_func_shardable(script):
        return None
    shards = shard_payload(payload)
    if shards is None:
        return None
    # Structurally identical shards (same function cloned N times —
    # common in generated payloads) compile once: dedupe by structural
    # digest while the shard ops are in hand, then fan the one result
    # back out positionally.
    shard_for: List[int] = []
    unique_texts: List[str] = []
    seen: dict = {}
    for shard in shards:
        digest = op_digest(shard)
        index = seen.get(digest)
        if index is None:
            index = len(unique_texts)
            seen[digest] = index
            unique_texts.append(print_op(shard))
        shard_for.append(index)
    # No retries here: any shard failure makes this helper return None
    # and the caller rerun the whole module sequentially, so paying for
    # a second pooled attempt first only delays the fallback.
    engine = CompileEngine(
        workers=min(jobs, len(unique_texts)),
        cache=None,
        preflight=False,
        normalize_keys=False,
        strict=strict,
        profiler=profiler,
        retry_policy=RetryPolicy.none(),
        tracer=tracer,
    )
    try:
        unique_results = engine.run_batch([
            CompileJob(payload_text=text, script_text=script_text)
            for text in unique_texts
        ])
    finally:
        engine.shutdown()
    if any(r.status is not JobStatus.SUCCESS for r in unique_results):
        return None
    return reassemble_module(
        payload,
        [unique_results[index].output or "" for index in shard_for],
    )


def pipeline_opt(payload_text: str, pipeline: str, profiler=None) -> str:
    """Run a textual pass pipeline over a textual payload (mlir-opt)."""
    payload = parse(payload_text, "<payload>")
    parse_pipeline(pipeline).run(payload, profiler=profiler)
    payload.verify()
    return print_op(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-opt",
        description="apply a transform script or pass pipeline to "
        "payload IR",
    )
    parser.add_argument("payload", help="payload IR file ('-' = stdin)")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--script", help="transform script IR file")
    group.add_argument("--pipeline", help="comma-separated pass names")
    parser.add_argument("--entry-point", default=None,
                        help="named sequence to run")
    parser.add_argument("--check", action="store_true",
                        help="run static checks before interpreting")
    parser.add_argument("--verify", action="store_true",
                        help="run the repro-lint static analysis suite "
                        "before interpreting; report error:/note: "
                        "diagnostics on stderr")
    parser.add_argument("--strict", action="store_true",
                        help="disable the exception barrier: crashes in "
                        "transform/pattern code propagate raw")
    parser.add_argument("--jobs", type=int, default=1,
                        help="fan a multi-function payload out over N "
                        "service workers when the script distributes "
                        "over functions (output is byte-identical to "
                        "--jobs 1)")
    parser.add_argument("--timing", action="store_true",
                        help="print a -mlir-timing-style report to stderr")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON (one span "
                        "per top-level transform op) here; open in "
                        "ui.perfetto.dev")
    parser.add_argument("-o", "--output", default="-",
                        help="output file ('-' = stdout)")
    args = parser.parse_args(argv)

    payload_text = (
        sys.stdin.read() if args.payload == "-"
        else open(args.payload).read()
    )
    profiler = None
    if args.timing:
        from .profiling import Profiler

        profiler = Profiler()
    tracer = None
    if args.trace_out is not None:
        from .observability import Tracer

        tracer = Tracer()
    try:
        if args.script is not None:
            script_text = open(args.script).read()
            output = transform_opt(
                payload_text, script_text, args.entry_point, args.check,
                profiler=profiler, strict=args.strict,
                verify=args.verify, jobs=args.jobs, tracer=tracer,
            )
        else:
            output = pipeline_opt(payload_text, args.pipeline,
                                  profiler=profiler)
    except ToolError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except TransformInterpreterError as error:
        # The interpreter already rendered the failure as an MLIR-style
        # error/note diagnostic chain; print it verbatim.
        print(str(error), file=sys.stderr)
        return 1
    if profiler is not None:
        print(profiler.render(), file=sys.stderr)
    if tracer is not None:
        tracer.write_chrome(args.trace_out)
    if args.output == "-":
        print(output)
    else:
        with open(args.output, "w") as handle:
            handle.write(output + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
