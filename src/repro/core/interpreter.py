"""The transform interpreter (paper §3).

Walks a transform script top to bottom, maintaining the handle/payload
association table (:class:`~repro.core.state.TransformState`), dispatching
each transform op's ``apply`` and processing handle consumption. Errors
follow the paper's model: *silenceable* errors skip the remainder of the
current region and bubble to the parent (which may suppress them, as
``alternatives`` does); *definite* errors abort interpretation.

Two robustness layers sit around ``apply`` dispatch:

* an **exception barrier**: arbitrary Python exceptions escaping a
  transform's ``apply`` (or a pattern rewrite under
  ``transform.apply_patterns``) become *definite* failures carrying the
  transform-stack backtrace — the chain of enclosing
  sequence/alternatives/foreach ops — instead of crashing the process.
  Construct the interpreter with ``strict=True`` to re-raise the raw
  exception at the crash site for debugging;
* **diagnostic routing**: every interpretation failure is emitted to a
  :class:`~repro.ir.diagnostics.DiagnosticEngine` as an MLIR-style
  ``error: ... note: while executing ...`` diagnostic with payload and
  transform :class:`~repro.ir.location.Location`\\ s attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..ir.core import Block, Operation
from ..ir.diagnostics import Diagnostic, DiagnosticEngine, Severity
from .errors import TransformInterpreterError, TransformResult
from .state import HandleInvalidatedError, TransformState


@dataclass
class InterpreterStats:
    """Execution statistics (used by the overhead study, Table 1).

    ``transforms_executed`` and ``handles_created`` count *successful*
    transform applications only; ``handles_invalidated`` counts every
    handle actually invalidated by consumption, aliases included.
    ``exceptions_contained`` counts Python exceptions the barrier
    converted into definite failures.
    """

    transforms_executed: int = 0
    handles_created: int = 0
    handles_invalidated: int = 0
    exceptions_contained: int = 0
    wall_seconds: float = 0.0


class TransformInterpreter:
    """Executes transform scripts against a payload module."""

    def __init__(self, check_types: bool = True,
                 track_invalidation: bool = True,
                 profiler=None,
                 strict: bool = False,
                 diagnostics: Optional[DiagnosticEngine] = None,
                 preflight: bool = False,
                 tracer=None,
                 trace_parent=None):
        self.check_types = check_types
        #: Refuse to execute scripts carrying *definite* static errors
        #: (use-after-consume the analysis proves happens on every
        #: clean run) — the §3.4 safety net applied before any payload
        #: is touched.
        self.preflight = preflight
        #: Ablation knob: disable nested-alias invalidation tracking.
        self.track_invalidation = track_invalidation
        #: Optional :class:`repro.profiling.Profiler` recording
        #: per-transform-op timing and invalidation fan-out.
        self.profiler = profiler
        #: Debugging escape hatch: re-raise exceptions from ``apply``
        #: instead of converting them into definite failures.
        self.strict = strict
        #: Optional :class:`repro.observability.Tracer`: one span per
        #: *top-level* transform op (direct children of the entry
        #: sequence — the ``-mlir-timing`` granularity), linked to the
        #: failure diagnostics via span status/attributes.
        #: ``trace_parent`` (a span, context, or span id) parents the
        #: outermost spans — the worker's "interpret" span when the
        #: interpreter runs inside the compile service.
        self.tracer = tracer
        self.trace_parent = trace_parent
        self._span_stack: List = []
        #: Collects MLIR-style diagnostics for every failure.
        self.diagnostics = diagnostics or DiagnosticEngine()
        self.output: List[str] = []
        self.stats = InterpreterStats()
        #: Enclosing transform ops, outermost first (the op currently
        #: being applied is the last entry). Failures snapshot this as
        #: their backtrace.
        self._stack: List[Operation] = []

    # -- entry points --------------------------------------------------------

    def apply(self, script: Operation, payload: Operation,
              entry_point: Optional[str] = None) -> TransformResult:
        """Run ``script`` (a sequence, named sequence, or a module
        containing one) on ``payload``. Raises
        :class:`TransformInterpreterError` on definite errors; returns
        the final :class:`TransformResult` otherwise.
        """
        if self.preflight:
            self._run_preflight(script)
        start = time.perf_counter()
        state = TransformState(payload)
        entry = self._find_entry(script, entry_point)
        if entry is None:
            result = TransformResult.definite(
                "no transform entry point found in script"
            )
            raise TransformInterpreterError(
                result, self._diagnose(result, Severity.ERROR)
            )
        try:
            if entry.name == "transform.named_sequence":
                body = entry.regions[0].entry_block
                if body.args:
                    state.set_payload(body.args[0], [payload])
                self._stack.append(entry)
                try:
                    result = self.run_block(body, state)
                finally:
                    self._stack.pop()
            else:
                result = self.execute(entry, state)
        finally:
            self.stats.wall_seconds += time.perf_counter() - start
        if result.is_definite:
            raise TransformInterpreterError(
                result, self._diagnose(result, Severity.ERROR)
            )
        if result.is_silenceable:
            self._diagnose(result, Severity.WARNING)
        return result

    def _run_preflight(self, script: Operation) -> None:
        """Static gate: raise before executing anything if the script
        has a *definite* use-after-consume error."""
        from ..analysis.invalidation import ERROR as STATIC_ERROR
        from ..analysis.invalidation import analyze_script

        errors = [
            issue for issue in analyze_script(script, may_alias=False)
            if issue.severity == STATIC_ERROR
        ]
        if not errors:
            return
        result = TransformResult.definite(
            f"preflight: {len(errors)} definite static error(s) in "
            "transform script; refusing to execute", script,
        )
        diagnostic = Diagnostic(Severity.ERROR, result.message,
                                script.location)
        for issue in errors:
            diagnostic.attach_note(str(issue), issue.use_op.location)
            diagnostic.attach_note(
                f"handle consumed here by '{issue.consume_op.name}'",
                issue.consume_op.location,
            )
        self.diagnostics.emit(diagnostic)
        raise TransformInterpreterError(result, diagnostic)

    def _find_entry(self, script: Operation,
                    entry_point: Optional[str]) -> Optional[Operation]:
        if script.name in ("transform.sequence",
                           "transform.named_sequence"):
            return script
        # Only *top-level* ops of the script are entry-point candidates:
        # sequences nested inside named_sequence bodies are helpers the
        # entry invokes (via include), never the entry itself.
        sequences: List[Operation] = []
        named: List[Operation] = []
        for region in script.regions:
            for block in region.blocks:
                for op in block.ops:
                    if op.name == "transform.sequence":
                        sequences.append(op)
                    elif op.name == "transform.named_sequence":
                        named.append(op)
        if entry_point is not None:
            for candidate in named:
                name = candidate.attr("sym_name")
                if name is not None and name.value == entry_point:  # type: ignore[union-attr]
                    return candidate
            return None
        # Unnamed entry: a transform.sequence wins over named sequences
        # (which are macro *definitions*, not entry points).
        if sequences:
            return sequences[0]
        return named[0] if named else None

    # -- diagnostics ---------------------------------------------------------

    def _diagnose(self, result: TransformResult,
                  severity: Severity) -> Diagnostic:
        """Render ``result`` as an MLIR-style diagnostic and record it."""
        diagnostic = Diagnostic(severity, result.message, result.location)
        if result.cause is not None:
            diagnostic.attach_note(
                f"contained Python exception: "
                f"{type(result.cause).__name__}: {result.cause}",
                result.location,
            )
        for payload_op in result.payload_ops:
            diagnostic.attach_note(
                f"on payload op '{payload_op.name}'", payload_op.location
            )
        failing = result.transform_op
        for frame in reversed(result.backtrace):
            if frame is failing:
                continue  # the failure's own location heads the message
            diagnostic.attach_note(
                f"while executing '{frame.name}'", frame.location
            )
        self.diagnostics.emit(diagnostic)
        return diagnostic

    # -- execution ------------------------------------------------------------

    def run_block(self, block: Block,
                  state: TransformState) -> TransformResult:
        """Execute each transform in a block sequentially (paper §3).

        A silenceable error skips the remainder of the block and is
        returned to the parent transform for handling.
        """
        for op in list(block.ops):
            if op.name == "transform.yield":
                break
            result = self.execute(op, state)
            if not result.succeeded:
                return result
        return TransformResult.success()

    def execute(self, op: Operation,
                state: TransformState) -> TransformResult:
        from .dialect import TransformOp

        if not isinstance(op, TransformOp):
            result = TransformResult.definite(
                f"'{op.name}' is not a transform operation", op
            )
            result.backtrace = [*self._stack, op]
            return result
        if self.check_types:
            type_error = self._check_operand_types(op, state)
            if type_error is not None:
                type_error.backtrace = [*self._stack, op]
                return type_error
        # One span per top-level transform op (the entry itself and
        # the direct children of the entry sequence); nested ops are
        # timing detail the profiler already attributes.
        span = None
        if self.tracer is not None and len(self._stack) <= 1:
            span = self.tracer.start_span(
                op.name,
                parent=(self._span_stack[-1] if self._span_stack
                        else self.trace_parent),
                attributes={"loc": str(op.location)},
            )
            self._span_stack.append(span)
        self._stack.append(op)
        start = time.perf_counter() if self.profiler is not None else 0.0
        result: Optional[TransformResult] = None
        try:
            result = op.apply(self, state)
        except HandleInvalidatedError as error:
            result = TransformResult.definite(str(error), op)
        except TransformInterpreterError:
            # A nested interpreter invocation already diagnosed and
            # raised; never double-wrap its failure.
            raise
        except Exception as error:  # the exception barrier
            if self.strict:
                raise
            self.stats.exceptions_contained += 1
            result = TransformResult.definite(
                f"uncaught {type(error).__name__} in '{op.name}': {error}",
                op, cause=error,
            )
        finally:
            self._stack.pop()
            if self.profiler is not None:
                self.profiler.record_transform(
                    op.name, time.perf_counter() - start
                )
            if span is not None:
                self._span_stack.pop()
                # `result` is still None when an exception propagates
                # (strict mode, nested interpreter error): the span
                # still ends, flagged as an error.
                if result is None:
                    status = "error"
                elif result.succeeded:
                    status = "ok"
                else:
                    # Link the span to the diagnostic stream: the
                    # failure kind is the status, the message is the
                    # diagnostic text the engine renders.
                    status = ("silenceable" if result.is_silenceable
                              else "definite")
                    span.attributes["message"] = result.message
                self.tracer.end_span(span, status)
        if not result.succeeded and not result.backtrace:
            # First observation of this failure: snapshot the enclosing
            # transform chain (innermost handler fires first, so the
            # stack is still complete).
            result.backtrace = [*self._stack, op]
        if result.succeeded:
            # Stats count successful applications only: a failed apply
            # executed nothing and mapped no result handles.
            self.stats.transforms_executed += 1
            self.stats.handles_created += len(op.results)
            self._process_consumption(op, state)
        return result

    def _process_consumption(self, op: Operation,
                             state: TransformState) -> None:
        """Invalidate handles consumed by ``op`` (and their aliases)."""
        consumed = getattr(type(op), "CONSUMES", ())
        if not self.track_invalidation:
            return
        for index in consumed:
            if index < op.num_operands:
                count = state.invalidate(
                    op.operand(index), f"'{op.name}' consuming its operand"
                )
                # The real invalidation count: the operand handle plus
                # every alias, not 1 per consumed operand.
                self.stats.handles_invalidated += count
                if self.profiler is not None:
                    self.profiler.record_invalidation(count)

    def _check_operand_types(self, op: Operation,
                             state: TransformState) -> Optional[TransformResult]:
        """Handle-type checking: payload op names must satisfy the
        operand's handle type (the Fig. 1 RHS static typing, enforced
        dynamically here and statically by the checker)."""
        from .types import OperationHandleType

        for operand in op.operands:
            operand_type = operand.type
            if not isinstance(operand_type, OperationHandleType):
                continue
            if state.is_invalidated(operand):
                continue  # invalidation reported separately on access
            try:
                payload = state.get_payload(operand)
            except HandleInvalidatedError:
                continue
            for payload_op in payload:
                if not operand_type.accepts_op_name(payload_op.name):
                    return TransformResult.definite(
                        f"payload op '{payload_op.name}' does not satisfy "
                        f"handle type {operand_type}",
                        op,
                    )
        return None


def apply_transform_script(script: Operation, payload: Operation,
                           entry_point: Optional[str] = None,
                           **interpreter_options) -> TransformResult:
    """Convenience one-shot: interpret ``script`` against ``payload``."""
    interpreter = TransformInterpreter(**interpreter_options)
    return interpreter.apply(script, payload, entry_point)
