"""Transform error model: silenceable vs. definite failures (paper §3).

A transform may signal a *silenceable* error (a failed precondition; the
payload has not been modified irreversibly — recoverable by
``transform.alternatives``) or a *definite* error (immediately aborts
interpretation). :class:`TransformResult` mirrors MLIR's
``DiagnosedSilenceableFailure``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.core import Operation


class FailureKind(enum.Enum):
    SUCCESS = "success"
    SILENCEABLE = "silenceable"
    DEFINITE = "definite"


@dataclass
class TransformResult:
    """Outcome of applying one transform operation."""

    kind: FailureKind
    message: str = ""
    #: The transform op that produced the failure (for diagnostics).
    transform_op: Optional[Operation] = None
    #: Payload ops involved in the failure, if any.
    payload_ops: List[Operation] = field(default_factory=list)

    @staticmethod
    def success() -> "TransformResult":
        return TransformResult(FailureKind.SUCCESS)

    @staticmethod
    def silenceable(message: str,
                    transform_op: Optional[Operation] = None,
                    payload_ops: Optional[List[Operation]] = None
                    ) -> "TransformResult":
        return TransformResult(
            FailureKind.SILENCEABLE, message, transform_op,
            payload_ops or [],
        )

    @staticmethod
    def definite(message: str,
                 transform_op: Optional[Operation] = None
                 ) -> "TransformResult":
        return TransformResult(FailureKind.DEFINITE, message, transform_op)

    @property
    def succeeded(self) -> bool:
        return self.kind is FailureKind.SUCCESS

    @property
    def is_silenceable(self) -> bool:
        return self.kind is FailureKind.SILENCEABLE

    @property
    def is_definite(self) -> bool:
        return self.kind is FailureKind.DEFINITE

    def __str__(self) -> str:
        if self.succeeded:
            return "success"
        origin = (
            f" (at '{self.transform_op.name}')"
            if self.transform_op is not None
            else ""
        )
        return f"{self.kind.value} error: {self.message}{origin}"


class TransformInterpreterError(Exception):
    """Raised when interpretation aborts with a definite error."""

    def __init__(self, result: TransformResult):
        super().__init__(str(result))
        self.result = result
