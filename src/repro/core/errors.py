"""Transform error model: silenceable vs. definite failures (paper §3).

A transform may signal a *silenceable* error (a failed precondition; the
payload has not been modified irreversibly — recoverable by
``transform.alternatives``) or a *definite* error (immediately aborts
interpretation). :class:`TransformResult` mirrors MLIR's
``DiagnosedSilenceableFailure``.

Failures carry the failing transform op's :class:`Location` and, once
observed by the interpreter, a *transform-stack backtrace*: the chain of
enclosing sequence/alternatives/foreach ops active when the failure was
produced. Python exceptions escaping a transform's ``apply`` are
converted into definite failures at the interpreter's exception barrier
and keep the original exception in :attr:`TransformResult.cause`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..ir.core import Operation
from ..ir.location import Location, UNKNOWN_LOC, UnknownLoc


class FailureKind(enum.Enum):
    SUCCESS = "success"
    SILENCEABLE = "silenceable"
    DEFINITE = "definite"


def _location_of(op: Optional[Operation]) -> Location:
    if op is not None and op.location is not None:
        return op.location
    return UNKNOWN_LOC


@dataclass
class TransformResult:
    """Outcome of applying one transform operation."""

    kind: FailureKind
    message: str = ""
    #: The transform op that produced the failure (for diagnostics).
    transform_op: Optional[Operation] = None
    #: Payload ops involved in the failure, if any.
    payload_ops: List[Operation] = field(default_factory=list)
    #: Location of the failing transform op (clickable diagnostics).
    location: Location = UNKNOWN_LOC
    #: Enclosing transform ops (outermost first) at the failure point;
    #: filled in by the interpreter when the failure is first observed.
    backtrace: List[Operation] = field(default_factory=list)
    #: Original Python exception for failures produced by the
    #: interpreter's exception barrier (None for ordinary failures).
    cause: Optional[BaseException] = None

    @staticmethod
    def success() -> "TransformResult":
        return TransformResult(FailureKind.SUCCESS)

    @staticmethod
    def silenceable(message: str,
                    transform_op: Optional[Operation] = None,
                    payload_ops: Optional[List[Operation]] = None
                    ) -> "TransformResult":
        return TransformResult(
            FailureKind.SILENCEABLE, message, transform_op,
            payload_ops or [], _location_of(transform_op),
        )

    @staticmethod
    def definite(message: str,
                 transform_op: Optional[Operation] = None,
                 cause: Optional[BaseException] = None
                 ) -> "TransformResult":
        return TransformResult(
            FailureKind.DEFINITE, message, transform_op, [],
            _location_of(transform_op), cause=cause,
        )

    @property
    def succeeded(self) -> bool:
        return self.kind is FailureKind.SUCCESS

    @property
    def is_silenceable(self) -> bool:
        return self.kind is FailureKind.SILENCEABLE

    @property
    def is_definite(self) -> bool:
        return self.kind is FailureKind.DEFINITE

    def backtrace_lines(self) -> List[str]:
        """Human-readable backtrace, innermost frame first."""
        lines = []
        for frame in reversed(self.backtrace):
            lines.append(f"while executing '{frame.name}' at {frame.location}")
        return lines

    def __str__(self) -> str:
        if self.succeeded:
            return "success"
        origin = (
            f" (at '{self.transform_op.name}')"
            if self.transform_op is not None
            else ""
        )
        where = ""
        if not isinstance(self.location, UnknownLoc):
            where = f" {self.location}"
        return f"{self.kind.value} error: {self.message}{origin}{where}"


class TransformInterpreterError(Exception):
    """Raised when interpretation aborts with a definite error.

    ``diagnostic`` (when present) is the MLIR-style rendering produced
    by the interpreter's :class:`~repro.ir.diagnostics.DiagnosticEngine`
    routing — ``error: ... note: while executing ...`` with locations.
    """

    def __init__(self, result: TransformResult, diagnostic=None):
        self.result = result
        self.diagnostic = diagnostic
        if diagnostic is not None:
            message = str(diagnostic)
        else:
            message = str(result)
            trace = result.backtrace_lines()
            if trace:
                message += "\n" + "\n".join(f"  note: {t}" for t in trace)
        super().__init__(message)
