"""Pre-/post-condition specs for transforms (paper §3.3).

A *spec* names a set of payload operations:

* an exact op name: ``"scf.for"``;
* a dialect wildcard: ``"scf.*"``;
* an IRDL-constrained pseudo-op: ``"memref.subview.constr"`` (Fig. 3) —
  matches ``memref.subview`` ops satisfying the registered IRDL
  constraints;
* the alias ``"cast"`` for ``builtin.unrealized_conversion_cast``.

Conditions of lowering passes live on the pass classes
(``PRECONDITIONS`` / ``POSTCONDITIONS``); :func:`conditions_of` resolves
them for a transform operation so the static checker (§4.2) and the
dynamic checker can consume one uniform representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set

from ..ir.core import Operation

CAST_ALIAS = "cast"
CAST_OP = "builtin.unrealized_conversion_cast"


def normalize_spec(spec: str) -> str:
    return CAST_OP if spec == CAST_ALIAS else spec


def spec_dialect(spec: str) -> str:
    return spec.split(".", 1)[0]


def spec_matches_name(spec: str, op_name: str) -> bool:
    """Does ``spec`` cover the payload op named ``op_name``?

    Constrained specs (``x.constr``) match their base op name; whether
    the *constraints* hold is a dynamic question (see
    :mod:`repro.core.dynamic_checks`).
    """
    spec = normalize_spec(spec)
    op_name = normalize_spec(op_name)
    if spec.endswith(".*"):
        return op_name.startswith(spec[:-1])
    if spec.endswith(".constr"):
        return op_name == spec[: -len(".constr")] or op_name == spec
    return spec == op_name


def spec_subsumes(consumer: str, produced: str) -> bool:
    """Does the ``consumer`` spec cover everything ``produced`` names?

    Used by the abstract pipeline interpretation: a produced spec is
    *removed* by a pass whose precondition subsumes it.
    """
    consumer = normalize_spec(consumer)
    produced = normalize_spec(produced)
    if consumer == produced:
        return True
    if consumer.endswith(".*"):
        return produced.startswith(consumer[:-1]) or (
            spec_dialect(produced) == spec_dialect(consumer)
        )
    if produced.endswith(".constr"):
        return consumer == produced[: -len(".constr")]
    return False


@dataclass(frozen=True)
class TransformConditions:
    """Resolved pre-/post-conditions of one transform."""

    name: str
    preconditions: FrozenSet[str]
    postconditions: FrozenSet[str]

    def removes(self, present: Set[str]) -> Set[str]:
        """Specs of ``present`` that this transform consumes/removes."""
        return {
            spec
            for spec in present
            if any(spec_subsumes(pre, spec) for pre in self.preconditions)
        }


def conditions_of(transform_op: Operation) -> Optional[TransformConditions]:
    """Resolve the conditions a transform op declares.

    ``transform.apply_registered_pass`` pulls conditions from the pass
    class; other transform ops use their own class-level declarations.
    Returns None when the op declares nothing (treated as unknown).
    """
    if transform_op.name == "transform.apply_registered_pass":
        from ..passes.manager import PASS_REGISTRY

        pass_name_attr = transform_op.attr("pass_name")
        pass_name = getattr(pass_name_attr, "value", "")
        cls = PASS_REGISTRY.get(pass_name)
        if cls is None:
            return None
        pre = getattr(cls, "PRECONDITIONS", None)
        post = getattr(cls, "POSTCONDITIONS", None)
        if pre is None and post is None:
            return None
        return TransformConditions(
            pass_name,
            frozenset(normalize_spec(s) for s in (pre or ())),
            frozenset(normalize_spec(s) for s in (post or ())),
        )
    pre = getattr(type(transform_op), "PRECONDITIONS", None)
    post = getattr(type(transform_op), "POSTCONDITIONS", None)
    if not pre and not post:
        return None
    return TransformConditions(
        transform_op.name,
        frozenset(normalize_spec(s) for s in (pre or ())),
        frozenset(normalize_spec(s) for s in (post or ())),
    )


def pass_conditions(pass_name: str) -> Optional[TransformConditions]:
    """Conditions of a registered pass, by name."""
    from ..passes.manager import PASS_REGISTRY

    cls = PASS_REGISTRY.get(pass_name)
    if cls is None:
        return None
    pre = getattr(cls, "PRECONDITIONS", None)
    post = getattr(cls, "POSTCONDITIONS", None)
    if pre is None and post is None:
        return None
    return TransformConditions(
        pass_name,
        frozenset(normalize_spec(s) for s in (pre or ())),
        frozenset(normalize_spec(s) for s in (post or ())),
    )


def payload_op_specs(payload: Operation) -> Set[str]:
    """The op-name set of a payload module (the initial abstract state)."""
    return {op.name for op in payload.walk() if op is not payload}
