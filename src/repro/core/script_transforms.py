"""Transformations *of* transform scripts (paper §3.4).

Because Transform IR is ordinary compiler IR, it can itself be
transformed:

* :func:`expand_includes` — macro expansion of ``transform.include``
  via the ordinary inlining machinery (recursion is rejected by call
  graph cycle detection);
* :func:`simplify_script` — peephole simplification: ``unroll by 1``
  and ``tile by 0`` are no-ops, dead navigation transforms are erased,
  duplicate ``param.constant`` ops are deduplicated;
* :func:`infer_ad_dialects` — the Fig. 5 introspection: walk the script
  to determine at which abstraction level (stablehlo / arith / llvm) an
  ``autodiff`` transform sits, and configure the kind of "add" it emits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.attributes import StringAttr, SymbolRefAttr, unwrap
from ..ir.builder import Builder
from ..ir.core import Operation, Value


class ScriptTransformError(Exception):
    pass


# ---------------------------------------------------------------------------
# Include expansion (macros -> inline bodies)
# ---------------------------------------------------------------------------


def _named_sequences(script: Operation) -> Dict[str, Operation]:
    out: Dict[str, Operation] = {}
    for op in script.walk():
        if op.name == "transform.named_sequence":
            name = op.attr("sym_name")
            if isinstance(name, StringAttr):
                out[name.value] = op
    return out


def _include_graph_has_cycle(script: Operation) -> bool:
    sequences = _named_sequences(script)
    edges: Dict[str, Set[str]] = {name: set() for name in sequences}
    for name, sequence in sequences.items():
        for include in sequence.walk_ops("transform.include"):
            target = include.attr("target")
            if isinstance(target, SymbolRefAttr):
                edges[name].add(target.name)

    visiting: Set[str] = set()
    done: Set[str] = set()

    def visit(node: str) -> bool:
        if node in done:
            return False
        if node in visiting:
            return True
        visiting.add(node)
        for succ in edges.get(node, ()):
            if visit(succ):
                return True
        visiting.discard(node)
        done.add(node)
        return False

    return any(visit(node) for node in list(edges))


def expand_includes(script: Operation, max_rounds: int = 32) -> int:
    """Inline every ``transform.include``; returns the expansion count.

    Macros don't support recursion (§3.4) — verified by checking the
    include call graph for cycles before inlining.
    """
    if _include_graph_has_cycle(script):
        raise ScriptTransformError(
            "recursive transform.include graph; macros must be acyclic"
        )
    total = 0
    for _ in range(max_rounds):
        sequences = _named_sequences(script)
        includes = [
            op for op in script.walk_ops("transform.include")
            if op.parent is not None
        ]
        if not includes:
            return total
        for include in includes:
            target = include.attr("target")
            callee = (
                sequences.get(target.name)
                if isinstance(target, SymbolRefAttr)
                else None
            )
            if callee is None:
                raise ScriptTransformError(
                    f"include of unknown sequence {target}"
                )
            _inline_include(include, callee)
            total += 1
    raise ScriptTransformError("include expansion did not converge")


def _inline_include(include: Operation, callee: Operation) -> None:
    body = callee.regions[0].entry_block
    if len(body.args) != include.num_operands:
        raise ScriptTransformError(
            "include argument count does not match the named sequence"
        )
    value_map: Dict[Value, Value] = dict(
        zip(body.args, include.operands)
    )
    builder = Builder.before(include)
    yielded: List[Value] = []
    for op in body.ops:
        if op.name == "transform.yield":
            yielded = [value_map.get(v, v) for v in op.operands]
            continue
        builder.insert(op.clone(value_map))
    include.replace_all_uses_with(yielded)
    include.erase()


# ---------------------------------------------------------------------------
# Simplification / constant propagation
# ---------------------------------------------------------------------------

#: Navigation-like transforms that are pure wrt the payload: erasable
#: when their results are unused.
_PURE_NAVIGATION = {
    "transform.match_op",
    "transform.get_parent_op",
    "transform.merge_handles",
    "transform.cast",
    "transform.param.constant",
    "transform.num_payload_ops",
}


def simplify_script(script: Operation) -> int:
    """Peephole-simplify a transform script; returns rewrites applied.

    Rules (paper §3.4): unrolling by 1 and tiling by 0 are no-ops;
    unused navigation transforms are dead; identical ``param.constant``
    ops are shared. Running these *before* interpretation saves the
    compile time of applying no-op transforms to the payload.
    """
    rewrites = 0
    changed = True
    while changed:
        changed = False
        for op in list(script.walk()):
            if op.parent is None:
                continue
            if _simplify_one(op):
                rewrites += 1
                changed = True
        rewrites += _dedupe_params(script)
    return rewrites


def _static_sizes(op: Operation, attr_name: str) -> Optional[List[int]]:
    attr = op.attr(attr_name)
    if attr is None:
        return None
    values = unwrap(attr)
    if isinstance(values, int):
        return [values]
    if isinstance(values, list) and all(isinstance(v, int) for v in values):
        return values
    return None


def _simplify_one(op: Operation) -> bool:
    if op.name == "transform.loop.unroll":
        factors = _static_sizes(op, "factor")
        if factors == [1] and op.attr("full") is None:
            op.erase()
            return True
    if op.name == "transform.loop.tile":
        sizes = _static_sizes(op, "tile_sizes")
        if sizes is not None and all(s == 0 for s in sizes):
            # Tiling everything by 0 leaves the loop untouched: both
            # result bands are the original loop.
            op.replace_all_uses_with([op.operand(0)] * len(op.results))
            op.erase()
            return True
    if op.name in _PURE_NAVIGATION:
        if op.results and not any(r.has_uses() for r in op.results):
            op.erase()
            return True
    if op.name == "transform.apply_patterns":
        names = op.pattern_names()  # type: ignore[attr-defined]
        if not names:
            op.erase()
            return True
    if op.name == "transform.alternatives":
        if all(region.is_empty for region in op.regions):
            op.erase()
            return True
    return False


def _dedupe_params(script: Operation) -> int:
    removed = 0
    for sequence in script.walk():
        if sequence.name not in ("transform.sequence",
                                 "transform.named_sequence"):
            continue
        if not sequence.regions or not sequence.regions[0].blocks:
            continue
        seen: Dict[object, Operation] = {}
        for op in list(sequence.regions[0].entry_block.ops):
            if op.name != "transform.param.constant" or op.parent is None:
                continue
            value = op.attr("value")
            key = str(value)
            existing = seen.get(key)
            if existing is None:
                seen[key] = op
            else:
                op.replace_all_uses_with(list(existing.results))
                op.erase()
                removed += 1
    return removed


# ---------------------------------------------------------------------------
# AD introspection (Fig. 5)
# ---------------------------------------------------------------------------

#: Pass names that move the payload to a lower abstraction level.
_LEVEL_TRANSITIONS = {
    "convert-stablehlo-to-arith": "arith",
    "convert-arith-to-llvm": "llvm",
}


def infer_ad_dialects(script: Operation,
                      initial_level: str = "stablehlo") -> int:
    """Set ``add_dialect`` on every ``transform.autodiff`` op by
    introspecting its position in the script (Fig. 5).

    Walks each sequence body in order, tracking the abstraction level
    implied by the lowering passes seen so far; an ``autodiff`` op
    scheduled between ``convert-stablehlo-to-arith`` and
    ``convert-arith-to-llvm`` must emit ``arith.addf``, and so on.
    Returns the number of autodiff ops configured.
    """
    configured = 0
    for sequence in script.walk():
        if sequence.name not in ("transform.sequence",
                                 "transform.named_sequence"):
            continue
        if not sequence.regions or not sequence.regions[0].blocks:
            continue
        level = initial_level
        for op in sequence.regions[0].entry_block.ops:
            if op.name == "transform.apply_registered_pass":
                pass_name = op.attr("pass_name")
                if isinstance(pass_name, StringAttr):
                    level = _LEVEL_TRANSITIONS.get(pass_name.value, level)
            elif op.name == "transform.autodiff":
                if op.attr("add_dialect") is None:
                    op.set_attr("add_dialect", level)
                    configured += 1
    return configured
