"""A distributable library of composed transform schedules (§3.2).

The paper: since transforms are mere operations, compositions can be
organized into macros and "distributed, potentially separately from the
compiler". This module ships such a library as *transform IR text* —
named sequences a user script can ``transform.include`` after linking
the library into it — plus the loader/linker.

Shipped schedules:

* ``@tile_and_unroll_remainder(%loop)`` — the Fig. 1/8 core composition:
  split by 32, tile the divisible part 32x32, fully unroll the rest;
* ``@offload_to_microkernel(%loop)`` — split/tile then try a libxsmm
  substitution inside ``alternatives`` (empty fallback);
* ``@lower_to_llvm(%module)`` — the fixed case-study-2 lowering pipeline
  as a reusable macro.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.core import Operation
from ..ir.parser import parse
from .script_transforms import ScriptTransformError, _named_sequences

#: The library, distributed as transform IR text (parsed on load).
SCHEDULE_LIBRARY_IR = '''
"builtin.module"() ({
  "transform.named_sequence"() ({
  ^bb0(%loop: !transform.any_op):
    %main, %rest = "transform.loop.split"(%loop) {div_by = 32 : i64} \
: (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    %outer, %inner = "transform.loop.tile"(%main) \
{tile_sizes = [32 : i64, 32 : i64]} \
: (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    "transform.loop.unroll"(%rest) {full = unit} : (!transform.any_op) -> ()
    "transform.yield"(%inner) : (!transform.any_op) -> ()
  }) {sym_name = "tile_and_unroll_remainder"} : () -> ()
  "transform.named_sequence"() ({
  ^bb0(%loop: !transform.any_op):
    %main, %rest = "transform.loop.split"(%loop) {div_by = 32 : i64} \
: (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    %outer, %inner = "transform.loop.tile"(%main) \
{tile_sizes = [32 : i64, 32 : i64]} \
: (!transform.any_op) -> (!transform.any_op, !transform.any_op)
    "transform.alternatives"(%inner) ({
      "transform.to_library"(%inner) {library = "libxsmm"} \
: (!transform.any_op) -> ()
      "transform.yield"() : () -> ()
    }, {
    }) : (!transform.any_op) -> ()
    "transform.loop.unroll"(%rest) {full = unit} : (!transform.any_op) -> ()
    "transform.yield"() : () -> ()
  }) {sym_name = "offload_to_microkernel"} : () -> ()
  "transform.named_sequence"() ({
  ^bb0(%module: !transform.any_op):
    %0 = "transform.apply_registered_pass"(%module) \
{pass_name = "convert-scf-to-cf"} : (!transform.any_op) -> !transform.any_op
    %1 = "transform.apply_registered_pass"(%0) \
{pass_name = "convert-arith-to-llvm"} : (!transform.any_op) -> !transform.any_op
    %2 = "transform.apply_registered_pass"(%1) \
{pass_name = "convert-cf-to-llvm"} : (!transform.any_op) -> !transform.any_op
    %3 = "transform.apply_registered_pass"(%2) \
{pass_name = "convert-func-to-llvm"} : (!transform.any_op) -> !transform.any_op
    %4 = "transform.apply_registered_pass"(%3) \
{pass_name = "expand-strided-metadata"} : (!transform.any_op) -> !transform.any_op
    %5 = "transform.apply_registered_pass"(%4) \
{pass_name = "lower-affine"} : (!transform.any_op) -> !transform.any_op
    %6 = "transform.apply_registered_pass"(%5) \
{pass_name = "convert-arith-to-llvm"} : (!transform.any_op) -> !transform.any_op
    %7 = "transform.apply_registered_pass"(%6) \
{pass_name = "finalize-memref-to-llvm"} : (!transform.any_op) -> !transform.any_op
    %8 = "transform.apply_registered_pass"(%7) \
{pass_name = "reconcile-unrealized-casts"} : (!transform.any_op) -> !transform.any_op
    "transform.yield"(%8) : (!transform.any_op) -> ()
  }) {sym_name = "lower_to_llvm"} : () -> ()
}) : () -> ()
'''


def load_schedule_library() -> Operation:
    """Parse the shipped schedule library into a module of macros."""
    return parse(SCHEDULE_LIBRARY_IR, "<schedule-library>")


def library_schedules(library: Optional[Operation] = None) -> List[str]:
    """Names of the named sequences a library provides."""
    if library is None:
        library = load_schedule_library()
    return sorted(_named_sequences(library))


def link_schedule_library(script: Operation,
                          library: Optional[Operation] = None) -> int:
    """Copy the library's named sequences into ``script``'s module so
    its ``transform.include`` ops can resolve them.

    Sequences whose names are already defined in the script are skipped
    (user definitions shadow the library). Returns the number linked.
    """
    if library is None:
        library = load_schedule_library()
    if not script.regions or not script.regions[0].blocks:
        raise ScriptTransformError(
            "script has no body block to link into"
        )
    existing = set(_named_sequences(script))
    linked = 0
    block = script.regions[0].entry_block
    for name, sequence in _named_sequences(library).items():
        if name in existing:
            continue
        block.insert(linked, sequence.clone())
        linked += 1
    return linked
