"""The Transform dialect: the paper's primary contribution.

Public surface:

* :mod:`repro.core.dialect` — transform operations and script builders;
* :class:`TransformInterpreter` — executes scripts against payload IR;
* :class:`TransformState` — handle/payload mapping with invalidation;
* :func:`check_pipeline` / :func:`check_transform_script` — static
  pre-/post-condition checking (§3.3);
* :func:`analyze_invalidation` — static use-after-consume analysis (§3.4);
* :func:`expand_includes` / :func:`simplify_script` /
  :func:`infer_ad_dialects` — transformations of transform IR (§3.4);
* :func:`pipeline_to_transform_script` — pass pipeline conversion (§4.1);
* :class:`DynamicConditionChecker` — IRDL-backed dynamic checks (§3.3).
"""

from . import dialect  # noqa: F401 — registers the transform ops
from .conditions import (
    TransformConditions,
    conditions_of,
    pass_conditions,
    payload_op_specs,
    spec_matches_name,
    spec_subsumes,
)
from .dialect import (
    LIBRARY_REGISTRY,
    TRANSFORM_PATTERN_REGISTRY,
    TransformOp,
    register_transform_pattern,
)
from .dynamic_checks import ConditionViolation, DynamicConditionChecker
from .errors import (
    FailureKind,
    TransformInterpreterError,
    TransformResult,
)
from .interpreter import (
    InterpreterStats,
    TransformInterpreter,
    apply_transform_script,
)
from .invalidation import (
    InvalidationIssue,
    analyze_invalidation,
    verify_script,
)
from .pass_to_transform import (
    pipeline_to_transform_script,
    transform_script_to_pipeline,
)
from .script_transforms import (
    ScriptTransformError,
    expand_includes,
    infer_ad_dialects,
    simplify_script,
)
from .state import HandleInvalidatedError, StateSnapshot, TransformState
from .transaction import PayloadTransaction, TransactionError
from .static_checker import (
    IssueKind,
    PipelineBranch,
    PipelineIssue,
    PipelineReport,
    check_pipeline,
    check_transform_script,
    extract_pipeline_from_script,
    extract_pipeline_tree,
    flatten_pipeline,
)
from .types import (
    ANY_OP,
    AnyOpType,
    OperationHandleType,
    PARAM_I64,
    ParamType,
    TransformHandleType,
)

__all__ = [name for name in dir() if not name.startswith("_")]
