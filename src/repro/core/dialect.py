"""The Transform dialect: operations controlling compiler transformations.

Transform scripts are ordinary IR: each *transform* is an operation
whose SSA results are *handles* to payload operations (or parameters).
Every transform op implements ``apply(interpreter, state)`` returning a
:class:`~repro.core.errors.TransformResult`, and declares:

* ``CONSUMES``: operand indices whose handles it invalidates (§3.1);
* ``PRECONDITIONS`` / ``POSTCONDITIONS``: payload op specs it expects /
  introduces, for the static pipeline checker (§3.3).

Builder helpers at module level make scripts read close to the paper::

    script, root = transform.sequence()
    loop = transform.match_op(b, root, "scf.for", position="first")
    main, rest = transform.loop_split(b, loop, 32)
    outer, inner = transform.loop_tile(b, main, [32, 32])
    transform.loop_unroll(b, rest, full=True)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..ir.attributes import (
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    UnitAttr,
    unwrap,
)
from ..ir.builder import Builder
from ..ir.core import (
    Block,
    IsTerminator,
    IsolatedFromAbove,
    Operation,
    SingleBlock,
    SymbolTrait,
    Value,
    register_op,
)
from ..rewrite.pattern import RewritePattern
from ..transforms.loop import (
    LoopTransformError,
    hoist_loop_invariants_to,
    interchange_loops,
    peel_loop,
    split_loop,
    tile_loop,
    tile_loop_nest,
    unroll_loop,
)
from ..transforms.linalg_utils import generalize_named_op, lower_linalg_to_loops
from ..transforms.microkernel import (
    MicrokernelLibrary,
    XSMM_LIBRARY,
    replace_with_library_call,
)
from .errors import TransformResult
from .state import TransformState
from .types import ANY_OP, OperationHandleType, PARAM_I64, ParamType

# ---------------------------------------------------------------------------
# Base class and registries
# ---------------------------------------------------------------------------

#: Named rewrite patterns usable inside ``transform.apply_patterns``
#: (populated by repro.enzyme and others).
TRANSFORM_PATTERN_REGISTRY: Dict[str, Callable[[], RewritePattern]] = {}


def register_transform_pattern(
    name: str, factory: Callable[[], RewritePattern]
) -> None:
    """Expose a rewrite pattern as ``transform.pattern.<name>``."""
    TRANSFORM_PATTERN_REGISTRY[name] = factory


#: Microkernel libraries addressable from ``transform.to_library``.
LIBRARY_REGISTRY: Dict[str, MicrokernelLibrary] = {"libxsmm": XSMM_LIBRARY}


class TransformOp(Operation):
    """Base class of all transform operations."""

    #: Operand indices whose handles this transform consumes/invalidates.
    CONSUMES: Tuple[int, ...] = ()
    #: Payload op specs expected (and removed) / introduced, when known.
    PRECONDITIONS: frozenset = frozenset()
    POSTCONDITIONS: frozenset = frozenset()

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        raise NotImplementedError(f"{self.name} has no interpreter rule")

    # -- helpers shared by transform ops -----------------------------------

    def _str_attr(self, name: str, default: str = "") -> str:
        attr = self.attr(name)
        if isinstance(attr, StringAttr):
            return attr.value
        return default

    def _int_attr(self, name: str, default: int = 0) -> int:
        attr = self.attr(name)
        if isinstance(attr, IntegerAttr):
            return attr.value
        return default

    def _int_list_attr(self, name: str) -> Optional[List[int]]:
        attr = self.attr(name)
        if attr is None:
            return None
        values = unwrap(attr)
        if isinstance(values, list):
            return [int(v) for v in values]
        return [int(values)]

    def silenceable(self, message: str, payload=None) -> TransformResult:
        return TransformResult.silenceable(message, self, payload or [])

    def definite(self, message: str) -> TransformResult:
        return TransformResult.definite(message, self)


# ---------------------------------------------------------------------------
# Structural ops: sequence, named_sequence, include, yield, foreach,
# alternatives
# ---------------------------------------------------------------------------


@register_op
class SequenceOp(TransformOp):
    """Top-level entry point; its block argument is the payload root.

    The ``failures`` attribute selects the propagation mode (as in
    MLIR): ``"propagate"`` (default) forwards silenceable errors to the
    caller; ``"suppress"`` swallows them — compilation proceeds with
    whatever the successful prefix achieved.
    """

    NAME = "transform.sequence"
    TRAITS = frozenset({SingleBlock})

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    @property
    def failure_mode(self) -> str:
        return self._str_attr("failures", "propagate")

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        state.set_payload(self.body.args[0], [state.payload_root])
        result = interpreter.run_block(self.body, state)
        if result.is_silenceable and self.failure_mode == "suppress":
            return TransformResult.success()
        return result


@register_op
class NamedSequenceOp(TransformOp):
    """A reusable macro (§3.2); expanded by ``include`` or the inliner."""

    NAME = "transform.named_sequence"
    TRAITS = frozenset({SymbolTrait, SingleBlock, IsolatedFromAbove})

    @property
    def sym_name(self) -> str:
        return self._str_attr("sym_name")

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        # Named sequences are only executed via include (or as the main
        # entry point); encountering one inline is a no-op declaration.
        return TransformResult.success()


@register_op
class YieldOp(TransformOp):
    NAME = "transform.yield"
    TRAITS = frozenset({IsTerminator})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        return TransformResult.success()


@register_op
class IncludeOp(TransformOp):
    """Macro expansion: run a named sequence with bound arguments."""

    NAME = "transform.include"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        from ..ir.context import lookup_symbol

        target_attr = self.attr("target")
        if not isinstance(target_attr, SymbolRefAttr):
            return self.definite("include requires a 'target' symbol")
        callee = lookup_symbol(self, target_attr.name)
        if callee is None or callee.name != "transform.named_sequence":
            return self.definite(
                f"no named sequence named @{target_attr.name}"
            )
        body = callee.body  # type: ignore[attr-defined]
        if len(body.args) != self.num_operands:
            return self.definite("include argument count mismatch")
        for formal, actual in zip(body.args, self.operands):
            if isinstance(formal.type, ParamType):
                state.set_param(formal, state.get_param(actual))
            else:
                state.set_payload(formal, state.get_payload(actual))
        result = interpreter.run_block(body, state)
        if not result.succeeded:
            return result
        terminator = body.terminator
        if terminator is not None:
            for yielded, out in zip(terminator.operands, self.results):
                if isinstance(out.type, ParamType):
                    state.set_param(out, state.get_param(yielded))
                else:
                    state.set_payload(out, state.get_payload(yielded))
        return TransformResult.success()


@register_op
class ForeachOp(TransformOp):
    """Run the body once per payload op of the operand handle.

    Handles yielded by the body are gathered across iterations: the
    op's i-th result maps to the concatenation of the i-th yielded
    handle's payload from every iteration (as in MLIR's foreach).
    """

    NAME = "transform.foreach"
    TRAITS = frozenset({SingleBlock})

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        payload = state.get_payload(self.operand(0))
        gathered: List[List[Operation]] = [[] for _ in self.results]
        for payload_op in payload:
            state.set_payload(self.body.args[0], [payload_op])
            result = interpreter.run_block(self.body, state)
            if not result.succeeded:
                return result
            terminator = self.body.terminator
            if terminator is not None and self.results:
                if len(terminator.operands) != len(self.results):
                    return self.definite(
                        "foreach yield arity does not match results"
                    )
                for bucket, yielded in zip(gathered,
                                           terminator.operands):
                    bucket.extend(state.get_payload(yielded))
        for result_value, bucket in zip(self.results, gathered):
            state.set_payload(result_value, bucket)
        return TransformResult.success()


@register_op
class AlternativesOp(TransformOp):
    """Try each region in turn; silenceable failures select the next one.

    Each attempt runs inside a :class:`~repro.core.transaction.
    PayloadTransaction` over the scope (the single payload op of the
    optional operand handle, else the payload root): a silenceable
    failure rolls payload IR *and* handle state back to the
    pre-alternatives checkpoint before the next region runs (§3.4,
    Fig. 8). On success the op's results are mapped from the winning
    region's ``transform.yield`` operands.

    An empty region is an always-succeeding no-op alternative — the
    "leave the code unchanged" fallback of Fig. 8.
    """

    NAME = "transform.alternatives"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        from .transaction import PayloadTransaction

        scope = state.payload_root
        if self.num_operands:
            payload = state.get_payload(self.operand(0))
            if len(payload) != 1:
                return self.definite(
                    "alternatives scope handle must map to exactly one "
                    f"payload op, got {len(payload)}"
                )
            scope = payload[0]
        last: Optional[TransformResult] = None
        for region in self.regions:
            if not region.blocks or not region.blocks[0].ops:
                # Empty fallback: leave the code unchanged; results map
                # to nothing (there is no yield to take them from).
                for result_value in self.results:
                    state.set_payload(result_value, [])
                return TransformResult.success()
            block = region.blocks[0]
            transaction = PayloadTransaction(state, scope)
            if block.args:
                state.set_payload(block.args[0], [scope])
            result = interpreter.run_block(block, state)
            if result.succeeded:
                transaction.commit()
                return self._map_results(block, state)
            if result.is_definite:
                # Definite errors abort interpretation; the payload is
                # left as-is for post-mortem debugging (as in MLIR).
                transaction.commit()
                return result
            transaction.rollback()
            last = result  # silenceable: suppressed, try next region
        if last is None:
            return TransformResult.success()
        return self.silenceable(
            f"all alternatives failed; last error: {last.message}"
        )

    def _map_results(self, block: Block,
                     state: TransformState) -> TransformResult:
        """Populate the op's results from the region's yield operands."""
        if not self.results:
            return TransformResult.success()
        terminator = block.terminator
        yielded = (
            list(terminator.operands)
            if terminator is not None and terminator.name == "transform.yield"
            else []
        )
        if len(yielded) != len(self.results):
            return self.definite(
                f"succeeding alternative yields {len(yielded)} values "
                f"but the op has {len(self.results)} results"
            )
        for out, value in zip(self.results, yielded):
            if isinstance(out.type, ParamType):
                state.set_param(out, state.get_param(value))
            else:
                state.set_payload(out, state.get_payload(value))
        return TransformResult.success()


# ---------------------------------------------------------------------------
# Matching and handle manipulation
# ---------------------------------------------------------------------------


@register_op
class MatchOp(TransformOp):
    """``match.op "scf.for" {first} in %scope`` (Fig. 1 lines 2, 4)."""

    NAME = "transform.match_op"

    #: Recognized values of the ``position`` attribute.
    POSITIONS = ("all", "first", "second", "last")

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        scope = state.get_payload(self.operand(0))
        names_attr = self.attr("names")
        wanted = unwrap(names_attr) if names_attr is not None else []
        if isinstance(wanted, str):
            wanted = [wanted]
        position = self._str_attr("position", "all")
        if position not in self.POSITIONS:
            return self.definite(
                f"unknown position {position!r}; expected one of "
                + ", ".join(repr(p) for p in self.POSITIONS)
            )

        matched: List[Operation] = []
        for root in scope:
            for op in root.walk():
                if op is root:
                    continue
                if not wanted or op.name in wanted:
                    matched.append(op)

        if position == "first":
            matched = matched[:1]
        elif position == "second":
            matched = matched[1:2]
        elif position == "last":
            matched = matched[-1:]
        if not matched and position != "all":
            return self.silenceable(
                f"no payload op matching {wanted} at position {position}"
            )
        result_type = self.results[0].type
        for op in matched:
            if not getattr(result_type, "accepts_op_name",
                           lambda _n: True)(op.name):
                return self.definite(
                    f"matched op '{op.name}' does not satisfy handle "
                    f"type {result_type}"
                )
        state.set_payload(self.results[0], matched)
        return TransformResult.success()


@register_op
class GetParentOp(TransformOp):
    """Map each payload op to its closest ancestor with a given name."""

    NAME = "transform.get_parent_op"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        wanted = self._str_attr("op_name")
        parents: List[Operation] = []
        for payload_op in state.get_payload(self.operand(0)):
            current = payload_op.parent_op
            while current is not None and wanted and current.name != wanted:
                current = current.parent_op
            if current is None:
                return self.silenceable(
                    f"payload op has no ancestor named {wanted!r}"
                )
            if current not in parents:
                parents.append(current)
        state.set_payload(self.results[0], parents)
        return TransformResult.success()


@register_op
class SelectOp(TransformOp):
    """Filter a handle's payload by op name (keeps matching ops)."""

    NAME = "transform.select"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        wanted = self._str_attr("op_name")
        selected = [
            op for op in state.get_payload(self.operand(0))
            if not wanted or op.name == wanted
        ]
        state.set_payload(self.results[0], selected)
        return TransformResult.success()


@register_op
class AnnotateOp(TransformOp):
    """Attach an attribute to every payload op of the handle.

    The Transform-dialect answer to the brittle metadata communication
    of §2.1: instead of patterns guessing from stray attributes, the
    *script* decides which ops get marked (e.g. for a later
    ``match_op``/``select`` or a pass reading the annotation).
    """

    NAME = "transform.annotate"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        name = self._str_attr("attr_name")
        if not name:
            return self.definite("annotate requires 'attr_name'")
        value = self.attr("attr_value")
        params = (
            state.get_param(self.operand(1))
            if self.num_operands > 1 else None
        )
        for payload_op in state.get_payload(self.operand(0)):
            if params is not None:
                payload_op.set_attr(name, params[0])
            elif value is not None:
                payload_op.set_attr(name, value)
            else:
                payload_op.set_attr(name, UnitAttr())
        return TransformResult.success()


@register_op
class MergeHandlesOp(TransformOp):
    NAME = "transform.merge_handles"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        merged: List[Operation] = []
        for operand in self.operands:
            for op in state.get_payload(operand):
                if op not in merged:
                    merged.append(op)
        state.set_payload(self.results[0], merged)
        return TransformResult.success()


@register_op
class SplitHandleOp(TransformOp):
    """Split a handle into N handles of one payload op each."""

    NAME = "transform.split_handle"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        payload = state.get_payload(self.operand(0))
        if len(payload) != len(self.results):
            return self.silenceable(
                f"expected {len(self.results)} payload ops, got "
                f"{len(payload)}"
            )
        for result, op in zip(self.results, payload):
            state.set_payload(result, [op])
        return TransformResult.success()


# ---------------------------------------------------------------------------
# Parameters
# ---------------------------------------------------------------------------


@register_op
class ParamConstantOp(TransformOp):
    """``param.constant 8`` — an externalized heuristic value (Fig. 1)."""

    NAME = "transform.param.constant"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        value = self.attr("value")
        if value is None:
            return self.definite("param.constant requires a 'value'")
        payload = unwrap(value)
        state.set_param(
            self.results[0],
            payload if isinstance(payload, list) else [payload],
        )
        return TransformResult.success()


@register_op
class NumPayloadOpsOp(TransformOp):
    """Derive a parameter from the payload: number of mapped ops."""

    NAME = "transform.num_payload_ops"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        state.set_param(
            self.results[0], [len(state.get_payload(self.operand(0)))]
        )
        return TransformResult.success()


def _resolve_sizes(op: TransformOp, state: TransformState,
                   attr_name: str, param_operands: Sequence[Value]
                   ) -> Optional[List[int]]:
    """Sizes from parameter operands when present, else from attributes."""
    if param_operands:
        values: List[int] = []
        for operand in param_operands:
            values.extend(int(v) for v in state.get_param(operand))
        return values
    return op._int_list_attr(attr_name)


def _destroyed_mid_iteration(op: TransformOp, state: TransformState,
                             payload_op: Operation
                             ) -> Optional[TransformResult]:
    """Guard against handles whose payload ops destroy each other.

    A handle may map several loops of one nest (e.g. ``match_op
    "scf.for"`` with position ``all``); transforming the outer loop
    destroys the inner ones, so by the time the iteration reaches them
    they are no longer part of the payload tree (erasing the outer op
    detaches only the outer op itself — nested ops keep stale parent
    pointers into the dead block, so the check must walk up to the
    payload root). Touching such an op used to crash with an
    ``IndexError`` deep inside the loop utilities (fuzzer-found); it is
    a failed precondition of the transform — the payload is still valid
    IR — so report it silenceably.
    """
    root = state.payload_root
    current: Optional[Operation] = payload_op
    while current is not None:
        if current is root:
            return None
        block = current.parent
        region = block.parent if block is not None else None
        current = region.parent if region is not None else None
    return op.silenceable(
        f"payload op '{payload_op.name}' was destroyed while "
        "processing an earlier payload op of the same handle"
    )


# ---------------------------------------------------------------------------
# Loop transforms
# ---------------------------------------------------------------------------


@register_op
class LoopTileOp(TransformOp):
    """Tile a loop (or perfect nest); yields (tile-band, point-band).

    ``tile_sizes`` comes from an attribute or parameter operands; a size
    of 0 leaves that dimension untiled (no-op rule of §3.4).
    """

    NAME = "transform.loop.tile"
    CONSUMES = (0,)
    PRECONDITIONS = frozenset({"scf.for"})
    POSTCONDITIONS = frozenset({"scf.for", "arith.constant", "arith.addi"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        payload = state.get_payload(self.operand(0))
        sizes = _resolve_sizes(self, state, "tile_sizes", self.operands[1:])
        if not sizes:
            return self.definite("loop.tile requires tile sizes")
        outer_band: List[Operation] = []
        inner_band: List[Operation] = []
        for loop in payload:
            failure = _destroyed_mid_iteration(self, state, loop)
            if failure is not None:
                return failure
            try:
                if len(sizes) == 1:
                    outer, inner = tile_loop(loop, sizes[0])
                    outer_band.append(outer)
                    inner_band.append(inner)
                else:
                    tiles, points = tile_loop_nest(loop, sizes)
                    outer_band.append(tiles[0])
                    if points:
                        inner_band.append(points[0])
            except LoopTransformError as error:
                return self.silenceable(str(error), [loop])
        state.set_payload(self.results[0], outer_band)
        if len(self.results) > 1:
            state.set_payload(self.results[1], inner_band)
        return TransformResult.success()


@register_op
class LoopSplitOp(TransformOp):
    """Split into a divisible main part and a remainder (Fig. 1 line 6)."""

    NAME = "transform.loop.split"
    CONSUMES = (0,)
    PRECONDITIONS = frozenset({"scf.for"})
    POSTCONDITIONS = frozenset({"scf.for", "arith.constant"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        payload = state.get_payload(self.operand(0))
        sizes = _resolve_sizes(self, state, "div_by", self.operands[1:])
        if not sizes:
            return self.definite("loop.split requires a divisor")
        mains: List[Operation] = []
        rests: List[Operation] = []
        for loop in payload:
            failure = _destroyed_mid_iteration(self, state, loop)
            if failure is not None:
                return failure
            try:
                main, rest = split_loop(loop, sizes[0])
            except LoopTransformError as error:
                return self.silenceable(str(error), [loop])
            mains.append(main)
            rests.append(rest)
        state.set_payload(self.results[0], mains)
        state.set_payload(self.results[1], rests)
        return TransformResult.success()


@register_op
class LoopUnrollOp(TransformOp):
    """Unroll fully (``{full}``) or by a factor; consumes its handle."""

    NAME = "transform.loop.unroll"
    CONSUMES = (0,)
    PRECONDITIONS = frozenset({"scf.for"})
    POSTCONDITIONS = frozenset({"arith.constant"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        payload = state.get_payload(self.operand(0))
        full = isinstance(self.attr("full"), UnitAttr)
        factors = _resolve_sizes(self, state, "factor", self.operands[1:])
        factor = factors[0] if factors else None
        if factor == 1 and not full:
            return TransformResult.success()  # no-op (§3.4)
        for loop in payload:
            failure = _destroyed_mid_iteration(self, state, loop)
            if failure is not None:
                return failure
            try:
                unroll_loop(loop, factor=factor, full=full)
            except LoopTransformError as error:
                return self.silenceable(str(error), [loop])
        return TransformResult.success()


@register_op
class LoopInterchangeOp(TransformOp):
    """Swap two perfectly nested loops (in place; handles stay valid)."""

    NAME = "transform.loop.interchange"
    PRECONDITIONS = frozenset({"scf.for"})
    POSTCONDITIONS = frozenset({"scf.for"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        outers = state.get_payload(self.operand(0))
        inners = state.get_payload(self.operand(1))
        if len(outers) != len(inners):
            return self.definite("interchange handle arity mismatch")
        for outer, inner in zip(outers, inners):
            try:
                interchange_loops(outer, inner)
            except LoopTransformError as error:
                return self.silenceable(str(error), [outer, inner])
        return TransformResult.success()


@register_op
class LoopHoistOp(TransformOp):
    """``loop.hoist from %loop to %func`` (Fig. 1 line 3)."""

    NAME = "transform.loop.hoist"
    PRECONDITIONS = frozenset({"scf.for"})
    POSTCONDITIONS = frozenset()

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        loops = state.get_payload(self.operand(0))
        targets = (
            state.get_payload(self.operand(1))
            if self.num_operands > 1
            else [None] * len(loops)
        )
        for loop, target in zip(loops, targets):
            try:
                hoist_loop_invariants_to(loop, target)
            except LoopTransformError as error:
                return self.silenceable(str(error), [loop])
        return TransformResult.success()


@register_op
class LoopVectorizeOp(TransformOp):
    """Mark a loop for vectorization with a given width (in place).

    Fails silenceably when the trip count is not divisible by the
    width — the constraint the case-study-5 tuning space encodes
    (Fig. 10: "vectorization is disabled if the trip count of the
    inner-most loop is not divisible by the machine vector size").
    """

    NAME = "transform.loop.vectorize"
    PRECONDITIONS = frozenset({"scf.for"})
    POSTCONDITIONS = frozenset({"scf.for"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        widths = _resolve_sizes(self, state, "width", self.operands[1:])
        width = widths[0] if widths else 8
        for loop in state.get_payload(self.operand(0)):
            if loop.name != "scf.for":
                return self.silenceable(
                    f"cannot vectorize {loop.name}", [loop]
                )
            trip = loop.trip_count()  # type: ignore[attr-defined]
            if trip is None or trip % width != 0:
                return self.silenceable(
                    f"trip count {trip} not divisible by vector width "
                    f"{width}",
                    [loop],
                )
            loop.set_attr("vector_width", width)
        return TransformResult.success()


@register_op
class LoopPeelOp(TransformOp):
    NAME = "transform.loop.peel"
    CONSUMES = (0,)
    PRECONDITIONS = frozenset({"scf.for"})
    POSTCONDITIONS = frozenset({"scf.for", "arith.constant"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        payload = state.get_payload(self.operand(0))
        mains: List[Operation] = []
        rests: List[Operation] = []
        for loop in payload:
            failure = _destroyed_mid_iteration(self, state, loop)
            if failure is not None:
                return failure
            try:
                main, rest = peel_loop(loop)
            except LoopTransformError as error:
                return self.silenceable(str(error), [loop])
            mains.append(main)
            rests.append(rest)
        state.set_payload(self.results[0], mains)
        if len(self.results) > 1:
            state.set_payload(self.results[1], rests)
        return TransformResult.success()


# ---------------------------------------------------------------------------
# Structured-op transforms
# ---------------------------------------------------------------------------


@register_op
class StructuredGeneralizeOp(TransformOp):
    NAME = "transform.structured.generalize"
    CONSUMES = (0,)
    PRECONDITIONS = frozenset({"linalg.matmul"})
    POSTCONDITIONS = frozenset({"linalg.generic"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        generalized: List[Operation] = []
        for payload_op in state.get_payload(self.operand(0)):
            failure = _destroyed_mid_iteration(self, state, payload_op)
            if failure is not None:
                return failure
            try:
                generalized.append(generalize_named_op(payload_op))
            except LoopTransformError as error:
                return self.silenceable(str(error), [payload_op])
        state.set_payload(self.results[0], generalized)
        return TransformResult.success()


@register_op
class StructuredLowerToLoopsOp(TransformOp):
    NAME = "transform.structured.lower_to_loops"
    CONSUMES = (0,)
    PRECONDITIONS = frozenset({"linalg.matmul"})
    POSTCONDITIONS = frozenset({"scf.for", "memref.load", "memref.store",
                                "arith.mulf", "arith.addf",
                                "arith.constant"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        roots: List[Operation] = []
        for payload_op in state.get_payload(self.operand(0)):
            failure = _destroyed_mid_iteration(self, state, payload_op)
            if failure is not None:
                return failure
            try:
                loops = lower_linalg_to_loops(payload_op)
            except LoopTransformError as error:
                return self.silenceable(str(error), [payload_op])
            roots.append(loops[0])
        state.set_payload(self.results[0], roots)
        return TransformResult.success()


@register_op
class ToLibraryOp(TransformOp):
    """Replace a matmul nest with a microkernel call (Fig. 8 line 7)."""

    NAME = "transform.to_library"
    CONSUMES = (0,)
    PRECONDITIONS = frozenset({"scf.for"})
    POSTCONDITIONS = frozenset({"func.call"})

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        library_name = self._str_attr("library", "libxsmm")
        library = LIBRARY_REGISTRY.get(library_name)
        if library is None:
            return self.definite(f"unknown library {library_name!r}")
        calls: List[Operation] = []
        for loop in state.get_payload(self.operand(0)):
            failure = _destroyed_mid_iteration(self, state, loop)
            if failure is not None:
                return failure
            try:
                calls.append(replace_with_library_call(loop, library))
            except LoopTransformError as error:
                # Precondition failure: payload untouched -> silenceable.
                return self.silenceable(str(error), [loop])
        if self.results:
            state.set_payload(self.results[0], calls)
        return TransformResult.success()


# ---------------------------------------------------------------------------
# Pass and pattern application
# ---------------------------------------------------------------------------


@register_op
class ApplyRegisteredPassOp(TransformOp):
    """Invoke a registered compiler pass on each payload op (§4.1)."""

    NAME = "transform.apply_registered_pass"

    @property
    def pass_name(self) -> str:
        return self._str_attr("pass_name")

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        from ..passes.manager import PASS_REGISTRY

        cls = PASS_REGISTRY.get(self.pass_name)
        if cls is None:
            return self.definite(f"unknown pass {self.pass_name!r}")
        payload = state.get_payload(self.operand(0))
        options_attr = self.attr("options")
        options = unwrap(options_attr) if options_attr is not None else {}
        pass_instance = cls(**options) if options else cls()
        for payload_op in payload:
            try:
                pass_instance.run(payload_op)
            except Exception as error:  # pass failure -> definite
                return self.definite(
                    f"pass {self.pass_name} failed: {error}"
                )
        if self.results:
            state.set_payload(self.results[0], payload)
        return TransformResult.success()


@register_op
class ApplyPatternsOp(TransformOp):
    """Greedily apply the patterns named in the body region (§4.3).

    The body holds zero-result marker ops ``transform.pattern.<name>``;
    each names an entry of the pattern registry. The transform state is
    subscribed to the rewrite driver so handles survive replacements.
    """

    NAME = "transform.apply_patterns"
    TRAITS = frozenset({SingleBlock})

    def pattern_names(self) -> List[str]:
        names: List[str] = []
        if self.regions and self.regions[0].blocks:
            for op in self.regions[0].entry_block.ops:
                if op.name.startswith("transform.pattern."):
                    names.append(op.name[len("transform.pattern."):])
        return names

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        from ..rewrite.greedy import (
            FrozenPatternSet,
            GreedyRewriteConfig,
            apply_patterns_greedily,
        )

        patterns: List[RewritePattern] = []
        for name in self.pattern_names():
            factory = TRANSFORM_PATTERN_REGISTRY.get(name)
            if factory is None:
                return self.definite(f"unknown pattern {name!r}")
            patterns.append(factory())
        frozen = FrozenPatternSet(patterns)
        # Thread the interpreter's strict mode into the driver so a
        # crashing pattern either surfaces raw (strict) or is wrapped
        # and then contained by the interpreter's exception barrier.
        config = GreedyRewriteConfig(
            strict=getattr(interpreter, "strict", False)
        )
        for payload_op in state.get_payload(self.operand(0)):
            apply_patterns_greedily(
                payload_op, frozen, config=config, extra_listeners=[state],
                profiler=getattr(interpreter, "profiler", None),
            )
        return TransformResult.success()


@register_op
class PatternMarkerOp(TransformOp):
    """Generic marker inside apply_patterns bodies; never executed."""

    NAME = "transform.pattern"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        return TransformResult.success()


# ---------------------------------------------------------------------------
# Miscellaneous
# ---------------------------------------------------------------------------


@register_op
class PrintOp(TransformOp):
    """Print payload ops with an optional message (debugging aid)."""

    NAME = "transform.print"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        message = self._str_attr("message", "")
        payload = state.get_payload(self.operand(0)) if self.num_operands else []
        lines = [f"[transform.print] {message}"]
        for payload_op in payload:
            lines.append(str(payload_op))
        interpreter.output.append("\n".join(lines))
        return TransformResult.success()


@register_op
class CastOp(TransformOp):
    """Refine/relax the handle type; payload is checked against it."""

    NAME = "transform.cast"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        payload = state.get_payload(self.operand(0))
        result_type = self.results[0].type
        for op in payload:
            if not getattr(result_type, "accepts_op_name",
                           lambda _n: True)(op.name):
                return self.silenceable(
                    f"payload op '{op.name}' incompatible with "
                    f"{result_type}"
                )
        state.set_payload(self.results[0], payload)
        return TransformResult.success()


@register_op
class AutodiffOp(TransformOp):
    """Apply a toy AD transform; the 'add' dialect is introspected (§3.4).

    For every payload op flagged ``differentiate``, emits the sum of
    partial derivatives using the add operation of the dialect recorded
    in ``add_dialect`` — filled in by
    :func:`repro.core.script_transforms.infer_ad_dialects` from the
    transform script's position in the lowering progression (Fig. 5).
    """

    NAME = "transform.autodiff"

    AD_ADD_OPS = {
        "stablehlo": "stablehlo.add",
        "arith": "arith.addf",
        "llvm": "llvm.fadd",
    }

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        dialect = self._str_attr("add_dialect")
        if not dialect:
            return self.definite(
                "autodiff requires 'add_dialect'; run "
                "infer_ad_dialects on the script or set it manually"
            )
        add_name = self.AD_ADD_OPS.get(dialect)
        if add_name is None:
            return self.definite(f"no add op known for {dialect!r}")
        for payload_op in state.get_payload(self.operand(0)):
            for target in list(payload_op.walk()):
                if target.attr("differentiate") is None:
                    continue
                if not target.results:
                    continue
                builder = Builder.after(target)
                partials = [
                    value for value in target.operands
                    if value.type == target.results[0].type
                ]
                if len(partials) < 2:
                    continue
                gradient = partials[0]
                for partial in partials[1:]:
                    gradient = builder.create(
                        add_name,
                        operands=[gradient, partial],
                        result_types=[gradient.type],
                        attributes={"autodiff_sum": True},
                    ).result
        return TransformResult.success()


@register_op
class EmitSilenceableOp(TransformOp):
    """Testing aid: unconditionally signal a silenceable error."""

    NAME = "transform.test.emit_silenceable"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        return self.silenceable(self._str_attr("message", "silenceable"))


@register_op
class EmitDefiniteOp(TransformOp):
    """Testing aid: unconditionally signal a definite error."""

    NAME = "transform.test.emit_definite"

    def apply(self, interpreter, state: TransformState) -> TransformResult:
        return self.definite(self._str_attr("message", "definite"))


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def sequence() -> Tuple[Operation, Builder, Value]:
    """Create a top-level sequence; returns (op, body builder, root handle)."""
    op = Operation.create("transform.sequence", regions=1)
    body = Block([ANY_OP])
    op.regions[0].add_block(body)
    return op, Builder.at_end(body), body.args[0]


def named_sequence(name: str,
                   n_args: int = 1) -> Tuple[Operation, Builder, List[Value]]:
    op = Operation.create(
        "transform.named_sequence",
        regions=1,
        attributes={"sym_name": name},
    )
    body = Block([ANY_OP] * n_args)
    op.regions[0].add_block(body)
    return op, Builder.at_end(body), list(body.args)


def yield_(builder: Builder, values: Sequence[Value] = ()) -> Operation:
    return builder.create("transform.yield", operands=list(values))


def include(builder: Builder, target: str, args: Sequence[Value] = (),
            n_results: int = 0) -> Operation:
    return builder.create(
        "transform.include",
        operands=list(args),
        result_types=[ANY_OP] * n_results,
        attributes={"target": SymbolRefAttr(target)},
    )


def match_op(builder: Builder, scope: Value, names: Union[str, Sequence[str]],
             position: str = "all",
             result_type: Optional[object] = None) -> Value:
    if isinstance(names, str):
        names = [names]
    if result_type is None:
        result_type = (
            OperationHandleType(names[0]) if len(names) == 1 else ANY_OP
        )
    return builder.create(
        "transform.match_op",
        operands=[scope],
        result_types=[result_type],
        attributes={"names": list(names), "position": position},
    ).result


def param_constant(builder: Builder, value: Union[int, Sequence[int]]) -> Value:
    return builder.create(
        "transform.param.constant",
        result_types=[PARAM_I64],
        attributes={"value": value if isinstance(value, int)
                    else list(value)},
    ).result


def loop_tile(builder: Builder, loop: Value,
              tile_sizes: Union[Sequence[int], Value, None] = None
              ) -> Tuple[Value, Value]:
    operands = [loop]
    attributes: Dict[str, object] = {}
    if isinstance(tile_sizes, Value):
        operands.append(tile_sizes)
    elif tile_sizes is not None:
        attributes["tile_sizes"] = list(tile_sizes)
    op = builder.create(
        "transform.loop.tile",
        operands=operands,
        result_types=[ANY_OP, ANY_OP],
        attributes=attributes or None,
    )
    return op.results[0], op.results[1]


def loop_split(builder: Builder, loop: Value,
               div_by: Union[int, Value]) -> Tuple[Value, Value]:
    operands = [loop]
    attributes: Dict[str, object] = {}
    if isinstance(div_by, Value):
        operands.append(div_by)
    else:
        attributes["div_by"] = div_by
    op = builder.create(
        "transform.loop.split",
        operands=operands,
        result_types=[ANY_OP, ANY_OP],
        attributes=attributes or None,
    )
    return op.results[0], op.results[1]


def loop_unroll(builder: Builder, loop: Value, factor: Optional[int] = None,
                full: bool = False) -> Operation:
    attributes: Dict[str, object] = {}
    if full:
        attributes["full"] = UnitAttr()
    if factor is not None:
        attributes["factor"] = factor
    return builder.create(
        "transform.loop.unroll", operands=[loop], attributes=attributes
    )


def loop_interchange(builder: Builder, outer: Value,
                     inner: Value) -> Operation:
    return builder.create(
        "transform.loop.interchange", operands=[outer, inner]
    )


def loop_hoist(builder: Builder, loop: Value,
               target: Optional[Value] = None) -> Operation:
    operands = [loop] if target is None else [loop, target]
    return builder.create("transform.loop.hoist", operands=operands)


def loop_vectorize(builder: Builder, loop: Value,
                   width: Union[int, Value] = 8) -> Operation:
    operands = [loop]
    attributes: Dict[str, object] = {}
    if isinstance(width, Value):
        operands.append(width)
    else:
        attributes["width"] = width
    return builder.create(
        "transform.loop.vectorize",
        operands=operands,
        attributes=attributes or None,
    )


def to_library(builder: Builder, nest: Value,
               library: str = "libxsmm") -> Operation:
    return builder.create(
        "transform.to_library",
        operands=[nest],
        attributes={"library": library},
    )


def alternatives(builder: Builder, n_regions: int = 2,
                 scope: Optional[Value] = None,
                 n_results: int = 0) -> Operation:
    op = builder.create(
        "transform.alternatives",
        operands=[scope] if scope is not None else [],
        result_types=[ANY_OP] * n_results,
        regions=n_regions,
    )
    for region in op.regions:
        region.add_block()
    return op


def apply_registered_pass(builder: Builder, target: Value, pass_name: str,
                          options: Optional[Dict[str, object]] = None,
                          with_result: bool = True) -> Optional[Value]:
    attributes: Dict[str, object] = {"pass_name": pass_name}
    if options:
        attributes["options"] = options
    op = builder.create(
        "transform.apply_registered_pass",
        operands=[target],
        result_types=[ANY_OP] if with_result else [],
        attributes=attributes,
    )
    return op.results[0] if with_result else None


def apply_patterns(builder: Builder, target: Value,
                   pattern_names: Sequence[str]) -> Operation:
    op = builder.create(
        "transform.apply_patterns", operands=[target], regions=1
    )
    body = op.regions[0].add_block()
    body_builder = Builder.at_end(body)
    for name in pattern_names:
        body_builder.create(f"transform.pattern.{name}")
    return op


def select(builder: Builder, handle: Value, op_name: str) -> Value:
    return builder.create(
        "transform.select",
        operands=[handle],
        result_types=[ANY_OP],
        attributes={"op_name": op_name},
    ).result


def annotate(builder: Builder, handle: Value, attr_name: str,
             value: Optional[object] = None) -> Operation:
    attributes: Dict[str, object] = {"attr_name": attr_name}
    if value is not None and not isinstance(value, Value):
        attributes["attr_value"] = value
    operands = [handle]
    if isinstance(value, Value):
        operands.append(value)
    return builder.create(
        "transform.annotate", operands=operands, attributes=attributes
    )


def print_(builder: Builder, handle: Value, message: str = "") -> Operation:
    return builder.create(
        "transform.print",
        operands=[handle],
        attributes={"message": message},
    )


def foreach(builder: Builder, handle: Value) -> Tuple[Operation, Builder, Value]:
    op = builder.create("transform.foreach", operands=[handle], regions=1)
    body = Block([ANY_OP])
    op.regions[0].add_block(body)
    return op, Builder.at_end(body), body.args[0]
