"""Convert pass pipelines into transform scripts (case study 1, §4.1).

The paper modified MLIR to automatically create a Transform script from
a pass pipeline, using the generic ``transform.apply_registered_pass``
transform to invoke MLIR passes. This module does the same: a pipeline
string or pass-name list becomes a ``transform.sequence`` chaining one
``apply_registered_pass`` per pass.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from ..ir.core import Operation
from ..passes.manager import PASS_REGISTRY, PassManager, parse_pipeline
from . import dialect as transform


def pipeline_to_transform_script(
    pipeline: Union[str, Sequence[str], PassManager],
) -> Operation:
    """Build a transform script module equivalent to ``pipeline``.

    The resulting script applies each pass to the payload root in
    order — the identical compilation flow, interpreted through the
    Transform dialect (the worst-case overhead scenario measured in
    Table 1).
    """
    if isinstance(pipeline, str):
        pipeline = parse_pipeline(pipeline)
    if isinstance(pipeline, PassManager):
        names_and_options = [
            (p.NAME, dict(p.options)) for p in pipeline.passes
        ]
    else:
        names_and_options = [(name, {}) for name in pipeline]

    for name, _options in names_and_options:
        if name not in PASS_REGISTRY:
            raise ValueError(f"unknown pass in pipeline: {name!r}")

    script = Operation.create("builtin.module", regions=1)
    script.regions[0].add_block()
    sequence_op, builder, root = transform.sequence()
    script.regions[0].entry_block.append(sequence_op)

    current = root
    for name, options in names_and_options:
        current = transform.apply_registered_pass(
            builder, current, name, options or None
        )
    transform.yield_(builder)
    return script


def transform_script_to_pipeline(script: Operation) -> List[str]:
    """The inverse direction: extract the pass names a script applies."""
    names: List[str] = []
    for op in script.walk_ops("transform.apply_registered_pass"):
        pass_name = op.attr("pass_name")
        if pass_name is not None:
            names.append(pass_name.value)  # type: ignore[union-attr]
    return names
