"""Transactional payload execution: snapshot, commit, rollback.

The paper's error-recovery story (§3.4, Fig. 8) requires
``transform.alternatives`` to *restore the payload IR* when an
alternative fails with a silenceable error before trying the next one.
:class:`PayloadTransaction` implements that contract for both sides of
the handle/payload association:

* the payload subtree is checkpointed with ``Operation.clone`` — a
  detached deep copy that no later rewrite can touch;
* the :class:`~repro.core.state.TransformState` mapping tables are
  checkpointed with :meth:`~repro.core.state.TransformState.checkpoint`;
* an op-correspondence map (original op -> clone op, built from one
  parallel pre-order walk) lets :meth:`rollback` remap every
  checkpointed handle onto the restored operations, so handles created
  *before* the transaction keep working after a rollback — including
  handles pointing *into* the checkpointed subtree.

Rollback transplants the clone's region contents into the original root
operation, which therefore keeps its identity: handles to the root (and
to anything outside the subtree) are untouched. The restored payload
prints byte-identically to its pre-transaction form.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.core import Operation
from .state import StateSnapshot, TransformState


class TransactionError(RuntimeError):
    """Misuse of a :class:`PayloadTransaction` (double commit/rollback)."""


class PayloadTransaction:
    """A checkpoint of a payload subtree plus the transform state.

    ``root`` defaults to the state's payload root; it must enclose every
    operation the transaction's body may create, move or erase —
    mutations escaping the subtree are not rolled back.
    """

    def __init__(self, state: TransformState,
                 root: Optional[Operation] = None):
        self.state = state
        self.root = root if root is not None else state.payload_root
        self._clone: Optional[Operation] = self.root.clone({})
        #: id(original op) -> clone op, for every op of the subtree.
        #: The pinned walk list keeps the originals alive so no key can
        #: be recycled onto a different operation mid-transaction.
        self._pinned: List[Operation] = list(self.root.walk())
        self._op_map: Dict[int, Operation] = {
            id(orig): cloned
            for orig, cloned in zip(self._pinned, self._clone.walk())
        }
        # The root keeps its identity across rollback (only its region
        # contents are transplanted), so it maps to itself.
        self._op_map[id(self.root)] = self.root
        self._snapshot: Optional[StateSnapshot] = state.checkpoint()
        self._active = True

    @property
    def active(self) -> bool:
        """True until :meth:`commit` or :meth:`rollback` runs."""
        return self._active

    def _finish(self) -> None:
        self._active = False
        self._clone = None
        self._snapshot = None
        self._pinned = []
        self._op_map = {}

    def commit(self) -> None:
        """Keep the current payload/state; discard the checkpoint."""
        if not self._active:
            raise TransactionError("transaction already finished")
        self._finish()

    def rollback(self) -> None:
        """Restore payload IR and handle state to the checkpoint."""
        if not self._active:
            raise TransactionError("transaction already finished")
        assert self._clone is not None and self._snapshot is not None
        # Drop the mutated contents: sever every def-use link first so
        # values defined outside the subtree lose their stale uses.
        for region in self.root.regions:
            for block in list(region.blocks):
                for op in list(block.ops):
                    op.drop_all_references()
                region.remove_block(block)
        # Transplant the clone's blocks into the original root.
        for dest_region, src_region in zip(self.root.regions,
                                           self._clone.regions):
            for block in list(src_region.blocks):
                src_region.remove_block(block)
                dest_region.add_block(block)
        self.root.attributes = dict(self._clone.attributes)
        # Reinstate the handle tables, remapped through the clone map.
        self.state.restore(self._snapshot, self._op_map)
        self._finish()

    # -- context-manager sugar: commit on success, rollback on error ---------

    def __enter__(self) -> "PayloadTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._active:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        return False
