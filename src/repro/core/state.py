"""The transform state: handle/payload mapping and invalidation tracking.

The interpreter maintains the association table between transform-script
handles (SSA values) and payload operations (paper §3), including:

* **handle invalidation** (§3.1): consuming transforms invalidate their
  operand handles *and every aliasing handle* — a handle aliases another
  when their payload operations overlap or nest;
* **rewrite-event subscription** (§3.1): the state is a
  :class:`~repro.rewrite.pattern.RewriteListener`, so pattern drivers
  notify it when payload ops are replaced or erased and handles are
  updated instead of dangling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..ir.core import Operation, Value
from ..rewrite.pattern import RewriteListener
from .errors import TransformResult

#: Parameters are lists of plain Python constants (ints mostly).
ParamValue = List[object]


class HandleInvalidatedError(Exception):
    """Access through an invalidated handle (reported as definite error)."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class TransformState(RewriteListener):
    """Maps transform handles to payload operations."""

    def __init__(self, payload_root: Operation):
        self.payload_root = payload_root
        self._ops: Dict[int, List[Operation]] = {}
        self._params: Dict[int, ParamValue] = {}
        self._values: Dict[int, Value] = {}  # handle id -> handle value
        self._invalidated: Dict[int, str] = {}

    # -- mapping -----------------------------------------------------------

    def set_payload(self, handle: Value, ops: Sequence[Operation]) -> None:
        self._ops[id(handle)] = list(ops)
        self._values[id(handle)] = handle
        self._invalidated.pop(id(handle), None)

    def get_payload(self, handle: Value) -> List[Operation]:
        """Payload ops of ``handle``; raises on invalidated handles."""
        reason = self._invalidated.get(id(handle))
        if reason is not None:
            raise HandleInvalidatedError(
                f"use of a handle invalidated by {reason}"
            )
        if id(handle) not in self._ops:
            raise HandleInvalidatedError("use of an unmapped handle")
        return list(self._ops[id(handle)])

    def set_param(self, handle: Value, values: Iterable[object]) -> None:
        self._params[id(handle)] = list(values)
        self._values[id(handle)] = handle

    def get_param(self, handle: Value) -> ParamValue:
        if id(handle) not in self._params:
            raise HandleInvalidatedError("use of an unmapped parameter")
        return list(self._params[id(handle)])

    def is_invalidated(self, handle: Value) -> bool:
        return id(handle) in self._invalidated

    def invalidation_reason(self, handle: Value) -> Optional[str]:
        return self._invalidated.get(id(handle))

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, handle: Value, reason: str) -> None:
        """Invalidate ``handle`` and every aliasing handle.

        Aliasing is discovered by traversing the payload IR along with
        the handle/operation mapping: invalidating a handle also
        invalidates any other handle to the *same* payload operations
        or to operations *nested in* them (§3.1). Handles to enclosing
        operations stay valid — the ancestors survive the rewrite.
        """
        targets = self._ops.get(id(handle), [])
        self._invalidated[id(handle)] = reason
        if not targets:
            return
        for other_id, other_ops in self._ops.items():
            if other_id == id(handle) or other_id in self._invalidated:
                continue
            if any(
                consumed is other or consumed.is_ancestor_of(other)
                for consumed in targets
                for other in other_ops
            ):
                self._invalidated[other_id] = (
                    f"{reason} (aliasing handle: payload same as or "
                    "nested in the consumed payload)"
                )

    # -- rewrite-driver event subscription (paper §3.1) -------------------------

    def notify_op_replaced(self, op: Operation,
                           new_values: Sequence[Value]) -> None:
        """Update handles to point at the replacement operation."""
        replacement: Optional[Operation] = None
        for value in new_values:
            defining = value.defining_op()
            if defining is not None:
                replacement = defining
                break
        for ops in self._ops.values():
            for index, mapped in enumerate(list(ops)):
                if mapped is op:
                    if replacement is not None:
                        ops[index] = replacement
                    else:
                        ops.remove(mapped)

    def notify_op_replaced_with_op(self, op: Operation,
                                   new_op: Operation) -> None:
        """Repoint handles at the replacement op (covers 0-result ops)."""
        for ops in self._ops.values():
            for index, mapped in enumerate(ops):
                if mapped is op:
                    ops[index] = new_op

    def notify_op_erased(self, op: Operation) -> None:
        """Drop erased ops from every mapping (empty set, not dangling)."""
        for ops in self._ops.values():
            while op in ops:
                ops.remove(op)

    # -- queries ------------------------------------------------------------------

    def num_handles(self) -> int:
        return len(self._ops)

    def all_mapped_ops(self) -> List[Operation]:
        out: List[Operation] = []
        for ops in self._ops.values():
            out.extend(ops)
        return out


