"""The transform state: handle/payload mapping and invalidation tracking.

The interpreter maintains the association table between transform-script
handles (SSA values) and payload operations (paper §3), including:

* **handle invalidation** (§3.1): consuming transforms invalidate their
  operand handles *and every aliasing handle* — a handle aliases another
  when their payload operations overlap or nest;
* **rewrite-event subscription** (§3.1): the state is a
  :class:`~repro.rewrite.pattern.RewriteListener`, so pattern drivers
  notify it when payload ops are replaced or erased and handles are
  updated instead of dangling.

A reverse index (payload op -> handles mapped to it) keeps both
invalidation and the rewrite-event listeners near-O(affected): a consume
walks the ancestor chains of the mapped ops instead of cross-checking
every handle against every payload op, and replace/erase events touch
only the handles that actually reference the rewritten op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..ir.core import Operation, Value
from ..rewrite.pattern import RewriteListener

#: Parameters are lists of plain Python constants (ints mostly).
ParamValue = List[object]


class HandleInvalidatedError(Exception):
    """Access through an invalidated handle (reported as definite error)."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


@dataclass
class StateSnapshot:
    """A frozen copy of a :class:`TransformState`'s mapping tables.

    Produced by :meth:`TransformState.checkpoint` and reinstated by
    :meth:`TransformState.restore`; :class:`repro.core.transaction.
    PayloadTransaction` pairs one with a payload-IR clone so
    ``transform.alternatives`` can roll back *both* sides of the
    handle/payload association (paper §3.4, Fig. 8).
    """

    ops: Dict[int, List[Operation]] = field(default_factory=dict)
    params: Dict[int, "ParamValue"] = field(default_factory=dict)
    values: Dict[int, Value] = field(default_factory=dict)
    invalidated: Dict[int, str] = field(default_factory=dict)


class TransformState(RewriteListener):
    """Maps transform handles to payload operations."""

    def __init__(self, payload_root: Operation):
        self.payload_root = payload_root
        self._ops: Dict[int, List[Operation]] = {}
        self._params: Dict[int, ParamValue] = {}
        self._values: Dict[int, Value] = {}  # handle id -> handle value
        self._invalidated: Dict[int, str] = {}
        #: Reverse index: payload-op id -> ids of handles mapped to it.
        #: Entries exist only while the op appears in some ``_ops`` list
        #: (which holds a strong reference), so ids cannot be recycled
        #: while indexed.
        self._op_handles: Dict[int, Set[int]] = {}
        #: Strong op reference per indexed id (for ancestor walks).
        self._indexed_ops: Dict[int, Operation] = {}

    # -- reverse index maintenance ------------------------------------------

    def _index_add(self, handle_id: int, ops: Iterable[Operation]) -> None:
        for op in ops:
            bucket = self._op_handles.get(id(op))
            if bucket is None:
                bucket = self._op_handles[id(op)] = set()
                self._indexed_ops[id(op)] = op
            bucket.add(handle_id)

    def _index_discard(self, handle_id: int,
                       ops: Iterable[Operation]) -> None:
        for op in ops:
            bucket = self._op_handles.get(id(op))
            if bucket is None:
                continue
            bucket.discard(handle_id)
            if not bucket:
                del self._op_handles[id(op)]
                del self._indexed_ops[id(op)]

    # -- mapping -----------------------------------------------------------

    def set_payload(self, handle: Value, ops: Sequence[Operation]) -> None:
        old = self._ops.get(id(handle))
        if old:
            self._index_discard(id(handle), old)
        self._ops[id(handle)] = list(ops)
        self._index_add(id(handle), ops)
        self._values[id(handle)] = handle
        self._invalidated.pop(id(handle), None)

    def get_payload(self, handle: Value) -> List[Operation]:
        """Payload ops of ``handle``; raises on invalidated handles."""
        reason = self._invalidated.get(id(handle))
        if reason is not None:
            raise HandleInvalidatedError(
                f"use of a handle invalidated by {reason}"
            )
        if id(handle) not in self._ops:
            raise HandleInvalidatedError("use of an unmapped handle")
        return list(self._ops[id(handle)])

    def set_param(self, handle: Value, values: Iterable[object]) -> None:
        self._params[id(handle)] = list(values)
        self._values[id(handle)] = handle

    def get_param(self, handle: Value) -> ParamValue:
        if id(handle) not in self._params:
            raise HandleInvalidatedError("use of an unmapped parameter")
        return list(self._params[id(handle)])

    def is_invalidated(self, handle: Value) -> bool:
        return id(handle) in self._invalidated

    def invalidation_reason(self, handle: Value) -> Optional[str]:
        return self._invalidated.get(id(handle))

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, handle: Value, reason: str) -> int:
        """Invalidate ``handle`` and every aliasing handle.

        Aliasing is discovered through the reverse index: a handle
        aliases the consumed one when any of its payload ops *is* a
        consumed op or is *nested in* one (§3.1), so it suffices to
        walk the ancestor chain of every currently-mapped payload op —
        O(mapped ops x depth) instead of O(handles x payload). Handles
        to enclosing operations stay valid — the ancestors survive the
        rewrite.

        Returns the number of handles newly invalidated (the operand
        handle itself plus every alias).
        """
        targets = self._ops.get(id(handle), [])
        count = 0
        if id(handle) not in self._invalidated:
            count += 1
        self._invalidated[id(handle)] = reason
        if not targets:
            return count
        target_ids = {id(t) for t in targets}
        alias_reason = (
            f"{reason} (aliasing handle: payload same as or "
            "nested in the consumed payload)"
        )
        for op_id, mapped_op in list(self._indexed_ops.items()):
            # Is this mapped op a consumed op, or nested inside one?
            node: Optional[Operation] = mapped_op
            hit = False
            while node is not None:
                if id(node) in target_ids:
                    hit = True
                    break
                node = node.parent_op
            if not hit:
                continue
            for other_id in self._op_handles.get(op_id, ()):
                if other_id == id(handle) or other_id in self._invalidated:
                    continue
                self._invalidated[other_id] = alias_reason
                count += 1
        return count

    # -- checkpoint / restore (transactional execution) ----------------------

    def checkpoint(self) -> StateSnapshot:
        """Copy every mapping table into a :class:`StateSnapshot`.

        The snapshot holds the *current* payload op objects; when the
        payload itself is rolled back to a clone, pass the clone's
        op-correspondence map to :meth:`restore` to remap them.
        """
        return StateSnapshot(
            ops={hid: list(ops) for hid, ops in self._ops.items()},
            params={hid: list(vs) for hid, vs in self._params.items()},
            values=dict(self._values),
            invalidated=dict(self._invalidated),
        )

    def restore(self, snapshot: StateSnapshot,
                op_map: Optional[Dict[int, Operation]] = None) -> None:
        """Reinstate ``snapshot``, optionally remapping payload ops.

        ``op_map`` maps ``id(old op) -> replacement op`` (identity for
        ops absent from the map); the reverse index is rebuilt from
        scratch so it stays consistent with the remapped lists.
        """
        op_map = op_map or {}
        self._ops = {
            hid: [op_map.get(id(op), op) for op in ops]
            for hid, ops in snapshot.ops.items()
        }
        self._params = {hid: list(vs) for hid, vs in snapshot.params.items()}
        self._values = dict(snapshot.values)
        self._invalidated = dict(snapshot.invalidated)
        self._op_handles = {}
        self._indexed_ops = {}
        for hid, ops in self._ops.items():
            self._index_add(hid, ops)

    # -- rewrite-driver event subscription (paper §3.1) -------------------------

    def notify_op_replaced(self, op: Operation,
                           new_values: Sequence[Value]) -> None:
        """Update handles to point at the replacement operation.

        When no replacement op defines the new values (e.g. the results
        were replaced with block arguments), the op is dropped from the
        mapping. Every occurrence is rewritten — the list is rebuilt
        rather than edited in place, so a drop cannot shift later
        occurrences onto the wrong element.
        """
        replacement: Optional[Operation] = None
        for value in new_values:
            defining = value.defining_op()
            if defining is not None:
                replacement = defining
                break
        self._repoint(op, replacement)

    def notify_op_replaced_with_op(self, op: Operation,
                                   new_op: Operation) -> None:
        """Repoint handles at the replacement op (covers 0-result ops)."""
        self._repoint(op, new_op)

    def notify_op_erased(self, op: Operation) -> None:
        """Drop erased ops from every mapping (empty set, not dangling)."""
        self._repoint(op, None)

    def notify_op_modified(self, op: Operation) -> None:
        """Invalidate the structural-digest memo of a modified op.

        Handle mappings are unaffected by in-place modification, but
        the content-addressed digest chain (op and ancestors) is stale
        the moment a tracked op mutates; the reverse index means this
        fires only for ops the interpreter actually touched.
        """
        op.invalidate_digest()

    def _repoint(self, op: Operation,
                 replacement: Optional[Operation]) -> None:
        handle_ids = self._op_handles.get(id(op))
        if not handle_ids:
            return
        for handle_id in list(handle_ids):
            ops = self._ops[handle_id]
            if replacement is not None:
                self._ops[handle_id] = [
                    replacement if mapped is op else mapped
                    for mapped in ops
                ]
            else:
                self._ops[handle_id] = [
                    mapped for mapped in ops if mapped is not op
                ]
        old_handles = list(handle_ids)
        self._index_discard_op(op)
        if replacement is not None:
            for handle_id in old_handles:
                self._index_add(handle_id, [replacement])

    def _index_discard_op(self, op: Operation) -> None:
        self._op_handles.pop(id(op), None)
        self._indexed_ops.pop(id(op), None)

    # -- queries ------------------------------------------------------------------

    def num_handles(self) -> int:
        return len(self._ops)

    def all_mapped_ops(self) -> List[Operation]:
        out: List[Operation] = []
        for ops in self._ops.values():
            out.extend(ops)
        return out
