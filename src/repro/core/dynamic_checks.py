"""Dynamic pre-/post-condition checking (paper §3.3).

Static checks cannot establish that declared conditions accurately
describe the transformation *implementations* — so the interpreter can
additionally verify them while transforming a concrete program:

* after every checked transform, newly introduced payload op kinds must
  be covered by the declared postconditions;
* payload ops matching an IRDL-constrained spec (e.g.
  ``memref.subview.constr``) are verified with the *generated* IRDL
  constraint verifier — after ``expand-strided-metadata`` every
  remaining subview must really be trivial.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from ..ir.core import Operation
from ..irdl.library import lookup_def
from ..irdl.defs import verify_op
from .conditions import conditions_of, spec_matches_name
from .errors import TransformResult
from .interpreter import TransformInterpreter
from .state import TransformState


@dataclass
class ConditionViolation:
    """A dynamic condition-check failure."""

    transform_name: str
    message: str

    def __str__(self) -> str:
        return f"{self.transform_name}: {self.message}"


class DynamicConditionChecker(TransformInterpreter):
    """An interpreter that verifies conditions as it executes.

    Violations are collected in :attr:`violations`; with
    ``strict=True`` a violation turns into a definite error, aborting
    interpretation (useful to catch miscompiling transforms early).
    """

    def __init__(self, strict: bool = False, **options):
        super().__init__(**options)
        self.strict = strict
        self.violations: List[ConditionViolation] = []

    def execute(self, op: Operation,
                state: TransformState) -> TransformResult:
        conditions = conditions_of(op)
        before: Optional[Counter] = None
        if conditions is not None:
            before = Counter(
                payload_op.name
                for payload_op in state.payload_root.walk()
            )
        result = super().execute(op, state)
        if conditions is None or before is None or not result.succeeded:
            return result

        after = Counter(
            payload_op.name for payload_op in state.payload_root.walk()
        )
        introduced = {
            name for name in after
            if after[name] > before.get(name, 0)
        }
        for name in sorted(introduced):
            if not any(
                spec_matches_name(post, name)
                for post in conditions.postconditions
            ):
                self._report(
                    op, conditions.name,
                    f"introduced '{name}' which is not covered by the "
                    f"declared postconditions "
                    f"{sorted(conditions.postconditions)}",
                )

        # IRDL-constrained postconditions: run the generated verifier on
        # every payload op the constrained spec names.
        for post in conditions.postconditions:
            if not post.endswith(".constr"):
                continue
            definition = lookup_def(post)
            if definition is None:
                continue
            base_name = post[: -len(".constr")]
            for payload_op in state.payload_root.walk():
                if payload_op.name != base_name:
                    continue
                for violation in verify_op(payload_op, definition):
                    self._report(
                        op, conditions.name,
                        f"IRDL constraint violated: {violation}",
                    )
        if self.strict and self.violations:
            return TransformResult.definite(
                f"dynamic condition check failed: {self.violations[-1]}",
                op,
            )
        return result

    def _report(self, op: Operation, name: str, message: str) -> None:
        self.violations.append(ConditionViolation(name, message))
