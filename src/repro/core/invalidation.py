"""Static handle-invalidation analysis (paper §3.4).

Because transform scripts are ordinary SSA IR, use-after-consume of
handles is detectable with an off-the-shelf "use after free" dataflow
analysis: handle definitions are allocations, consumption is a free,
and handles to nested/equal payload alias their source. This module
runs that analysis over a script *without executing it* — catching,
e.g., the double-unroll of Fig. 1 line 11 at script-verification time.

Alias edges come in two flavours, mirroring the dynamic semantics
(consuming a handle invalidates handles to the *same* payload ops or
ops *nested in* them, but not enclosing ones):

* **nested** edges (``match_op``: the result points strictly inside the
  operand's payload) — consumption flows source -> derived only;
* **subset** edges (``foreach`` block arguments, ``split_handle``,
  ``merge_handles``, ``cast``: the result points at the same payload
  ops) — consumption flows both ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.core import Block, Operation, Value

#: result payload strictly nested in operand payload.
_DERIVES_NESTED = {"transform.match_op"}

#: result payload equal to (a subset of) operand payload.
_DERIVES_SUBSET = {
    "transform.cast",
    "transform.merge_handles",
    "transform.split_handle",
}


@dataclass
class InvalidationIssue:
    """One use-after-consume diagnosis."""

    message: str
    use_op: Operation
    consume_op: Operation

    def __str__(self) -> str:
        return (
            f"'{self.use_op.name}' uses a handle invalidated by "
            f"'{self.consume_op.name}': {self.message}"
        )


class _HandleFacts:
    """Per-value dataflow facts: derivation edges and consumption."""

    def __init__(self) -> None:
        #: source -> values whose payload is nested in (or equal to) it.
        self.downward: Dict[int, List[Value]] = {}
        #: value -> values whose payload is equal (subset aliases).
        self.subset: Dict[int, List[Value]] = {}
        #: value -> op that consumed it (transitively via aliasing).
        self.consumed_by: Dict[int, Operation] = {}

    def add_nested(self, source: Value, result: Value) -> None:
        self.downward.setdefault(id(source), []).append(result)

    def add_subset(self, a: Value, b: Value) -> None:
        self.subset.setdefault(id(a), []).append(b)
        self.subset.setdefault(id(b), []).append(a)
        # Subset aliases also receive downward consumption from each
        # other's sources; treating them as mutual nested edges keeps
        # the closure simple.
        self.downward.setdefault(id(a), []).append(b)
        self.downward.setdefault(id(b), []).append(a)

    def invalidation_set(self, value: Value) -> List[Value]:
        """Everything invalidated when ``value`` is consumed: the value,
        its subset aliases, and all transitively nested handles."""
        out: List[Value] = [value]
        seen: Set[int] = {id(value)}
        stack = [value]
        while stack:
            current = stack.pop()
            for child in self.downward.get(id(current), []):
                if id(child) not in seen:
                    seen.add(id(child))
                    out.append(child)
                    stack.append(child)
        return out

    def consume(self, value: Value, op: Operation) -> None:
        for aliased in self.invalidation_set(value):
            self.consumed_by.setdefault(id(aliased), op)

    def consumer(self, value: Value) -> Optional[Operation]:
        return self.consumed_by.get(id(value))


def analyze_invalidation(script: Operation) -> List[InvalidationIssue]:
    """Run the static use-after-consume analysis over a script."""
    issues: List[InvalidationIssue] = []
    for op in script.walk():
        if op.name in ("transform.sequence", "transform.named_sequence"):
            if op.regions and op.regions[0].blocks:
                _analyze_block(op.regions[0].entry_block, _HandleFacts(),
                               issues)
    return issues


def _analyze_block(block: Block, facts: _HandleFacts,
                   issues: List[InvalidationIssue]) -> None:
    for op in block.ops:
        # 1. Every operand use must not be through a consumed handle.
        for operand in op.operands:
            consumer = facts.consumer(operand)
            if consumer is not None:
                issues.append(
                    InvalidationIssue(
                        "handle (or an aliasing handle) was consumed "
                        "earlier in the script",
                        op,
                        consumer,
                    )
                )
        # 2. Record derivation edges for navigation-like transforms.
        if op.name in _DERIVES_NESTED:
            for operand in op.operands:
                for result in op.results:
                    facts.add_nested(operand, result)
        elif op.name in _DERIVES_SUBSET:
            for operand in op.operands:
                for result in op.results:
                    facts.add_subset(operand, result)
        # 3. Nested regions execute in order with the same facts
        #    (alternatives regions are analyzed independently but
        #    conservatively share consumption facts).
        for region in op.regions:
            for nested in region.blocks:
                if op.name == "transform.foreach" and nested.args:
                    for operand in op.operands:
                        facts.add_subset(operand, nested.args[0])
                _analyze_block(nested, facts, issues)
        # 4. Process consumption after the op "executes".
        consumed = getattr(type(op), "CONSUMES", ())
        for index in consumed:
            if index < op.num_operands:
                facts.consume(op.operand(index), op)


def verify_script(script: Operation) -> List[str]:
    """Script-level verification: structural checks + invalidation.

    Returns human-readable error strings (empty = script is clean).
    This is the static counterpart of the interpreter's dynamic
    tracking, runnable before any payload exists.
    """
    errors = [str(issue) for issue in analyze_invalidation(script)]
    for op in script.walk():
        if op.name == "transform.include":
            target = op.attr("target")
            if target is None:
                errors.append("transform.include without a 'target'")
    return errors
