"""Static handle-invalidation analysis (paper §3.4) — core facade.

The implementation lives in :mod:`repro.analysis.invalidation`, built
on the forward dataflow engine: interprocedural (``named_sequence``
summaries applied at ``transform.include`` sites), alternatives-aware
(per-region fact snapshots matching the transactional rollback), with
positional ``foreach`` aliasing. This module keeps the historical
``repro.core`` API:

* :func:`analyze_invalidation` returns the *derivation-based* issues —
  direct consumption and declared alias edges — without the coarse
  worst-case may-alias warnings (those exist for the differential fuzz
  oracle; ask :func:`repro.analysis.invalidation.analyze_script` with
  ``may_alias=True`` for them);
* :func:`verify_script` flattens the issues to human-readable strings
  and adds structural checks.
"""

from __future__ import annotations

from typing import List

from ..analysis.invalidation import (
    InvalidationIssue,
    analyze_script,
)
from ..ir.core import Operation

__all__ = ["InvalidationIssue", "analyze_invalidation", "verify_script"]


def analyze_invalidation(script: Operation) -> List[InvalidationIssue]:
    """Run the static use-after-consume analysis over a script.

    Each top-level sequence is analyzed exactly once (nested sequences
    run inline with their parent's facts, mirroring execution) and each
    ``named_sequence`` body exactly once via its summary, so every
    defect yields one diagnostic.
    """
    return analyze_script(script, may_alias=False)


def verify_script(script: Operation) -> List[str]:
    """Script-level verification: structural checks + invalidation.

    Returns human-readable error strings (empty = script is clean).
    This is the static counterpart of the interpreter's dynamic
    tracking, runnable before any payload exists.
    """
    errors = [str(issue) for issue in analyze_invalidation(script)]
    for op in script.walk():
        if op.name == "transform.include":
            target = op.attr("target")
            if target is None:
                errors.append("transform.include without a 'target'")
    return errors
