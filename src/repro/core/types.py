"""Transform dialect types: operation handles and parameters.

Handles are SSA values of the transform script referring to lists of
payload operations; parameters carry compile-time constants. Types can
constrain which payload ops a handle may point to
(``!transform.op<"scf.for">``), giving the lightweight static typing
shown in Fig. 1's right-hand-side comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.parser import Parser, register_type_parser
from ..ir.types import Type


@dataclass(frozen=True)
class TransformHandleType(Type):
    """Base class of handle types."""

    def accepts_op_name(self, op_name: str) -> bool:
        return True


@dataclass(frozen=True)
class AnyOpType(TransformHandleType):
    """``!transform.any_op``: a handle to arbitrary payload operations."""

    def __str__(self) -> str:
        return "!transform.any_op"


@dataclass(frozen=True)
class OperationHandleType(TransformHandleType):
    """``!transform.op<"scf.for">``: a handle constrained to one op name."""

    op_name: str

    def accepts_op_name(self, op_name: str) -> bool:
        return op_name == self.op_name

    def __str__(self) -> str:
        return f'!transform.op<"{self.op_name}">'


@dataclass(frozen=True)
class ParamType(Type):
    """``!transform.param<i64>``: a compile-time constant parameter."""

    element: str = "i64"

    def __str__(self) -> str:
        return f"!transform.param<{self.element}>"


@dataclass(frozen=True)
class AnyValueType(TransformHandleType):
    """``!transform.any_value``: a handle to payload *values*."""

    def __str__(self) -> str:
        return "!transform.any_value"


ANY_OP = AnyOpType()
ANY_VALUE = AnyValueType()
PARAM_I64 = ParamType("i64")


def _parse_transform_type(parser: Parser, token_text: str) -> Type:
    body = token_text[len("!transform.") :]
    if body == "any_op":
        return ANY_OP
    if body == "any_value":
        return ANY_VALUE
    if body == "op":
        parser.expect("<")
        name_token = parser.expect_kind("string")
        parser.expect(">")
        return OperationHandleType(name_token.text[1:-1])
    if body == "param":
        parser.expect("<")
        element_tokens = []
        while not parser.check(">"):
            element_tokens.append(parser.advance().text)
        parser.expect(">")
        return ParamType("".join(element_tokens))
    raise ValueError(f"unknown transform type: {token_text}")


register_type_parser("transform", _parse_transform_type)
