"""Static pipeline checking (paper §3.3, case study 2).

Abstractly interprets a pipeline over the *set of op specs* present in
the payload: each transform removes the specs its preconditions
subsume and adds its postconditions. The checker reports:

* **leftover** specs after the pipeline that the final target does not
  allow — e.g. the ``affine.apply`` leaked by ``expand-strided-metadata``
  which no later pass removes (the exact bug of case study 2);
* **phase-ordering violations**: a transform whose preconditions cannot
  match anything at its position (e.g. a loop transform on ``scf.for``
  scheduled after ``convert-scf-to-cf``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Union

from ..ir.core import Operation
from .conditions import (
    TransformConditions,
    conditions_of,
    pass_conditions,
    spec_matches_name,
    spec_subsumes,
)


class IssueKind(enum.Enum):
    LEFTOVER = "leftover"
    PHASE_ORDERING = "phase-ordering"
    UNKNOWN_CONDITIONS = "unknown-conditions"


@dataclass
class PipelineIssue:
    kind: IssueKind
    message: str
    position: Optional[int] = None
    transform_name: str = ""

    def __str__(self) -> str:
        where = (
            f" (step {self.position + 1}: {self.transform_name})"
            if self.position is not None
            else ""
        )
        return f"[{self.kind.value}]{where} {self.message}"


@dataclass
class PipelineReport:
    """Result of statically checking a pipeline."""

    issues: List[PipelineIssue] = field(default_factory=list)
    final_specs: Set[str] = field(default_factory=set)
    #: Per-step (name, removed, added) trace for debugging/reporting.
    trace: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(
            issue.kind in (IssueKind.LEFTOVER, IssueKind.PHASE_ORDERING)
            for issue in self.issues
        )

    def leftovers(self) -> List[PipelineIssue]:
        return [i for i in self.issues if i.kind is IssueKind.LEFTOVER]

    def render(self) -> str:
        lines = ["=== static pipeline check ==="]
        for name, removed, added in self.trace:
            lines.append(
                f"  {name}: -{sorted(removed) or '{}'} "
                f"+{sorted(added) or '{}'}"
            )
        lines.append(f"  final: {sorted(self.final_specs)}")
        for issue in self.issues:
            lines.append(f"  {issue}")
        lines.append("  OK" if self.ok else "  FAILED")
        return "\n".join(lines)


StepLike = Union[str, TransformConditions]


def _resolve_steps(steps: Sequence[StepLike]) -> List[Optional[TransformConditions]]:
    resolved: List[Optional[TransformConditions]] = []
    for step in steps:
        if isinstance(step, TransformConditions):
            resolved.append(step)
        else:
            resolved.append(pass_conditions(step))
    return resolved


def check_pipeline(
    steps: Sequence[StepLike],
    input_specs: Iterable[str],
    final_allowed: Iterable[str] = ("llvm.*",),
) -> PipelineReport:
    """Statically check a pipeline of pass names / condition objects.

    ``input_specs`` is the set of op names initially present;
    ``final_allowed`` the specs permitted after the pipeline.
    """
    report = PipelineReport()
    present: Set[str] = set(input_specs)
    allowed = list(final_allowed)

    for position, conditions in enumerate(_resolve_steps(steps)):
        if conditions is None:
            name = (
                steps[position]
                if isinstance(steps[position], str)
                else "<unknown>"
            )
            report.issues.append(
                PipelineIssue(
                    IssueKind.UNKNOWN_CONDITIONS,
                    f"no declared conditions for {name!r}; treating as "
                    "identity",
                    position,
                    str(name),
                )
            )
            report.trace.append((name, set(), set()))
            continue
        removed = conditions.removes(present)
        if not removed and conditions.preconditions:
            report.issues.append(
                PipelineIssue(
                    IssueKind.PHASE_ORDERING,
                    f"preconditions {sorted(conditions.preconditions)} "
                    "match nothing at this point — the transform is dead "
                    "or mis-ordered",
                    position,
                    conditions.name,
                )
            )
        present -= removed
        present |= set(conditions.postconditions)
        report.trace.append((conditions.name, removed,
                             set(conditions.postconditions)))

    report.final_specs = set(present)
    leftover = {
        spec
        for spec in present
        if not any(spec_subsumes(allow, spec) for allow in allowed)
    }
    for spec in sorted(leftover):
        producer = _find_producer(report.trace, spec)
        suffix = f" (introduced by {producer})" if producer else ""
        report.issues.append(
            PipelineIssue(
                IssueKind.LEFTOVER,
                f"operation '{spec}' remains after the pipeline but the "
                f"final target only allows {sorted(allowed)}{suffix}",
            )
        )
    return report


def _find_producer(trace: List[tuple], spec: str) -> Optional[str]:
    producer = None
    for name, _removed, added in trace:
        if any(spec_subsumes(a, spec) or a == spec for a in added):
            producer = name
    return producer


def extract_pipeline_from_script(script: Operation) -> List[StepLike]:
    """Collect the checkable transform steps of a script, in order.

    ``apply_registered_pass`` steps resolve to the pass's conditions;
    other transform ops with declared conditions participate too (so
    loop transforms on ``scf.for`` after ``convert-scf-to-cf`` are
    flagged as phase-ordering violations).
    """
    steps: List[StepLike] = []
    for op in script.walk():
        if op.name == "transform.apply_registered_pass":
            pass_name_attr = op.attr("pass_name")
            steps.append(getattr(pass_name_attr, "value", ""))
        else:
            conditions = conditions_of(op)
            if conditions is not None and op.name.startswith("transform."):
                steps.append(conditions)
    return steps


def check_transform_script(
    script: Operation,
    input_specs: Iterable[str],
    final_allowed: Iterable[str] = ("llvm.*",),
) -> PipelineReport:
    """Statically check the pipeline embedded in a transform script."""
    return check_pipeline(
        extract_pipeline_from_script(script), input_specs, final_allowed
    )
