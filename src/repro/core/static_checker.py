"""Static pipeline checking (paper §3.3) — core facade.

The implementation lives in :mod:`repro.analysis.pipeline`, built on
the forward dataflow engine: extraction is call-site-ordered
(``transform.include`` expanded at each call site, never-included
``named_sequence`` bodies skipped) and ``transform.alternatives``
regions are checked as branches. This module re-exports the historical
``repro.core`` names.
"""

from __future__ import annotations

from ..analysis.pipeline import (
    IssueKind,
    PipelineBranch,
    PipelineIssue,
    PipelineReport,
    PipelineStep,
    StepLike,
    check_pipeline,
    check_transform_script,
    extract_pipeline_from_script,
    extract_pipeline_tree,
    flatten_pipeline,
)

__all__ = [
    "IssueKind",
    "PipelineBranch",
    "PipelineIssue",
    "PipelineReport",
    "PipelineStep",
    "StepLike",
    "check_pipeline",
    "check_transform_script",
    "extract_pipeline_from_script",
    "extract_pipeline_tree",
    "flatten_pipeline",
]
