"""Job scheduling over the worker pool.

The engine takes :class:`CompileJob`\\ s and produces
:class:`JobResult`\\ s, layering — in lookup order, cheapest first:

1. **static preflight** — scripts with definite static errors (the
   ``repro-lint`` analysis suite) are rejected in the front-end before
   a worker is ever occupied; the verdict is memoized per script text
   so a schedule library is linted once, not once per job;
2. **content-addressed cache** — see :mod:`repro.service.cache`;
3. **in-flight deduplication (single-flight)** — concurrent jobs with
   the same content key share one execution: followers wait on the
   leader's result instead of occupying a second worker;
4. **the pool** — a ``ProcessPoolExecutor``; IR crosses the process
   boundary as text. Per-job timeouts kill the hung worker and restart
   the pool so the slot is reclaimed (TIMEOUT), a worker crash
   (``BrokenProcessPool``) restarts the pool and retries the job once
   (then CRASHED), mirroring the PR 2 silenceable / definite / crash
   classification one level up.

``workers=0`` runs jobs in-process, strictly sequentially, through the
*same* worker function — the reference semantics pooled execution must
reproduce byte-identically.
"""

from __future__ import annotations

import enum
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, TimeoutError
from concurrent.futures.process import BrokenProcessPool
from concurrent.futures.thread import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .cache import CachedResult, CompilationCache, cache_key
from .worker import _ensure_registered, compile_job

ParamBindings = Mapping[str, Union[int, Sequence[int]]]

_job_ids = itertools.count()


class JobStatus(enum.Enum):
    """Terminal classification of one job, ordered roughly by severity."""

    SUCCESS = "success"
    #: Compiled, but the script reported a silenceable failure.
    SILENCEABLE = "silenceable"
    #: The interpreter aborted with a definite error.
    DEFINITE = "definite"
    #: Refused by static preflight before reaching a worker.
    REJECTED = "rejected"
    #: The worker process died (twice, when retry is enabled).
    CRASHED = "crashed"
    #: The per-job deadline elapsed; the hung worker was killed and
    #: the pool restarted so its slot is reclaimed.
    TIMEOUT = "timeout"
    #: Cancelled before a worker picked it up.
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class CompileJob:
    """One (payload module, transform script, parameter bindings) job.

    Both IR inputs are *text*; ``params`` override
    ``transform.param.constant`` ops carrying a matching ``binding``
    attribute (see :func:`repro.service.worker.bind_parameters`).
    """

    payload_text: str
    script_text: str
    params: Optional[ParamBindings] = None
    entry_point: Optional[str] = None
    #: Per-job deadline in seconds (None = engine default).
    timeout: Optional[float] = None
    job_id: str = field(
        default_factory=lambda: f"job-{next(_job_ids)}"
    )


@dataclass
class JobResult:
    """Outcome of one job, with enough telemetry for the metrics layer."""

    job_id: str
    status: JobStatus
    #: Printed transformed payload (None unless SUCCESS/SILENCEABLE).
    output: Optional[str] = None
    #: Rendered diagnostics (warnings, error chains, crash report).
    diagnostics: str = ""
    #: Content address of the job (shared by coalesced duplicates).
    key: str = ""
    cache_hit: bool = False
    #: The job waited on another in-flight execution of the same key.
    coalesced: bool = False
    #: Worker-side parse+interpret+print seconds (0.0 for cache hits).
    worker_seconds: float = 0.0
    #: End-to-end seconds inside the engine (queueing included).
    wall_seconds: float = 0.0
    #: Pool executions attempted (2 = retried after a worker crash).
    attempts: int = 0
    #: Interpreter counters from the worker (empty for cache hits).
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status in (JobStatus.SUCCESS, JobStatus.SILENCEABLE)


@dataclass
class EngineStats:
    """Aggregate engine accounting (monotonic; thread-safe under the
    engine's bookkeeping lock)."""

    submitted: int = 0
    completed: int = 0
    executed: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    rejected: int = 0
    crashes: int = 0
    worker_restarts: int = 0
    timeouts: int = 0
    cancelled: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class CompileEngine:
    """Schedules compile jobs over a process pool with caching.

    Thread-safe: :meth:`run_job` may be called concurrently from many
    dispatcher threads (the asyncio frontier does exactly that).
    """

    def __init__(self, workers: int = 1,
                 cache: Optional[CompilationCache] = None,
                 preflight: bool = True,
                 job_timeout: Optional[float] = None,
                 retry_crashed: bool = True,
                 normalize_keys: bool = True,
                 strict: bool = False,
                 profiler=None,
                 mp_context: Optional[str] = None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.cache = cache
        self.preflight = preflight
        self.job_timeout = job_timeout
        self.retry_crashed = retry_crashed
        #: Hash the *printed* (parse -> print normalized) payload and
        #: script so formatting differences cannot split the cache.
        self.normalize_keys = normalize_keys
        self.strict = strict
        #: Optional :class:`repro.profiling.Profiler`; the engine feeds
        #: its service section (per-job wall time, cache traffic,
        #: restarts) alongside whatever the workers record locally.
        self.profiler = profiler
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._pool_lock = threading.Lock()
        self._book_lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        #: script text -> (ok, rendered diagnostics); the preflight memo.
        self._script_gate: Dict[str, Tuple[bool, str]] = {}
        #: raw text -> normalized text memo for key normalization.
        self._normalized: Dict[str, str] = {}
        self._cancelled = threading.Event()
        self.stats = EngineStats()
        if workers > 0:
            # Create the pool eagerly, before any dispatcher threads
            # exist — fork-after-thread is where pools get fragile.
            self._ensure_pool()

    # -- lifecycle -----------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        context = None
        if self._mp_context is not None:
            context = multiprocessing.get_context(self._mp_context)
        elif "fork" in multiprocessing.get_all_start_methods():
            # Children inherit the op registries (and any test-local
            # transform ops) instead of re-importing under spawn.
            context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_ensure_registered,
        )

    def _ensure_pool(self) -> Tuple[ProcessPoolExecutor, int]:
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool, self._pool_generation

    def _restart_pool(self, seen_generation: int,
                      kill: bool = False) -> None:
        """Replace a broken pool; no-op if another thread already did.

        ``kill`` forcibly terminates the old pool's worker processes
        first — the timeout path needs this because a worker stuck in
        a job never notices ``shutdown(wait=False)`` and would occupy
        its slot forever. Other jobs in flight on the killed pool fail
        with ``BrokenProcessPool`` and take the crash/retry path
        against the fresh generation."""
        with self._pool_lock:
            if self._pool_generation != seen_generation:
                return
            if self._pool is not None:
                if kill:
                    processes = getattr(self._pool, "_processes", None)
                    for process in list((processes or {}).values()):
                        try:
                            process.terminate()
                        except Exception:
                            pass
                self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = self._make_pool()
            self._pool_generation += 1
        with self._book_lock:
            self.stats.worker_restarts += 1
        if self.profiler is not None:
            self.profiler.record_worker_restart()

    def shutdown(self, wait: bool = True) -> None:
        self._cancelled.set()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=wait, cancel_futures=True)
                self._pool = None

    def __enter__(self) -> "CompileEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- front-end stages ----------------------------------------------------

    def _normalize(self, text: str, filename: str) -> str:
        memo = self._normalized.get(text)
        if memo is not None:
            return memo
        from ..ir.parser import parse
        from ..ir.printer import print_op

        normalized = print_op(parse(text, filename))
        with self._book_lock:
            self._normalized[text] = normalized
        return normalized

    def _check_script(self, script_text: str,
                      entry_point: Optional[str]) -> Tuple[bool, str]:
        """Static gate, memoized per script text: (ok, diagnostics)."""
        gate_key = f"{entry_point or ''}\x00{script_text}"
        memo = self._script_gate.get(gate_key)
        if memo is not None:
            return memo
        from ..analysis.lint import lint_script
        from ..ir.parser import parse

        _ensure_registered()
        try:
            script = parse(script_text, "<script>")
        except Exception as error:
            verdict = (False, f"error: script does not parse: {error}")
        else:
            engine = lint_script(script, entry_point=entry_point)
            if engine.has_errors():
                verdict = (False, engine.render())
            else:
                verdict = (True, "")
        with self._book_lock:
            self._script_gate[gate_key] = verdict
        return verdict

    # -- execution -----------------------------------------------------------

    def run_job(self, job: CompileJob) -> JobResult:
        """Run one job through preflight -> cache -> pool; blocking."""
        start = time.perf_counter()
        with self._book_lock:
            self.stats.submitted += 1
        result = self._run_job_inner(job, start)
        result.wall_seconds = time.perf_counter() - start
        with self._book_lock:
            self.stats.completed += 1
        if self.profiler is not None:
            self.profiler.record_service_job(
                result.status.value, result.wall_seconds, result.cache_hit
            )
        return result

    def _run_job_inner(self, job: CompileJob,
                       start: float) -> JobResult:
        if self._cancelled.is_set():
            with self._book_lock:
                self.stats.cancelled += 1
            return JobResult(job.job_id, JobStatus.CANCELLED)

        payload_text = job.payload_text
        script_text = job.script_text
        if self.normalize_keys:
            try:
                payload_text = self._normalize(payload_text, "<payload>")
                script_text = self._normalize(script_text, "<script>")
            except Exception as error:
                with self._book_lock:
                    self.stats.rejected += 1
                return JobResult(
                    job.job_id, JobStatus.REJECTED,
                    diagnostics=f"error: input does not parse: {error}",
                )

        if self.preflight:
            ok, diagnostics = self._check_script(
                script_text, job.entry_point
            )
            if not ok:
                with self._book_lock:
                    self.stats.rejected += 1
                return JobResult(
                    job.job_id, JobStatus.REJECTED,
                    diagnostics=diagnostics,
                )

        key = cache_key(payload_text, script_text, job.params,
                        job.entry_point)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                with self._book_lock:
                    self.stats.cache_hits += 1
                return JobResult(
                    job.job_id, JobStatus(cached.status),
                    output=cached.output,
                    diagnostics=cached.diagnostics,
                    key=key, cache_hit=True,
                )

        # Single-flight: concurrent identical jobs share one execution.
        leader = False
        with self._book_lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = Future()
                self._inflight[key] = flight
                leader = True
        if not leader:
            result: JobResult = flight.result()
            with self._book_lock:
                self.stats.coalesced += 1
            follower = JobResult(
                job.job_id, result.status, output=result.output,
                diagnostics=result.diagnostics, key=key,
                coalesced=True, worker_seconds=result.worker_seconds,
                attempts=result.attempts, stats=dict(result.stats),
            )
            return follower

        try:
            result = self._execute(job, key, payload_text, script_text)
            if self.cache is not None and result.ok:
                self.cache.put(key, CachedResult(
                    result.status.value, result.output or "",
                    result.diagnostics,
                ))
        except BaseException as error:
            flight.set_exception(error)
            raise
        else:
            flight.set_result(result)
        finally:
            with self._book_lock:
                self._inflight.pop(key, None)
        return result

    def _execute(self, job: CompileJob, key: str, payload_text: str,
                 script_text: str) -> JobResult:
        """Actually run the job on a worker (or inline), with timeout
        handling and retry-once crash containment."""
        timeout = job.timeout if job.timeout is not None else self.job_timeout
        max_attempts = 2 if (self.retry_crashed and self.workers > 0) else 1
        attempts = 0
        while True:
            attempts += 1
            if self.workers == 0:
                raw = compile_job(
                    payload_text, script_text, job.params,
                    job.entry_point, strict=self.strict,
                )
            else:
                pool, generation = self._ensure_pool()
                future = pool.submit(
                    compile_job, payload_text, script_text, job.params,
                    job.entry_point, self.strict,
                )
                try:
                    raw = future.result(timeout=timeout)
                except TimeoutError:
                    # cancel() is a no-op on a running task: the
                    # worker would keep executing the job and starve
                    # the pool. Kill it and restart the generation so
                    # the slot is actually reclaimed.
                    future.cancel()
                    self._restart_pool(generation, kill=True)
                    with self._book_lock:
                        self.stats.timeouts += 1
                    return JobResult(
                        job.job_id, JobStatus.TIMEOUT, key=key,
                        diagnostics=(
                            f"error: job exceeded its {timeout:g}s "
                            "deadline; hung worker killed and the "
                            "pool restarted"
                        ),
                        attempts=attempts,
                    )
                except BrokenProcessPool as error:
                    with self._book_lock:
                        self.stats.crashes += 1
                    self._restart_pool(generation)
                    if attempts < max_attempts:
                        continue
                    return JobResult(
                        job.job_id, JobStatus.CRASHED, key=key,
                        diagnostics=(
                            "error: worker process died while "
                            f"compiling this job (x{attempts}): {error}"
                        ),
                        attempts=attempts,
                    )
                except Exception as error:
                    # Either a worker-side exception pickled back with
                    # strict=True (compile_job encodes everything else
                    # itself) or an infrastructure failure outside the
                    # worker barrier (e.g. unpicklable input). Strict
                    # mode must propagate raw exactly like the
                    # workers=0 reference path; otherwise classify,
                    # don't crash the service.
                    if self.strict:
                        raise
                    return JobResult(
                        job.job_id, JobStatus.DEFINITE, key=key,
                        diagnostics=(
                            f"error: {type(error).__name__}: {error}"
                        ),
                        attempts=attempts,
                    )
            with self._book_lock:
                self.stats.executed += 1
            return JobResult(
                job.job_id, JobStatus(raw["status"]),
                output=raw["output"], diagnostics=raw["diagnostics"],
                key=key, worker_seconds=raw["wall_seconds"],
                attempts=attempts, stats=dict(raw["stats"]),
            )

    def run_batch(self, jobs: Sequence[CompileJob]) -> List[JobResult]:
        """Run a batch; results come back in submission order.

        With ``workers=0`` the batch runs strictly sequentially in
        process; otherwise a small dispatcher thread per worker feeds
        the pool so distinct jobs overlap and duplicate jobs coalesce.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if self.workers == 0:
            return [self.run_job(job) for job in jobs]
        dispatchers = min(len(jobs), max(2 * self.workers, 2))
        with ThreadPoolExecutor(max_workers=dispatchers) as dispatch:
            return list(dispatch.map(self.run_job, jobs))
