"""Job scheduling over the worker pool.

The engine takes :class:`CompileJob`\\ s and produces
:class:`JobResult`\\ s, layering — in lookup order, cheapest first:

1. **static preflight** — scripts with definite static errors (the
   ``repro-lint`` analysis suite) are rejected in the front-end before
   a worker is ever occupied; the verdict is memoized per script text
   so a schedule library is linted once, not once per job;
2. **content-addressed cache** — see :mod:`repro.service.cache`;
3. **in-flight deduplication (single-flight)** — concurrent jobs with
   the same content key share one execution: followers wait on the
   leader's result instead of occupying a second worker;
4. **the pool** — a ``ProcessPoolExecutor``; IR crosses the process
   boundary as text. Per-job timeouts kill the hung worker and restart
   the pool so the slot is reclaimed (TIMEOUT); a worker crash
   (``BrokenProcessPool``) restarts the pool, mirroring the PR 2
   silenceable / definite / crash classification one level up.

Failure handling is driven by the resilience policies of
:mod:`repro.service.resilience` rather than hardcoded reflexes:

* a :class:`~repro.service.resilience.RetryPolicy` decides how many
  attempts a job gets, which failure statuses are retry-eligible, and
  the exponential backoff (deterministic jitter keyed on the job's
  content address) between attempts;
* a :class:`~repro.service.resilience.QuarantinePolicy` circuit-breaks
  poison jobs: content that crashes/hangs the pool ``threshold`` times
  reports POISONED instead of restarting the pool forever;
* a :class:`~repro.service.resilience.PoolHealthPolicy` detects crash
  loops (too many pool restarts in a sliding window) and degrades the
  engine to in-process execution with a diagnostic — reduced
  throughput, preserved liveness.

A :class:`~repro.testing.faults.FaultPlan` can be attached to inject
deterministic faults at the pool boundary (worker crash, worker hang,
pool break) — the chaos harness uses this to exercise every one of the
recovery paths above on every CI run.

``workers=0`` runs jobs in-process, strictly sequentially, through the
*same* worker function — the reference semantics pooled execution must
reproduce byte-identically.
"""

from __future__ import annotations

import enum
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, TimeoutError
from contextlib import nullcontext
from concurrent.futures.process import BrokenProcessPool
from concurrent.futures.thread import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..observability.tracing import SpanContext
from ..testing.faults import FaultPlan, FaultSite
from .cache import CachedResult, CompilationCache, cache_key, function_key
from .resilience import (
    JobQuarantine,
    PoolHealthMonitor,
    PoolHealthPolicy,
    QuarantinePolicy,
    RetryPolicy,
)
from .worker import _ensure_registered, compile_job

ParamBindings = Mapping[str, Union[int, Sequence[int]]]

_job_ids = itertools.count()


@dataclass(frozen=True)
class _PayloadInfo:
    """Derived facts about one payload text, memoized per raw text.

    Only *derived* data (digest strings, attribute snapshot) is kept —
    the parsed module is dropped, so nothing memoized can be mutated
    by later work. ``func_digests``/``module_attrs`` are populated
    only when the payload is a cleanly splittable all-function module
    (see :func:`repro.service.sharding.shardable_functions`); the
    attribute values themselves are immutable attribute objects.
    """

    digest: str
    attrs_digest: str
    module_attrs: Optional[Dict] = None
    func_digests: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class _ScriptInfo:
    """Derived facts about one script text, memoized per raw text."""

    digest: str
    func_shardable: bool = False


class JobStatus(enum.Enum):
    """Terminal classification of one job, ordered roughly by severity."""

    SUCCESS = "success"
    #: Compiled, but the script reported a silenceable failure.
    SILENCEABLE = "silenceable"
    #: The interpreter aborted with a definite error.
    DEFINITE = "definite"
    #: Refused by static preflight before reaching a worker.
    REJECTED = "rejected"
    #: The worker process died on every attempt the retry policy allowed.
    CRASHED = "crashed"
    #: The per-job deadline elapsed; the hung worker was killed and
    #: the pool restarted so its slot is reclaimed.
    TIMEOUT = "timeout"
    #: Cancelled before a worker picked it up.
    CANCELLED = "cancelled"
    #: Quarantined by the circuit breaker: this content crashed or
    #: hung the pool often enough that it is no longer allowed near a
    #: worker (see :class:`repro.service.resilience.QuarantinePolicy`).
    POISONED = "poisoned"


@dataclass(frozen=True)
class CompileJob:
    """One (payload module, transform script, parameter bindings) job.

    Both IR inputs are *text*; ``params`` override
    ``transform.param.constant`` ops carrying a matching ``binding``
    attribute (see :func:`repro.service.worker.bind_parameters`).
    """

    payload_text: str
    script_text: str
    params: Optional[ParamBindings] = None
    entry_point: Optional[str] = None
    #: Per-job deadline in seconds (None = engine default).
    timeout: Optional[float] = None
    job_id: str = field(
        default_factory=lambda: f"job-{next(_job_ids)}"
    )


@dataclass
class JobResult:
    """Outcome of one job, with enough telemetry for the metrics layer."""

    job_id: str
    status: JobStatus
    #: Printed transformed payload (None unless SUCCESS/SILENCEABLE).
    output: Optional[str] = None
    #: Rendered diagnostics (warnings, error chains, crash report).
    diagnostics: str = ""
    #: Content address of the job (shared by coalesced duplicates).
    key: str = ""
    cache_hit: bool = False
    #: Structural digest of the output module (when known).
    output_digest: Optional[str] = None
    #: The job waited on another in-flight execution of the same key.
    coalesced: bool = False
    #: The output was assembled from per-function cache entries.
    function_tier: bool = False
    #: Worker-side parse+interpret+print seconds (0.0 for cache hits).
    worker_seconds: float = 0.0
    #: End-to-end seconds inside the engine (queueing included).
    wall_seconds: float = 0.0
    #: Pool executions attempted (2 = retried after a worker crash).
    attempts: int = 0
    #: Interpreter counters from the worker (empty for cache hits).
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status in (JobStatus.SUCCESS, JobStatus.SILENCEABLE)


@dataclass
class EngineStats:
    """Aggregate engine accounting (monotonic; thread-safe under the
    engine's bookkeeping lock)."""

    submitted: int = 0
    completed: int = 0
    executed: int = 0
    cache_hits: int = 0
    #: Jobs whose output was assembled from per-function digest
    #: cache entries (fully or after compiling only the misses).
    function_tier_hits: int = 0
    coalesced: int = 0
    rejected: int = 0
    crashes: int = 0
    worker_restarts: int = 0
    timeouts: int = 0
    cancelled: int = 0
    #: Extra executions granted by the retry policy (beyond the first).
    retries: int = 0
    #: Jobs that finished POISONED (quarantined by the circuit breaker).
    quarantined: int = 0
    #: Times the engine degraded to in-process execution after
    #: crash-loop detection (0 or 1 per engine lifetime).
    pool_degradations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class CompileEngine:
    """Schedules compile jobs over a process pool with caching.

    Thread-safe: :meth:`run_job` may be called concurrently from many
    dispatcher threads (the asyncio frontier does exactly that).
    """

    def __init__(self, workers: int = 1,
                 cache: Optional[CompilationCache] = None,
                 preflight: bool = True,
                 job_timeout: Optional[float] = None,
                 retry_crashed: bool = True,
                 normalize_keys: bool = True,
                 function_tier: bool = True,
                 strict: bool = False,
                 profiler=None,
                 mp_context: Optional[str] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 quarantine: Optional[QuarantinePolicy] = QuarantinePolicy(),
                 pool_health: Optional[PoolHealthPolicy] = PoolHealthPolicy(),
                 faults: Optional[FaultPlan] = None,
                 tracer=None,
                 events=None):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.cache = cache
        self.preflight = preflight
        self.job_timeout = job_timeout
        self.retry_crashed = retry_crashed
        #: How failed pool executions are re-attempted. The legacy
        #: ``retry_crashed`` flag maps onto the default policy
        #: (retry-once on crash, no backoff) so existing callers keep
        #: their exact semantics.
        self.retry_policy = retry_policy if retry_policy is not None else (
            RetryPolicy(max_attempts=2) if retry_crashed
            else RetryPolicy.none()
        )
        #: Circuit breaker for poison jobs (None disables).
        self._quarantine = (JobQuarantine(quarantine)
                            if quarantine is not None else None)
        #: Crash-loop detector (None disables degradation).
        self._pool_health = (PoolHealthMonitor(pool_health)
                             if pool_health is not None else None)
        #: Deterministic fault schedule (testing only; None in prod).
        self.faults = faults
        #: True once crash-loop detection has demoted the engine to
        #: in-process execution; ``degraded_diagnostic`` carries the
        #: one-line reason.
        self._degraded = False
        self.degraded_diagnostic: Optional[str] = None
        #: Key jobs on *structural digests* of the parsed inputs so
        #: formatting differences cannot split the cache. (Digest
        #: equality implies byte-identical printed form, so this
        #: subsumes the old parse->reprint normalization without the
        #: whole-module string work on every lookup.)
        self.normalize_keys = normalize_keys
        #: Consult/populate the per-function digest cache tier for
        #: multi-function payloads under provably function-local
        #: schedules (requires ``cache`` and ``normalize_keys``).
        self.function_tier = function_tier
        self.strict = strict
        #: Optional :class:`repro.profiling.Profiler`; the engine feeds
        #: its service section (per-job wall time, cache traffic,
        #: restarts) alongside whatever the workers record locally.
        self.profiler = profiler
        #: Optional :class:`repro.observability.Tracer`: per-job spans
        #: (preflight, cache lookup, single-flight wait, per-attempt
        #: dispatch) plus the worker-side spans shipped back across
        #: the pool boundary. None = tracing disabled, zero overhead
        #: beyond the branch checks.
        self.tracer = tracer
        #: Optional :class:`repro.observability.EventLog`: one record
        #: per job state transition, correlated by job id.
        self.events = events
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._pool_lock = threading.Lock()
        self._book_lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        #: script text -> (ok, rendered diagnostics); the preflight memo.
        self._script_gate: Dict[str, Tuple[bool, str]] = {}
        #: raw text -> derived digests, for key normalization and the
        #: function tier (one parse per unique input text, ever).
        self._payload_infos: Dict[str, _PayloadInfo] = {}
        self._script_infos: Dict[str, _ScriptInfo] = {}
        self._cancelled = threading.Event()
        self.stats = EngineStats()
        if workers > 0:
            # Create the pool eagerly, before any dispatcher threads
            # exist — fork-after-thread is where pools get fragile.
            self._ensure_pool()

    # -- lifecycle -----------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        context = None
        if self._mp_context is not None:
            context = multiprocessing.get_context(self._mp_context)
        elif "fork" in multiprocessing.get_all_start_methods():
            # Children inherit the op registries (and any test-local
            # transform ops) instead of re-importing under spawn.
            context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_ensure_registered,
        )

    def _ensure_pool(self) -> Tuple[Optional[ProcessPoolExecutor], int]:
        """The live pool, or (None, generation) once degraded."""
        with self._pool_lock:
            if self._degraded:
                return None, self._pool_generation
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool, self._pool_generation

    @staticmethod
    def _terminate(pool: ProcessPoolExecutor) -> None:
        """Forcibly kill a pool's worker processes (hung workers never
        notice ``shutdown(wait=False)`` and would run forever)."""
        processes = getattr(pool, "_processes", None)
        for process in list((processes or {}).values()):
            try:
                process.terminate()
            except Exception:
                pass

    def _restart_pool(self, seen_generation: int,
                      kill_pool: Optional[ProcessPoolExecutor] = None
                      ) -> None:
        """Replace a broken pool — exactly once per generation.

        The generation guard guarantees that N threads observing the
        same broken/hung generation produce exactly one restart (and
        one ``worker_restarts`` increment): the first thread through
        the lock replaces the pool and bumps the generation, the rest
        see the mismatch and back off. ``kill_pool`` is the pool whose
        worker the caller timed out: its processes are terminated
        *even when the generation already moved on* — the loser of the
        race must still reap its hung worker, which the winner's
        ``shutdown(wait=False)`` left running. Other jobs in flight on
        a killed pool fail with ``BrokenProcessPool`` and take the
        crash/retry path against the fresh generation."""
        stale: Optional[ProcessPoolExecutor] = None
        restarted = False
        with self._pool_lock:
            if self._pool_generation != seen_generation or self._degraded:
                # Lost the race (or the engine degraded meanwhile):
                # no second restart, but the hung workers the caller
                # wanted dead still need killing.
                stale = kill_pool
            else:
                if kill_pool is not None:
                    self._terminate(kill_pool)
                if self._pool is not None:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = self._make_pool()
                self._pool_generation += 1
                restarted = True
        if stale is not None:
            self._terminate(stale)
        if not restarted:
            return
        with self._book_lock:
            self.stats.worker_restarts += 1
        if self.profiler is not None:
            self.profiler.record_worker_restart()
        if (self._pool_health is not None
                and self._pool_health.record_restart()):
            self._degrade_pool()

    def _degrade_pool(self) -> None:
        """Crash-loop detected: give up on the pool and fall back to
        in-process execution. Liveness over throughput — jobs keep
        completing (slowly, one at a time) instead of feeding an
        endless spawn/crash cycle."""
        with self._pool_lock:
            if self._degraded:
                return
            self._degraded = True
            pool, self._pool = self._pool, None
            self._pool_generation += 1
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
            self._terminate(pool)
        policy = self._pool_health.policy
        self.degraded_diagnostic = (
            f"warning: worker pool degraded to in-process execution "
            f"after {policy.max_restarts} restarts within "
            f"{policy.window_seconds:g}s (crash-loop detection); "
            "throughput is reduced but the service stays live"
        )
        with self._book_lock:
            self.stats.pool_degradations += 1
        if self.profiler is not None:
            self.profiler.record_pool_degradation()
        if self.events is not None:
            # Engine-wide, not job-scoped: no correlation id.
            self.events.emit("DEGRADED",
                             diagnostic=self.degraded_diagnostic)

    @property
    def degraded(self) -> bool:
        """True once crash-loop detection disabled the pool."""
        return self._degraded

    def shutdown(self, wait: bool = True) -> None:
        self._cancelled.set()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=wait, cancel_futures=True)
                self._pool = None

    def __enter__(self) -> "CompileEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- front-end stages ----------------------------------------------------

    def _payload_info(self, text: str) -> _PayloadInfo:
        memo = self._payload_infos.get(text)
        if memo is not None:
            return memo
        from ..ir.hashing import attributes_digest, op_digest
        from ..ir.parser import parse
        from .sharding import shardable_functions

        payload = parse(text, "<payload>")
        func_digests = None
        module_attrs = None
        if self.function_tier:
            functions = shardable_functions(payload)
            if functions is not None:
                func_digests = tuple(op_digest(f) for f in functions)
                module_attrs = dict(payload.attributes)
        info = _PayloadInfo(
            digest=op_digest(payload),
            attrs_digest=attributes_digest(payload),
            module_attrs=module_attrs,
            func_digests=func_digests,
        )
        with self._book_lock:
            self._payload_infos[text] = info
        return info

    def _script_info(self, text: str) -> _ScriptInfo:
        memo = self._script_infos.get(text)
        if memo is not None:
            return memo
        from ..ir.hashing import op_digest
        from ..ir.parser import parse
        from .sharding import is_func_shardable

        script = parse(text, "<script>")
        info = _ScriptInfo(
            digest=op_digest(script),
            func_shardable=(self.function_tier
                            and is_func_shardable(script)),
        )
        with self._book_lock:
            self._script_infos[text] = info
        return info

    def _check_script(self, script_text: str,
                      entry_point: Optional[str]) -> Tuple[bool, str]:
        """Static gate, memoized per script text: (ok, diagnostics)."""
        gate_key = f"{entry_point or ''}\x00{script_text}"
        memo = self._script_gate.get(gate_key)
        if memo is not None:
            return memo
        from ..analysis.lint import lint_script
        from ..ir.parser import parse

        _ensure_registered()
        try:
            script = parse(script_text, "<script>")
        except Exception as error:
            verdict = (False, f"error: script does not parse: {error}")
        else:
            engine = lint_script(script, entry_point=entry_point)
            if engine.has_errors():
                verdict = (False, engine.render())
            else:
                verdict = (True, "")
        with self._book_lock:
            self._script_gate[gate_key] = verdict
        return verdict

    # -- execution -----------------------------------------------------------

    def run_job(self, job: CompileJob,
                parent_span=None) -> JobResult:
        """Run one job through preflight -> cache -> pool; blocking.

        ``parent_span`` parents this job's trace under an existing
        span (the frontier's admission span, or a parent job's span
        for function-tier sub-jobs); with no parent the job span is a
        trace root.
        """
        start = time.perf_counter()
        with self._book_lock:
            self.stats.submitted += 1
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "engine.job", parent=parent_span,
                attributes={"job_id": job.job_id},
            )
        if self.events is not None:
            self.events.emit("STARTED", job_id=job.job_id)
        try:
            result = self._run_job_inner(job, start, span)
        except BaseException as error:
            if span is not None:
                span.attributes["exception"] = (
                    f"{type(error).__name__}: {error}"
                )
                self.tracer.end_span(span, "error")
            raise
        result.wall_seconds = time.perf_counter() - start
        with self._book_lock:
            self.stats.completed += 1
        if self.profiler is not None:
            self.profiler.record_service_job(
                result.status.value, result.wall_seconds, result.cache_hit
            )
        if span is not None:
            span.attributes["cache_hit"] = result.cache_hit
            self.tracer.end_span(
                span, "ok" if result.ok else result.status.value
            )
        if self.events is not None:
            self.events.emit(
                "COMPLETED", job_id=job.job_id,
                status=result.status.value, cache_hit=result.cache_hit,
                coalesced=result.coalesced, attempts=result.attempts,
                wall_seconds=result.wall_seconds,
            )
        return result

    def _run_job_inner(self, job: CompileJob, start: float,
                       span=None) -> JobResult:
        def _stage(name: str):
            # One child span per engine stage; a no-op context manager
            # when tracing is disabled.
            return (self.tracer.span(name, parent=span)
                    if self.tracer is not None else nullcontext())

        def _reject(diagnostics: str) -> JobResult:
            with self._book_lock:
                self.stats.rejected += 1
            if self.events is not None:
                self.events.emit("REJECTED", job_id=job.job_id)
            return JobResult(
                job.job_id, JobStatus.REJECTED, diagnostics=diagnostics
            )

        if self._cancelled.is_set():
            with self._book_lock:
                self.stats.cancelled += 1
            return JobResult(job.job_id, JobStatus.CANCELLED)

        payload_text = job.payload_text
        script_text = job.script_text
        payload_info: Optional[_PayloadInfo] = None
        script_info: Optional[_ScriptInfo] = None
        with _stage("engine.preflight"):
            if self.normalize_keys:
                # Key on structural digests instead of reprinted text:
                # one parse per unique input ever, O(digest) per job
                # after. Workers receive the *raw* text — they parse
                # and reprint themselves, so the output is identical
                # either way.
                try:
                    payload_info = self._payload_info(payload_text)
                    script_info = self._script_info(script_text)
                except Exception as error:
                    return _reject(
                        f"error: input does not parse: {error}"
                    )

            if self.preflight:
                ok, diagnostics = self._check_script(
                    script_text, job.entry_point
                )
                if not ok:
                    return _reject(diagnostics)

        if payload_info is not None and script_info is not None:
            key = cache_key(payload_info.digest, script_info.digest,
                            job.params, job.entry_point)
        else:
            key = cache_key(payload_text, script_text, job.params,
                            job.entry_point)
        if self.cache is not None:
            with _stage("cache.lookup") as lookup_span:
                cached = self.cache.get(key)
                if lookup_span is not None:
                    lookup_span.attributes["hit"] = cached is not None
            if cached is not None:
                with self._book_lock:
                    self.stats.cache_hits += 1
                if self.events is not None:
                    self.events.emit("CACHE_HIT", job_id=job.job_id,
                                     key=key)
                return JobResult(
                    job.job_id, JobStatus(cached.status),
                    output=cached.output,
                    diagnostics=cached.diagnostics,
                    key=key, cache_hit=True,
                    output_digest=cached.output_digest,
                )

        # Circuit breaker: content that repeatedly crashed or hung the
        # pool is refused before it can occupy (and kill) a worker.
        if self._quarantine is not None and self._quarantine.is_poisoned(key):
            return self._poisoned_result(job, key)

        # Single-flight: concurrent identical jobs share one execution.
        leader = False
        with self._book_lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = Future()
                self._inflight[key] = flight
                leader = True
        if leader and self.cache is not None:
            # Double-check after winning the in-flight slot: a previous
            # leader for this key may have populated the cache between
            # our (missed) lookup above and its in-flight pop. Without
            # this the duplicate recompiles; stats-neutral on a miss
            # (the first lookup already counted it).
            cached = self.cache.get(key, count_miss=False)
            if cached is not None:
                with self._book_lock:
                    self.stats.cache_hits += 1
                    self._inflight.pop(key, None)
                if self.events is not None:
                    self.events.emit("CACHE_HIT", job_id=job.job_id,
                                     key=key)
                result = JobResult(
                    job.job_id, JobStatus(cached.status),
                    output=cached.output,
                    diagnostics=cached.diagnostics,
                    key=key, cache_hit=True,
                    output_digest=cached.output_digest,
                )
                flight.set_result(result)
                return result
        if not leader:
            with _stage("singleflight.wait"):
                result: JobResult = flight.result()
            if self.events is not None:
                self.events.emit("COALESCED", job_id=job.job_id,
                                 key=key, leader_status=result.status.value)
            with self._book_lock:
                self.stats.coalesced += 1
                if result.status is JobStatus.POISONED:
                    self.stats.quarantined += 1
            if (result.status is JobStatus.POISONED
                    and self.profiler is not None):
                self.profiler.record_quarantine()
            follower = JobResult(
                job.job_id, result.status, output=result.output,
                diagnostics=result.diagnostics, key=key,
                coalesced=True, worker_seconds=result.worker_seconds,
                attempts=result.attempts, stats=dict(result.stats),
                output_digest=result.output_digest,
                function_tier=result.function_tier,
            )
            return follower

        try:
            result = None
            if (self.cache is not None
                    and payload_info is not None
                    and script_info is not None
                    and script_info.func_shardable
                    and payload_info.func_digests is not None
                    # A single-function payload's shard is itself:
                    # tier lookup would recurse onto this very job.
                    and len(payload_info.func_digests) >= 2
                    and job.entry_point is None):
                result = self._assemble_from_function_tier(
                    job, key, payload_info, script_info, span
                )
                if result is not None and self.events is not None:
                    self.events.emit(
                        "ASSEMBLED", job_id=job.job_id, key=key,
                        cache_hit=result.cache_hit,
                    )
            if result is None:
                result = self._execute(job, key, payload_text,
                                       script_text, span)
                self._populate_function_tier(
                    job, result, payload_info, script_info
                )
            if self.cache is not None and result.ok:
                self.cache.put(key, CachedResult(
                    result.status.value, result.output or "",
                    result.diagnostics, result.output_digest,
                ))
        except BaseException as error:
            flight.set_exception(error)
            raise
        else:
            flight.set_result(result)
        finally:
            with self._book_lock:
                self._inflight.pop(key, None)
        return result

    # -- function tier -------------------------------------------------------

    def _function_payload_texts(
            self, payload_text: str) -> Optional[List[str]]:
        """One standalone single-function module text per top-level
        func (attribute-less wrappers: function-tier entries must not
        depend on which module a function arrived in)."""
        from ..dialects import builtin
        from ..ir.parser import parse
        from ..ir.printer import print_op
        from .sharding import shardable_functions

        payload = parse(payload_text, "<payload>")
        functions = shardable_functions(payload)
        if functions is None:
            return None
        texts = []
        for function in functions:
            wrapper = builtin.module()
            wrapper.body.append(function.clone())
            texts.append(print_op(wrapper))
        return texts

    def _assemble_from_function_tier(
            self, job: CompileJob, key: str,
            payload_info: _PayloadInfo,
            script_info: _ScriptInfo,
            span=None) -> Optional[JobResult]:
        """Serve a multi-function job from per-function cache entries.

        Functions whose (digest, script digest, params) entry is
        present are reused; the rest are compiled as single-function
        sub-jobs through :meth:`run_job` — which gives them the whole
        pipeline for free (single-flight dedup against other parents
        missing the same function, crash containment, retry) and lets
        their own populate pass fill the tier. Returns None whenever
        anything is less than a clean success — the caller falls back
        to the whole-module execution path, keeping silenceable-skip
        semantics whole-module.
        """
        assert self.cache is not None
        entries = [
            self.cache.get_function(
                function_key(digest, script_info.digest, job.params)
            )
            for digest in payload_info.func_digests
        ]

        def usable(entry: Optional[CachedResult]) -> bool:
            return (entry is not None and entry.status == "success"
                    and not entry.diagnostics)

        all_hit = all(usable(entry) for entry in entries)
        if all_hit:
            texts = [entry.output for entry in entries]
        else:
            if not any(usable(entry) for entry in entries):
                # Nothing to reuse: the whole-module path is strictly
                # better (one execution instead of N).
                return None
            sub_payloads = self._function_payload_texts(job.payload_text)
            if (sub_payloads is None
                    or len(sub_payloads) != len(entries)):
                return None
            texts = []
            for index, entry in enumerate(entries):
                if usable(entry):
                    texts.append(entry.output)
                    continue
                sub = self.run_job(CompileJob(
                    payload_text=sub_payloads[index],
                    script_text=job.script_text,
                    params=job.params,
                    timeout=job.timeout,
                    job_id=f"{job.job_id}/fn{index}",
                ), parent_span=span)
                if sub.status is not JobStatus.SUCCESS or sub.diagnostics:
                    return None
                texts.append(sub.output or "")
        from .sharding import assemble_functions

        try:
            output, output_digest = assemble_functions(
                payload_info.module_attrs or {}, texts
            )
        except Exception:
            return None
        with self._book_lock:
            self.stats.function_tier_hits += 1
            if all_hit:
                self.stats.cache_hits += 1
        return JobResult(
            job.job_id, JobStatus.SUCCESS, output=output,
            key=key, cache_hit=all_hit, function_tier=True,
            output_digest=output_digest,
        )

    def _populate_function_tier(
            self, job: CompileJob, result: JobResult,
            payload_info: Optional[_PayloadInfo],
            script_info: Optional[_ScriptInfo]) -> None:
        """After a clean whole-module success, store each output
        function under its *input* function's digest.

        Guarded by the same backstops as ``--jobs`` reassembly: the
        output must still be an all-function module with unchanged
        module attributes (digest compare) and an unchanged function
        count — anything else means the schedule escaped the
        function-local contract, and nothing is stored."""
        if (self.cache is None
                or payload_info is None
                or script_info is None
                or not script_info.func_shardable
                or not payload_info.func_digests
                or job.entry_point is not None
                or result.status is not JobStatus.SUCCESS
                or result.diagnostics
                or not result.output):
            return
        from ..dialects import builtin
        from ..ir.hashing import attributes_digest, op_digest
        from ..ir.parser import parse
        from ..ir.printer import print_op

        try:
            out = parse(result.output, "<output>")
        except Exception:
            return
        if out.name != "builtin.module":
            return
        if attributes_digest(out) != payload_info.attrs_digest:
            return
        tops = list(out.regions[0].entry_block.ops)
        if len(tops) != len(payload_info.func_digests):
            return
        if any(op.name != "func.func" for op in tops):
            return
        for digest, function in zip(payload_info.func_digests, tops):
            wrapper = builtin.module()
            out.regions[0].entry_block.remove(function)
            wrapper.body.append(function)
            self.cache.put_function(
                function_key(digest, script_info.digest, job.params),
                CachedResult("success", print_op(wrapper), "",
                             op_digest(wrapper)),
            )

    def _poisoned_result(self, job: CompileJob, key: str,
                         attempts: int = 0) -> JobResult:
        """A POISONED terminal result, with stats/profiler accounting."""
        assert self._quarantine is not None
        with self._book_lock:
            self.stats.quarantined += 1
        if self.profiler is not None:
            self.profiler.record_quarantine()
        if self.events is not None:
            self.events.emit("POISONED", job_id=job.job_id, key=key)
        return JobResult(
            job.job_id, JobStatus.POISONED, key=key,
            diagnostics=self._quarantine.diagnose(key),
            attempts=attempts,
        )

    def _handle_pool_failure(self, job: CompileJob, key: str,
                             status: str, attempts: int,
                             terminal: JobResult
                             ) -> Tuple[bool, Optional[JobResult]]:
        """Shared crash/timeout policy step.

        Records the failure with the quarantine ledger, then asks the
        retry policy for another attempt. Returns ``(retry, result)``:
        retry=True means the caller should loop (after the deterministic
        backoff already slept here); otherwise ``result`` is the
        terminal outcome — ``terminal`` as given, or POISONED when this
        failure tripped the circuit breaker."""
        if self._quarantine is not None:
            self._quarantine.record_failure(key, status)
            if self._quarantine.is_poisoned(key):
                return False, self._poisoned_result(job, key, attempts)
        if self.retry_policy.should_retry(status, attempts):
            backoff = self.retry_policy.backoff_seconds(key, attempts)
            with self._book_lock:
                self.stats.retries += 1
            if self.profiler is not None:
                self.profiler.record_retry(backoff)
            if self.events is not None:
                self.events.emit(
                    "RETRIED", job_id=job.job_id, key=key,
                    failure=status, attempt=attempts, backoff=backoff,
                )
            if backoff > 0:
                time.sleep(backoff)
            return True, None
        return False, terminal

    def _execute(self, job: CompileJob, key: str, payload_text: str,
                 script_text: str, span=None) -> JobResult:
        """Actually run the job on a worker (or inline), with timeout
        handling and policy-driven crash/timeout containment.

        Each pool attempt gets its own ``engine.dispatch`` child span;
        the worker receives that span's context (``trace=``) so the
        spans it records in its own process — parse, interpret with one
        child per top-level transform op, print — come back in the
        result payload already parented under this attempt, and
        :meth:`Tracer.record` stitches them into the engine-side trace.
        """
        timeout = job.timeout if job.timeout is not None else self.job_timeout
        attempts = 0
        while True:
            attempts += 1
            attempt_span = None
            trace = None
            if self.tracer is not None:
                attempt_span = self.tracer.start_span(
                    "engine.dispatch", parent=span,
                    attributes={"job_id": job.job_id,
                                "attempt": attempts},
                )
                trace = SpanContext(
                    self.tracer.trace_id, attempt_span.span_id
                ).to_dict()

            def _end_attempt(status: str) -> None:
                if attempt_span is not None:
                    self.tracer.end_span(attempt_span, status)

            pool = None
            if self.workers > 0 and not self._degraded:
                pool, generation = self._ensure_pool()
            if self.events is not None:
                self.events.emit(
                    "DISPATCHED", job_id=job.job_id, key=key,
                    attempt=attempts, pooled=pool is not None,
                )
            if pool is None:
                # workers=0 reference mode, or the engine degraded
                # after crash-loop detection. Worker faults are never
                # injected here: an in-process os._exit would take the
                # whole service down, which is exactly what the pool
                # boundary exists to prevent.
                try:
                    raw = compile_job(
                        payload_text, script_text, job.params,
                        job.entry_point, strict=self.strict,
                        trace=trace,
                    )
                except BaseException:
                    _end_attempt("error")
                    raise
            else:
                inject = None
                if self.faults is not None:
                    inject = self.faults.worker_fault(key, attempts)
                future = pool.submit(
                    compile_job, payload_text, script_text, job.params,
                    job.entry_point, self.strict, inject, trace,
                )
                if self.faults is not None and self.faults.fire(
                        FaultSite.POOL_BREAK, f"{key}#attempt{attempts}"):
                    # Externally induced pool collapse (OOM killer):
                    # every worker dies under the dispatched job.
                    self._terminate(pool)
                try:
                    raw = future.result(timeout=timeout)
                except TimeoutError:
                    # cancel() is a no-op on a running task: the
                    # worker would keep executing the job and starve
                    # the pool. Kill it and restart the generation so
                    # the slot is actually reclaimed.
                    future.cancel()
                    self._restart_pool(generation, kill_pool=pool)
                    with self._book_lock:
                        self.stats.timeouts += 1
                    _end_attempt("timeout")
                    if self.events is not None:
                        self.events.emit(
                            "TIMEOUT", job_id=job.job_id, key=key,
                            attempt=attempts, deadline=timeout,
                        )
                    retry, result = self._handle_pool_failure(
                        job, key, "timeout", attempts,
                        JobResult(
                            job.job_id, JobStatus.TIMEOUT, key=key,
                            diagnostics=(
                                f"error: job exceeded its {timeout:g}s "
                                "deadline; hung worker killed and the "
                                "pool restarted"
                            ),
                            attempts=attempts,
                        ),
                    )
                    if retry:
                        continue
                    return result
                except BrokenProcessPool as error:
                    with self._book_lock:
                        self.stats.crashes += 1
                    self._restart_pool(generation)
                    _end_attempt("crashed")
                    if self.events is not None:
                        self.events.emit(
                            "CRASHED", job_id=job.job_id, key=key,
                            attempt=attempts,
                        )
                    retry, result = self._handle_pool_failure(
                        job, key, "crashed", attempts,
                        JobResult(
                            job.job_id, JobStatus.CRASHED, key=key,
                            diagnostics=(
                                "error: worker process died while "
                                f"compiling this job (x{attempts}): "
                                f"{error}"
                            ),
                            attempts=attempts,
                        ),
                    )
                    if retry:
                        continue
                    return result
                except Exception as error:
                    # Either a worker-side exception pickled back with
                    # strict=True (compile_job encodes everything else
                    # itself) or an infrastructure failure outside the
                    # worker barrier (e.g. unpicklable input). Strict
                    # mode must propagate raw exactly like the
                    # workers=0 reference path; otherwise classify,
                    # don't crash the service.
                    _end_attempt("error")
                    if self.strict:
                        raise
                    return JobResult(
                        job.job_id, JobStatus.DEFINITE, key=key,
                        diagnostics=(
                            f"error: {type(error).__name__}: {error}"
                        ),
                        attempts=attempts,
                    )
            with self._book_lock:
                self.stats.executed += 1
            if self.tracer is not None and raw.get("spans"):
                # Absorb the worker-side spans (already parented under
                # this attempt via the propagated context).
                self.tracer.record(raw["spans"])
            _end_attempt("ok" if raw["status"] == "success"
                         else str(raw["status"]))
            return JobResult(
                job.job_id, JobStatus(raw["status"]),
                output=raw["output"], diagnostics=raw["diagnostics"],
                key=key, worker_seconds=raw["wall_seconds"],
                attempts=attempts, stats=dict(raw["stats"]),
                output_digest=raw.get("output_digest"),
            )

    def run_batch(self, jobs: Sequence[CompileJob]) -> List[JobResult]:
        """Run a batch; results come back in submission order.

        With ``workers=0`` the batch runs strictly sequentially in
        process; otherwise a small dispatcher thread per worker feeds
        the pool so distinct jobs overlap and duplicate jobs coalesce.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if self.workers == 0:
            return [self.run_job(job) for job in jobs]
        dispatchers = min(len(jobs), max(2 * self.workers, 2))
        with ThreadPoolExecutor(max_workers=dispatchers) as dispatch:
            return list(dispatch.map(self.run_job, jobs))
