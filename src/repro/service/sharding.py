"""Per-function fan-out for ``repro-opt --jobs N``.

A payload module whose top level is nothing but ``func.func`` ops can
be compiled one function per job — *if* the schedule provably
distributes over functions. :func:`is_func_shardable` is the
conservative gate: every op in the entry sequence must come from a
whitelist of transforms whose effect is local to each matched payload
op (navigation, annotation, loop restructuring, greedy pattern
application), every ``transform.match_op`` must select *all*
matches — positional selection (``first``/``last``) is inherently
whole-module — and every ``transform.get_parent_op`` must name a
parent below the module (climbing to ``builtin.module`` would hand
later transforms the shard's root, whose mutations — e.g.
``transform.annotate`` — land on a per-shard clone and silently
vanish in reassembly).

Silenceable failures are also whole-module state (they skip the rest
of the enclosing block for *every* function), so the ``--jobs`` driver
falls back to a sequential whole-module run the moment any shard
reports anything but clean success. The contract — enforced by test —
is that fan-out output is byte-identical to ``--jobs 1``.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.core import Operation

#: Transforms whose payload effect distributes over disjoint functions.
SHARDABLE_OPS = frozenset({
    "transform.sequence",
    "transform.yield",
    "transform.match_op",
    "transform.get_parent_op",
    "transform.select",
    "transform.cast",
    "transform.merge_handles",
    "transform.annotate",
    "transform.param.constant",
    "transform.loop.tile",
    "transform.loop.split",
    "transform.loop.unroll",
    "transform.loop.interchange",
    "transform.loop.hoist",
    "transform.loop.vectorize",
    "transform.loop.peel",
    "transform.structured.generalize",
    "transform.structured.lower_to_loops",
    "transform.apply_patterns",
})


def _entry_sequence(script: Operation) -> Optional[Operation]:
    """The unnamed entry ``transform.sequence``, mirroring the
    interpreter's discovery — None when the script carries macros or
    named entry points (those may be matched positionally or included
    with module-scoped arguments, so sharding stays out)."""
    if script.name == "transform.sequence":
        return script
    if script.name != "builtin.module":
        return None
    entry: Optional[Operation] = None
    for block in script.regions[0].blocks:
        for op in block.ops:
            if op.name == "transform.named_sequence":
                return None
            if op.name == "transform.sequence":
                if entry is not None:
                    return None
                entry = op
    return entry


def is_func_shardable(script: Operation) -> bool:
    """True when the schedule provably distributes over functions."""
    entry = _entry_sequence(script)
    if entry is None:
        return False
    for op in entry.walk():
        if op is entry:
            continue
        if op.name.startswith("transform.pattern."):
            continue  # apply_patterns body markers
        if op.name not in SHARDABLE_OPS:
            return False
        if op.name == "transform.match_op":
            position = op.attr("position")
            if position is not None and \
                    getattr(position, "value", "all") != "all":
                return False
        if op.name == "transform.get_parent_op":
            wanted = getattr(op.attr("op_name"), "value", None)
            # No op_name means "immediate parent", which for a
            # top-level func is the module itself; an explicit
            # builtin.module target climbs there on purpose. Either
            # way the handle escapes the shard's function.
            if not wanted or wanted == "builtin.module":
                return False
    return True


def shardable_functions(payload: Operation) -> Optional[List[Operation]]:
    """The top-level ``func.func`` ops of a cleanly splittable module.

    Returns the functions themselves (no cloning) when the module's
    top level holds nothing but call-free ``func.func`` ops; None when
    anything else appears at the top level (globals and declarations
    would need duplicating into every shard, which stops reassembled
    output being byte-identical) or any function contains a call
    (cross-function references don't survive splitting).
    """
    if payload.name != "builtin.module":
        return None
    tops = list(payload.regions[0].entry_block.ops)
    if not tops:
        return None
    if any(op.name != "func.func" for op in tops):
        return None
    for function in tops:
        for op in function.walk():
            if op.name in ("func.call", "llvm.call"):
                return None
    return tops


def shard_payload(payload: Operation) -> Optional[List[Operation]]:
    """Split a module into one single-function module per top-level
    func; None when the module is not cleanly splittable (see
    :func:`shardable_functions`) or has fewer than two functions
    (nothing to fan out)."""
    tops = shardable_functions(payload)
    if tops is None or len(tops) < 2:
        return None
    from ..dialects import builtin

    shards: List[Operation] = []
    for function in tops:
        shard = builtin.module()
        shard.attributes.update(payload.attributes)
        shard.body.append(function.clone())
        shards.append(shard)
    return shards


def assemble_functions(module_attributes, func_texts: List[str]):
    """Build one module from standalone function texts.

    The inverse of per-function splitting: each text parses as a
    single ``func.func`` (or a single-function module), the functions
    are appended in order to a fresh module carrying
    ``module_attributes``, and the module is printed once — global SSA
    numbering therefore matches a whole-module compilation exactly.
    Returns ``(printed_text, structural_digest)``; the digest comes
    off the assembled module while it is in hand, so callers never
    reparse the text to learn its identity.
    """
    from ..dialects import builtin
    from ..ir.hashing import op_digest
    from ..ir.parser import parse
    from ..ir.printer import print_op

    result = builtin.module()
    result.attributes.update(module_attributes)
    for index, text in enumerate(func_texts):
        op = parse(text, f"<function {index}>")
        if op.name == "builtin.module":
            for child in list(op.regions[0].entry_block.ops):
                result.body.append(child)
        else:
            result.body.append(op)
    result.verify()
    return print_op(result), op_digest(result)


def reassemble_module(payload: Operation,
                      shard_texts: List[str]) -> Optional[str]:
    """Splice transformed shard modules back into one module.

    The shards' functions are re-parented into a fresh module carrying
    the original module attributes, in the original function order, and
    the whole thing is printed once — so SSA value numbering is
    assigned globally exactly as a whole-module run would have.

    Returns None when any shard's module attributes diverged from the
    original payload's: the schedule mutated the module op itself (a
    per-shard clone), which cannot be merged back faithfully — callers
    must fall back to the sequential whole-module path. This backstops
    :func:`is_func_shardable` against any future whitelist hole.
    Divergence is detected by comparing attribute digests
    (:func:`repro.ir.hashing.attributes_digest`) — one hash per shard
    instead of materializing and comparing attribute dictionaries."""
    from ..dialects import builtin
    from ..ir.hashing import attributes_digest
    from ..ir.parser import parse
    from ..ir.printer import print_op

    expected_attrs = attributes_digest(payload)
    result = builtin.module()
    result.attributes.update(payload.attributes)
    for index, text in enumerate(shard_texts):
        shard = parse(text, f"<shard {index}>")
        if attributes_digest(shard) != expected_attrs:
            return None
        for op in list(shard.regions[0].entry_block.ops):
            result.body.append(op)
    result.verify()
    return print_op(result)
