"""The process-pool worker: one fully job-local compilation.

IR crosses the process boundary as text in both directions — the
printer -> parser round-trip is the transport contract (property-tested
in ``tests/ir/test_roundtrip_property.py``). Everything mutable the
compilation touches (parser, transform state, interpreter, diagnostics,
profiler counters) is created fresh inside :func:`compile_job`, so a
worker process can execute any number of jobs sequentially and each
behaves exactly like a standalone ``repro-opt`` invocation: pooled and
sequential runs produce byte-identical output and identical stats.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from typing import Dict, Mapping, Optional, Sequence, Union

from ..ir.attributes import StringAttr
from ..ir.core import Operation

ParamBindings = Mapping[str, Union[int, Sequence[int]]]


def _ensure_registered() -> None:
    """Import the op/pass registries (idempotent; needed when the pool
    uses the ``spawn`` start method and children start blank)."""
    import repro.core  # noqa: F401 — registers transform ops
    import repro.dialects  # noqa: F401 — registers payload ops
    import repro.passes  # noqa: F401 — registers passes


def bind_parameters(script: Operation, params: ParamBindings) -> int:
    """Override named ``transform.param.constant`` ops with ``params``.

    A param op opts into binding by carrying a ``binding`` string
    attribute; when a job provides a value under that name, the op's
    ``value`` attribute is replaced before interpretation::

        %sz = "transform.param.constant"()
              {binding = "tile_size", value = 4 : i64} ...

    Returns the number of ops rebound. Unknown binding names are
    ignored (the schedule's baked-in default stays in force), so one
    schedule library serves both bound and unbound traffic.
    """
    bound = 0
    if not params:
        return bound
    for op in script.walk():
        if op.name != "transform.param.constant":
            continue
        binding = op.attr("binding")
        if not isinstance(binding, StringAttr):
            continue
        if binding.value not in params:
            continue
        value = params[binding.value]
        op.set_attr(
            "value",
            list(value) if isinstance(value, (list, tuple)) else int(value),
        )
        bound += 1
    return bound


def compile_job(payload_text: str, script_text: str,
                params: Optional[ParamBindings] = None,
                entry_point: Optional[str] = None,
                strict: bool = False,
                inject: Optional[str] = None,
                trace: Optional[Dict[str, str]] = None
                ) -> Dict[str, object]:
    """Compile one (payload, script, params) job; returns a plain dict.

    The return value is deliberately pickle-friendly (strings and
    numbers only) so it survives the pool's result channel unchanged:

    ``status``
        ``"success"`` | ``"silenceable"`` | ``"definite"``;
        unexpected exceptions (a crash in transform code the barrier
        did not wrap, a payload verifier error) are encoded here as
        ``"definite"`` rather than raised, so pooled and in-process
        execution classify identically; ``strict`` disables that and
        lets them propagate raw, in both modes;
    ``output``
        the printed transformed payload (None on definite failure);
    ``output_digest``
        the structural digest (:func:`repro.ir.hashing.op_digest`) of
        the transformed payload, computed in the worker off the live
        IR — consumers compare output identity by digest instead of
        reparsing or re-hashing the text (None on failure);
    ``diagnostics``
        the rendered diagnostic stream (empty when clean);
    ``stats``
        the interpreter's counters, job-local by construction;
    ``wall_seconds``
        in-worker wall time (parse + interpret + print).

    ``inject`` is the fault-injection hook for the chaos harness
    (:mod:`repro.testing.faults`): ``"crash"`` kills this worker
    process outright (no exception barrier can contain ``os._exit``),
    ``"hang"`` blocks it past any deadline. Both fire *before* any
    compilation state exists — they model infrastructure death, not
    compile bugs — and are only ever passed by an engine running a
    :class:`~repro.testing.faults.FaultPlan` on a pooled execution.

    ``trace`` is the cross-process span propagation hook: a
    :meth:`repro.observability.SpanContext.to_dict` payload naming the
    engine-side trace and parent span. When present the worker records
    spans locally (parse / interpret — with one child span per
    top-level transform op — / print) into a tracer seeded with the
    propagated trace id and ships them back under ``"spans"`` (a list
    of :meth:`~repro.observability.Span.to_dict` dicts), so a job's
    trace is complete across the pool boundary.
    """
    if inject == "crash":
        os._exit(3)
    elif inject == "hang":
        time.sleep(3600.0)

    from ..core.errors import TransformInterpreterError
    from ..core.interpreter import TransformInterpreter
    from ..ir.hashing import op_digest
    from ..ir.parser import parse
    from ..ir.printer import print_op

    _ensure_registered()
    tracer = None
    root = None
    if trace is not None:
        from ..observability.tracing import SpanContext, Tracer

        context = SpanContext.from_dict(trace)
        tracer = Tracer(trace_id=context.trace_id)
        root = tracer.start_span(
            "worker.compile", parent=context,
            attributes={"worker_pid": os.getpid()},
        )

    def _span(name: str):
        return (tracer.span(name, parent=root)
                if tracer is not None else nullcontext())

    def _finish(raw: Dict[str, object]) -> Dict[str, object]:
        if tracer is not None:
            status = str(raw["status"])
            tracer.end_span(root, "ok" if status == "success" else status)
            raw["spans"] = tracer.to_dicts()
        else:
            raw["spans"] = []
        return raw

    start = time.perf_counter()
    interpreter = None
    status = "success"
    output: Optional[str] = None
    output_digest: Optional[str] = None
    try:
        with _span("worker.parse"):
            payload = parse(payload_text, "<payload>")
            script = parse(script_text, "<script>")
        if params:
            bind_parameters(script, params)
        interpreter = TransformInterpreter(strict=strict)
        with _span("worker.interpret") as interpret_span:
            if interpret_span is not None:
                interpreter.tracer = tracer
                interpreter.trace_parent = interpret_span
            result = interpreter.apply(script, payload, entry_point)
        if result.is_silenceable:
            status = "silenceable"
        with _span("worker.print"):
            payload.verify()
            output = print_op(payload)
            output_digest = op_digest(payload)
    except TransformInterpreterError as error:
        return _finish({
            "status": "definite",
            "output": None,
            "output_digest": None,
            "diagnostics": str(error),
            "stats": _stats_dict(interpreter) if interpreter else {},
            "wall_seconds": time.perf_counter() - start,
        })
    except Exception as error:
        # Anything the interpreter's barrier did not wrap (parse
        # errors when the engine skips key normalization, payload
        # verifier failures, crashes in transform code). Encoding it
        # here — in the worker — is what keeps pooled and workers=0
        # classification identical; strict mode propagates raw in
        # both (the pool pickles the exception back, the engine
        # re-raises it).
        if strict:
            raise
        return _finish({
            "status": "definite",
            "output": None,
            "output_digest": None,
            "diagnostics": f"error: {type(error).__name__}: {error}",
            "stats": _stats_dict(interpreter) if interpreter else {},
            "wall_seconds": time.perf_counter() - start,
        })
    return _finish({
        "status": status,
        "output": output,
        "output_digest": output_digest,
        "diagnostics": (interpreter.diagnostics.render()
                        if interpreter.diagnostics.diagnostics else ""),
        "stats": _stats_dict(interpreter),
        "wall_seconds": time.perf_counter() - start,
    })


def _stats_dict(interpreter) -> Dict[str, float]:
    stats = interpreter.stats
    return {
        "transforms_executed": stats.transforms_executed,
        "handles_created": stats.handles_created,
        "handles_invalidated": stats.handles_invalidated,
        "exceptions_contained": stats.exceptions_contained,
    }
