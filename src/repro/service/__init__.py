"""`repro.service`: a concurrent, cached transform-compilation service.

Batch transform-compilation on top of the interpreter stack built in
PRs 1-3: jobs are (payload module, transform script, parameter
bindings) triples shipped across process boundaries as *text* (the
printer -> parser round-trip is the transport contract), executed on a
``ProcessPoolExecutor`` worker pool, fronted by a content-addressed
compilation cache and an asyncio admission queue with backpressure.

Layers (each its own module):

* :mod:`repro.service.cache` — SHA-256 content-addressed result cache,
  in-memory LRU plus an optional on-disk store, with hit/miss/eviction
  statistics;
* :mod:`repro.service.worker` — the process-pool worker: parses,
  binds parameters, interprets and prints entirely job-locally;
* :mod:`repro.service.engine` — job scheduling: static preflight
  rejection, in-flight deduplication, per-job timeouts, cancellation,
  and policy-driven crash containment over the worker pool;
* :mod:`repro.service.resilience` — the recovery policies the engine
  runs under: configurable retry/backoff, poison-job quarantine, and
  crash-loop pool-health monitoring;
* :mod:`repro.service.sharding` — conservative per-function fan-out
  used by ``repro-opt --jobs N``;
* :mod:`repro.service.frontier` — the asyncio front-end (bounded
  queue, backpressure) and the ``repro-batch`` CLI;
* :mod:`repro.service.server` — the persistent ``repro-serve``
  daemon: a warm engine behind a line-delimited JSON protocol on a
  unix/TCP socket, with streamed job events, priority classes,
  per-client quotas, and drain/reload;
* :mod:`repro.service.client` — sync and asyncio clients for the
  daemon, and the ``repro-submit`` CLI (``repro-batch --connect``
  rides the asyncio one).

Fault tolerance is testable: every failure-handling path above can be
driven deterministically by :mod:`repro.testing.faults`.
"""

from .cache import CachedResult, CacheStats, CompilationCache, cache_key
from .client import AsyncServiceClient, RemoteError, ServiceClient
from .engine import CompileEngine, CompileJob, JobResult, JobStatus
from .frontier import ServiceClosedError, ServiceFrontier
from .server import CompileServer, ServerStats
from .resilience import (
    JobQuarantine,
    PoolHealthMonitor,
    PoolHealthPolicy,
    QuarantinePolicy,
    RetryPolicy,
)
from .sharding import is_func_shardable, reassemble_module, shard_payload
from .worker import bind_parameters, compile_job

__all__ = [
    "AsyncServiceClient",
    "CacheStats",
    "CachedResult",
    "CompilationCache",
    "CompileEngine",
    "CompileJob",
    "CompileServer",
    "JobQuarantine",
    "JobResult",
    "JobStatus",
    "PoolHealthMonitor",
    "PoolHealthPolicy",
    "QuarantinePolicy",
    "RemoteError",
    "RetryPolicy",
    "ServerStats",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceFrontier",
    "bind_parameters",
    "cache_key",
    "compile_job",
    "is_func_shardable",
    "reassemble_module",
    "shard_payload",
]
