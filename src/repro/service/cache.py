"""Content-addressed compilation cache.

A compilation is a pure function of (printed payload, printed script,
parameter bindings, entry point); the cache keys on the SHA-256 of that
tuple and stores the *printed* result module plus its outcome
classification. Storage is a thread-safe in-memory LRU with an optional
on-disk spill directory so warm results survive process restarts; disk
hits are promoted back into memory.

Only successful (or silenceable-with-output) compilations are cached —
definite failures are cheap to reproduce and usually transient in a
development loop, and caching them would mask fixes to transform code.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

#: Parameter bindings: name -> int or list of ints (the values a
#: ``transform.param.constant`` op can carry).
ParamBindings = Mapping[str, Union[int, Sequence[int]]]


def cache_key(payload_text: str, script_text: str,
              params: Optional[ParamBindings] = None,
              entry_point: Optional[str] = None) -> str:
    """SHA-256 content address of one compilation job.

    Parameters are serialized sorted by name so binding order never
    changes the key.
    """
    hasher = hashlib.sha256()
    hasher.update(payload_text.encode())
    hasher.update(b"\x00")
    hasher.update(script_text.encode())
    hasher.update(b"\x00")
    if params:
        canonical = sorted(
            (str(k), list(v) if isinstance(v, (list, tuple)) else [v])
            for k, v in params.items()
        )
        hasher.update(json.dumps(canonical).encode())
    hasher.update(b"\x00")
    if entry_point:
        hasher.update(entry_point.encode())
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting, memory and disk tiers separately."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    disk_hits: int = 0
    disk_puts: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "disk_hits": self.disk_hits,
            "disk_puts": self.disk_puts,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CachedResult:
    """The cache value: a finished compilation.

    ``status`` is the job classification string ("success" or
    "silenceable"); ``output`` the printed result module;
    ``diagnostics`` whatever warnings the run produced.
    """

    status: str
    output: str
    diagnostics: str = ""

    def to_json(self) -> str:
        return json.dumps({
            "status": self.status,
            "output": self.output,
            "diagnostics": self.diagnostics,
        })

    @staticmethod
    def from_json(text: str) -> "CachedResult":
        data = json.loads(text)
        return CachedResult(data["status"], data["output"],
                            data.get("diagnostics", ""))


@dataclass
class _Entry:
    result: CachedResult


class CompilationCache:
    """Thread-safe LRU over content-addressed compilation results.

    ``capacity`` bounds the in-memory tier (entries, not bytes — result
    modules are comparable in size for a given workload). ``disk_path``
    enables the on-disk tier: one JSON file per key, written on every
    put, consulted on memory misses.
    """

    def __init__(self, capacity: int = 256,
                 disk_path: Optional[str] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_path = disk_path
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        if disk_path is not None:
            os.makedirs(disk_path, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup / insert -----------------------------------------------------

    def get(self, key: str) -> Optional[CachedResult]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry.result
            result = self._disk_get(key)
            if result is not None:
                # Promote: a disk hit is still a hit, and hot keys
                # should not pay the file read twice.
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(key, result)
                return result
            self.stats.misses += 1
            return None

    def put(self, key: str, result: CachedResult) -> None:
        with self._lock:
            self.stats.puts += 1
            self._insert(key, result)
            self._disk_put(key, result)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier with ``disk=True``)."""
        with self._lock:
            self._entries.clear()
            if disk and self.disk_path is not None:
                for name in os.listdir(self.disk_path):
                    if name.endswith(".json"):
                        os.unlink(os.path.join(self.disk_path, name))

    # -- internals -----------------------------------------------------------

    def _insert(self, key: str, result: CachedResult) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = _Entry(result)
            return
        self._entries[key] = _Entry(result)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_file(self, key: str) -> str:
        return os.path.join(self.disk_path, f"{key}.json")

    def _disk_get(self, key: str) -> Optional[CachedResult]:
        if self.disk_path is None:
            return None
        path = self._disk_file(key)
        try:
            with open(path) as handle:
                return CachedResult.from_json(handle.read())
        except (OSError, ValueError, KeyError):
            return None

    def _disk_put(self, key: str, result: CachedResult) -> None:
        if self.disk_path is None:
            return
        path = self._disk_file(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as handle:
                handle.write(result.to_json())
            os.replace(tmp, path)
            self.stats.disk_puts += 1
        except OSError:
            # Disk tier is best-effort; memory tier already holds it.
            try:
                os.unlink(tmp)
            except OSError:
                pass
