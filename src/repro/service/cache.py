"""Content-addressed compilation cache.

A compilation is a pure function of (payload, script, parameter
bindings, entry point); the cache keys on the SHA-256 of that tuple
and stores the *printed* result module plus its outcome
classification. Storage is a thread-safe in-memory LRU with an
optional on-disk spill directory so warm results survive process
restarts; disk hits are promoted back into memory.

Two granularities share the store:

* the **whole-job tier** — one entry per (payload, script, params,
  entry point) tuple, looked up by :func:`cache_key`;
* the **function tier** — one entry per (``func.func`` digest, script
  digest, params) tuple, looked up by :func:`function_key`. Two
  payloads sharing 9 of 10 functions share 9 entries here, because
  the key is the *structural digest* of the function
  (:func:`repro.ir.hashing.op_digest`), not the module it arrived in.

Only successful (or silenceable-with-output) compilations are cached —
definite failures are cheap to reproduce and usually transient in a
development loop, and caching them would mask fixes to transform code.

The disk tier **degrades gracefully**: an unusable cache directory,
ENOSPC/EACCES mid-write, or a storm of corrupt entries demotes the
cache to memory-only (``stats.degraded``, with a counted
``disk_errors`` warning) instead of ever failing a lookup or a job —
a sick disk slows the service down, it does not take it down.
"""

from __future__ import annotations

import errno
import hashlib
import itertools
import json
import os
import struct
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from ..testing.faults import FaultPlan, FaultSite

#: Parameter bindings: name -> int or list of ints (the values a
#: ``transform.param.constant`` op can carry).
ParamBindings = Mapping[str, Union[int, Sequence[int]]]

_LEN = struct.Struct(">Q").pack


def _frame(hasher, data: bytes) -> None:
    """Length-prefix ``data`` so adjacent fields can never be re-split.

    A bare separator byte lets ``("a\\x00b", "c")`` and ``("a",
    "b\\x00c")`` collide onto one digest; an 8-byte big-endian length
    prefix on every field makes the framing injective.
    """
    hasher.update(_LEN(len(data)))
    hasher.update(data)


def _params_blob(params: Optional[ParamBindings]) -> bytes:
    """Canonical, *typed* serialization of parameter bindings.

    ``json.dumps`` with ``sort_keys=True`` over the native values keeps
    ``{"n": 1}`` and ``{"n": true}`` distinct (``1`` vs ``true``) and
    makes binding order irrelevant. Scalars normalize to singleton
    lists because ``bind_parameters`` treats ``4`` and ``[4]``
    identically — the key must too.
    """
    if not params:
        return b""
    canonical = {
        key: list(value) if isinstance(value, (list, tuple)) else [value]
        for key, value in params.items()
    }
    return json.dumps(canonical, sort_keys=True,
                      separators=(",", ":")).encode()


def cache_key(payload_text: str, script_text: str,
              params: Optional[ParamBindings] = None,
              entry_point: Optional[str] = None) -> str:
    """SHA-256 content address of one whole compilation job."""
    hasher = hashlib.sha256(b"repro-cache-key-v2")
    _frame(hasher, payload_text.encode())
    _frame(hasher, script_text.encode())
    _frame(hasher, _params_blob(params))
    _frame(hasher, entry_point.encode() if entry_point else b"")
    return hasher.hexdigest()


def function_key(func_digest: str, script_digest: str,
                 params: Optional[ParamBindings] = None) -> str:
    """SHA-256 address of one function's compilation under one script.

    ``func_digest`` is the structural digest of a standalone
    ``func.func`` (:func:`repro.ir.hashing.op_digest`), so the key is
    independent of which module the function appeared in and of its
    printed-name numbering.
    """
    hasher = hashlib.sha256(b"repro-fn-key-v1")
    _frame(hasher, func_digest.encode())
    _frame(hasher, script_digest.encode())
    _frame(hasher, _params_blob(params))
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting, memory and disk tiers separately.

    ``function_*`` count the per-function digest tier;
    ``disk_corrupt`` counts undecodable disk entries that were evicted
    on read (a corrupt file is unlinked the first time it is seen, so
    it can never poison more than one lookup).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    disk_hits: int = 0
    disk_puts: int = 0
    disk_corrupt: int = 0
    #: I/O failures (ENOSPC, EACCES, unusable directory, ...) on the
    #: disk tier; every one is survived, and enough of them demote the
    #: cache to memory-only (``degraded``).
    disk_errors: int = 0
    #: Stale ``*.tmp.*`` files swept at cache startup — writers killed
    #: between creating a temp file and renaming it into place (the
    #: chaos driver's worker kills do exactly this) leave them behind,
    #: and a long-lived server would otherwise accumulate them forever.
    disk_orphans_swept: int = 0
    #: True once the disk tier was demoted to memory-only.
    degraded: bool = False
    function_hits: int = 0
    function_misses: int = 0
    function_puts: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "disk_hits": self.disk_hits,
            "disk_puts": self.disk_puts,
            "disk_corrupt": self.disk_corrupt,
            "disk_errors": self.disk_errors,
            "disk_orphans_swept": self.disk_orphans_swept,
            "degraded": self.degraded,
            "function_hits": self.function_hits,
            "function_misses": self.function_misses,
            "function_puts": self.function_puts,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CachedResult:
    """The cache value: a finished compilation.

    ``status`` is the job classification string ("success" or
    "silenceable"); ``output`` the printed result module;
    ``diagnostics`` whatever warnings the run produced;
    ``output_digest`` the structural digest of the output module when
    the producer computed one (lets consumers compare identity without
    reparsing the text).
    """

    status: str
    output: str
    diagnostics: str = ""
    output_digest: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps({
            "status": self.status,
            "output": self.output,
            "diagnostics": self.diagnostics,
            "output_digest": self.output_digest,
        })

    @staticmethod
    def from_json(text: str) -> "CachedResult":
        data = json.loads(text)
        return CachedResult(data["status"], data["output"],
                            data.get("diagnostics", ""),
                            data.get("output_digest"))


@dataclass
class _Entry:
    result: CachedResult


#: Namespace prefix separating function-tier entries from whole-job
#: entries inside the shared LRU / disk directory.
_FN_PREFIX = "fn-"

_tmp_counter = itertools.count()


class CompilationCache:
    """Thread-safe LRU over content-addressed compilation results.

    ``capacity`` bounds the in-memory tier (entries, not bytes — result
    modules are comparable in size for a given workload). ``disk_path``
    enables the on-disk tier: one JSON file per key, written on every
    put, consulted on memory misses. Whole-job and function-tier
    entries share both tiers (function keys are namespaced), so one
    capacity bound governs total footprint.
    """

    def __init__(self, capacity: int = 256,
                 disk_path: Optional[str] = None,
                 max_disk_errors: int = 8,
                 faults: Optional[FaultPlan] = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if max_disk_errors < 1:
            raise ValueError("max_disk_errors must be >= 1")
        self.capacity = capacity
        self.disk_path = disk_path
        #: Disk I/O errors + corrupt entries tolerated before the disk
        #: tier is demoted to memory-only.
        self.max_disk_errors = max_disk_errors
        #: Deterministic fault schedule (testing only; None in prod).
        self.faults = faults
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        if disk_path is not None:
            try:
                os.makedirs(disk_path, exist_ok=True)
            except OSError as error:
                # An unusable cache directory must not fail the
                # service — run memory-only from the start.
                self.stats.disk_errors += 1
                self._degrade_disk(f"cache directory unusable: {error}")
            else:
                self._sweep_tmp_orphans()

    def _sweep_tmp_orphans(self) -> None:
        """Remove stale ``*.json.tmp.*`` files left by writers that
        died between creating a temp file and ``os.replace``-ing it
        into place. ``clear(disk=True)`` also sweeps them, but a
        long-lived server never calls ``clear`` — init is the one
        point every cache lifetime passes through. Counted in
        ``stats.disk_orphans_swept`` (adjacent to ``disk_errors`` in
        the stats surface) so operators can see crashed writers."""
        try:
            names = os.listdir(self.disk_path)
        except OSError as error:
            self._record_disk_trouble(f"orphan sweep failed: {error}")
            return
        for name in names:
            if ".json.tmp." not in name:
                continue
            try:
                os.unlink(os.path.join(self.disk_path, name))
            except OSError:
                continue
            self.stats.disk_orphans_swept += 1

    @property
    def degraded(self) -> bool:
        """True once the disk tier was demoted to memory-only."""
        return self.stats.degraded

    def _degrade_disk(self, reason: str) -> None:
        """Demote to memory-only (idempotent). Called under the cache
        lock on I/O paths; safe without it in ``__init__``."""
        if self.stats.degraded:
            return
        self.stats.degraded = True
        warnings.warn(
            f"repro compilation cache: disk tier degraded to "
            f"memory-only after {self.stats.disk_errors} I/O error(s) "
            f"and {self.stats.disk_corrupt} corrupt entrie(s): {reason}",
            RuntimeWarning,
            stacklevel=3,
        )

    def _record_disk_trouble(self, reason: str) -> None:
        """Count one disk error and demote once the budget is spent."""
        self.stats.disk_errors += 1
        if (self.stats.disk_errors + self.stats.disk_corrupt
                >= self.max_disk_errors):
            self._degrade_disk(reason)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup / insert -----------------------------------------------------

    def get(self, key: str,
            count_miss: bool = True) -> Optional[CachedResult]:
        """Look ``key`` up in memory, then on disk.

        ``count_miss=False`` suppresses the miss counter for
        re-lookups that already counted one (the engine's
        single-flight leader double-checks the cache after winning
        the in-flight slot); hits always count.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry.result
            result = self._disk_get(key)
            if result is not None:
                # Promote: a disk hit is still a hit, and hot keys
                # should not pay the file read twice.
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(key, result)
                return result
            if count_miss:
                self.stats.misses += 1
            return None

    def put(self, key: str, result: CachedResult) -> None:
        with self._lock:
            self.stats.puts += 1
            self._insert(key, result)
            self._disk_put(key, result)

    def get_function(self, key: str) -> Optional[CachedResult]:
        """Function-tier lookup (key from :func:`function_key`)."""
        result = self.get(_FN_PREFIX + key)
        with self._lock:
            # get() above already counted the whole-cache hit/miss;
            # mirror it into the per-tier counters.
            if result is not None:
                self.stats.function_hits += 1
            else:
                self.stats.function_misses += 1
        return result

    def put_function(self, key: str, result: CachedResult) -> None:
        """Function-tier insert (key from :func:`function_key`)."""
        self.put(_FN_PREFIX + key, result)
        with self._lock:
            self.stats.function_puts += 1

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier with ``disk=True``).

        The disk sweep also removes orphaned ``*.tmp.*`` files left by
        writers that died between creating a temp file and renaming it
        into place.
        """
        with self._lock:
            self._entries.clear()
            if disk and self.disk_path is not None:
                try:
                    names = os.listdir(self.disk_path)
                except OSError:
                    names = []
                for name in names:
                    if name.endswith(".json") or ".json.tmp." in name:
                        try:
                            os.unlink(os.path.join(self.disk_path, name))
                        except OSError:
                            pass

    # -- internals -----------------------------------------------------------

    def _insert(self, key: str, result: CachedResult) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = _Entry(result)
            return
        self._entries[key] = _Entry(result)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_file(self, key: str) -> str:
        return os.path.join(self.disk_path, f"{key}.json")

    def _disk_get(self, key: str) -> Optional[CachedResult]:
        if self.disk_path is None or self.stats.degraded:
            return None
        path = self._disk_file(key)
        try:
            with open(path) as handle:
                text = handle.read()
        except FileNotFoundError:
            # A normal miss, not a sick disk.
            return None
        except OSError as error:
            self._record_disk_trouble(f"read failed: {error}")
            return None
        if self.faults is not None and self.faults.fire(
                FaultSite.DISK_READ_CORRUPT, key):
            # Injected bit rot: hand the decoder garbage.
            text = text[: len(text) // 2] + "\x00corrupt"
        try:
            return CachedResult.from_json(text)
        except (ValueError, KeyError):
            # The file exists but does not decode: truncated write,
            # bit rot, or a foreign format. Evict it so subsequent
            # lookups miss cleanly instead of re-parsing garbage
            # forever; a storm of these demotes the tier entirely.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.stats.disk_corrupt += 1
            if (self.stats.disk_errors + self.stats.disk_corrupt
                    >= self.max_disk_errors):
                self._degrade_disk("corrupt-entry storm")
            return None

    def _disk_put(self, key: str, result: CachedResult) -> None:
        if self.disk_path is None or self.stats.degraded:
            return
        path = self._disk_file(key)
        # Unique per call, not just per process: two threads writing
        # the same key with a pid-only suffix race on one temp file and
        # can os.replace() a partially rewritten one.
        tmp = (f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
               f".{next(_tmp_counter)}")
        try:
            if self.faults is not None and self.faults.fire(
                    FaultSite.DISK_WRITE_ERROR, key):
                raise OSError(errno.ENOSPC,
                              "injected: no space left on device")
            with open(tmp, "w") as handle:
                handle.write(result.to_json())
            os.replace(tmp, path)
            self.stats.disk_puts += 1
        except OSError as error:
            # Disk tier is best-effort; memory tier already holds it.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._record_disk_trouble(f"write failed: {error}")
