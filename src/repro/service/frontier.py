"""The asyncio front-end and the ``repro-batch`` CLI.

:class:`ServiceFrontier` is the admission layer of the compile
service: a bounded ``asyncio.Queue`` in front of the engine. Producers
``await submit(...)`` — when the queue is full they block, which *is*
the backpressure mechanism: admission slows to the rate workers drain
the queue instead of buffering unboundedly. A small set of dispatcher
tasks pops jobs and runs :meth:`CompileEngine.run_job` on a private
thread pool (the engine call blocks on the process pool; threads keep
the event loop free).

``repro-batch`` compiles a directory of payload modules against a
schedule library through the frontier::

    repro-batch payloads/ --schedule schedules/tile.mlir --jobs 4 \\
        --cache-dir .repro-cache --timing --json metrics.json -o out/
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import os
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from ..testing.faults import FaultPlan, FaultSite
from .cache import CompilationCache
from .engine import CompileEngine, CompileJob, JobResult
from .resilience import PoolHealthPolicy, QuarantinePolicy, RetryPolicy

_SENTINEL = None


class ServiceClosedError(RuntimeError):
    """Raised by :meth:`ServiceFrontier.submit` once the frontier has
    begun (or finished) closing: the dispatchers are draining toward
    their shutdown sentinels, so a newly enqueued job would sit behind
    them forever and its submitter would hang. Subclasses
    ``RuntimeError`` so pre-existing broad handlers keep working."""


class ServiceFrontier:
    """Bounded-queue asyncio admission layer over a
    :class:`~repro.service.engine.CompileEngine`.

    Use as an async context manager::

        async with ServiceFrontier(engine, max_queue=32) as frontier:
            results = await asyncio.gather(
                *(frontier.submit(job) for job in jobs)
            )
    """

    def __init__(self, engine: CompileEngine, max_queue: int = 64,
                 dispatchers: Optional[int] = None):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.engine = engine
        self.max_queue = max_queue
        self.dispatchers = dispatchers or max(engine.workers, 1)
        self._queue: Optional[asyncio.Queue] = None
        self._tasks: List[asyncio.Task] = []
        self._threads: Optional[ThreadPoolExecutor] = None
        self._depth = 0
        self._depth_lock = threading.Lock()
        self._closing = False

    # -- lifecycle -----------------------------------------------------------

    async def __aenter__(self) -> "ServiceFrontier":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def start(self) -> None:
        if self._queue is not None:
            return
        self._closing = False
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._threads = ThreadPoolExecutor(
            max_workers=self.dispatchers,
            thread_name_prefix="repro-dispatch",
        )
        self._tasks = [
            asyncio.create_task(self._dispatch(), name=f"dispatch-{i}")
            for i in range(self.dispatchers)
        ]

    async def close(self) -> None:
        """Drain the queue, stop dispatchers, release the thread pool.

        Jobs admitted before ``close()`` are still drained to
        completion; ``submit()`` calls arriving from here on raise
        :class:`ServiceClosedError` — enqueueing behind the shutdown
        sentinels would hang the submitter forever."""
        if self._queue is None:
            return
        self._closing = True
        for _ in self._tasks:
            await self._queue.put(_SENTINEL)
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        self._queue = None

    # -- admission -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._depth_lock:
            return self._depth

    async def submit(self, job: CompileJob) -> JobResult:
        """Admit one job and await its result.

        Blocks (asynchronously) while the queue is full — backpressure
        propagates to the producer rather than growing a buffer.
        Raises :class:`ServiceClosedError` once :meth:`close` has begun
        (a job enqueued behind the shutdown sentinels would never be
        dispatched and this coroutine would hang forever).
        """
        if self._closing:
            raise ServiceClosedError(
                "frontier is closed (or draining); submit() rejected"
            )
        if self._queue is None:
            raise RuntimeError("frontier is not started")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Admission is where a job's trace is rooted: the root span
        # covers the whole frontier residency (queue wait + engine),
        # and ``queue.wait`` — ended by the dispatcher that pops the
        # job — measures admission-to-dispatch latency alone.
        tracer = getattr(self.engine, "tracer", None)
        events = getattr(self.engine, "events", None)
        root = wait = None
        if tracer is not None:
            root = tracer.start_span(
                f"job:{job.job_id}", attributes={"job_id": job.job_id}
            )
            wait = tracer.start_span(
                "queue.wait", parent=root,
                attributes={"job_id": job.job_id},
            )
        # Count the job before it is visible to dispatchers — the
        # other order lets a dispatcher pop and decrement first,
        # driving the counter (and the profiler's queue-depth samples)
        # transiently negative.
        with self._depth_lock:
            self._depth += 1
            depth = self._depth
        if self.engine.profiler is not None:
            self.engine.profiler.record_queue_depth(depth)
        if events is not None:
            events.emit("ADMITTED", job_id=job.job_id, depth=depth)
        try:
            await self._queue.put((job, future, root, wait))
        except BaseException:
            with self._depth_lock:
                self._depth -= 1
            if tracer is not None:
                tracer.end_span(wait, "error")
                tracer.end_span(root, "error")
            raise
        return await future

    async def run(self, jobs: Sequence[CompileJob]) -> List[JobResult]:
        """Submit all jobs (respecting backpressure) and gather results
        in submission order."""
        return list(await asyncio.gather(
            *(self.submit(job) for job in jobs)
        ))

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                return
            job, future, root, wait = item
            # Sample depth on *both* edges: enqueue sees the rising
            # slope (how deep backpressure let the queue grow), dequeue
            # the falling one (how fast dispatchers drain it). One-sided
            # sampling under-reports whichever slope it skips.
            with self._depth_lock:
                self._depth -= 1
                depth = self._depth
            tracer = getattr(self.engine, "tracer", None)
            events = getattr(self.engine, "events", None)
            if tracer is not None:
                tracer.end_span(wait)
            if self.engine.profiler is not None:
                self.engine.profiler.record_queue_depth(depth)
            if events is not None:
                events.emit("DEQUEUED", job_id=job.job_id, depth=depth)
            if future.cancelled():
                if tracer is not None:
                    tracer.end_span(root, "cancelled")
                continue
            faults: Optional[FaultPlan] = getattr(
                self.engine, "faults", None
            )
            if faults is not None and faults.fire(
                    FaultSite.QUEUE_STALL, job.job_id):
                # Injected dispatcher stall: the job sits decoded but
                # undispatched, as under a briefly wedged event loop.
                await asyncio.sleep(faults.stall_seconds)
            run = (functools.partial(self.engine.run_job, job,
                                     parent_span=root)
                   if tracer is not None
                   else functools.partial(self.engine.run_job, job))
            try:
                result = await loop.run_in_executor(self._threads, run)
            except Exception as error:  # defensive: surface, don't hang
                if tracer is not None:
                    root.attributes["exception"] = (
                        f"{type(error).__name__}: {error}"
                    )
                    tracer.end_span(root, "error")
                if not future.cancelled():
                    future.set_exception(error)
                continue
            if tracer is not None:
                tracer.end_span(
                    root, "ok" if result.ok else result.status.value
                )
            if not future.cancelled():
                future.set_result(result)


# ---------------------------------------------------------------------------
# repro-batch CLI
# ---------------------------------------------------------------------------


def _collect(path: str, suffix: str = ".mlir") -> List[str]:
    if os.path.isfile(path):
        return [path]
    if not os.path.isdir(path):
        raise FileNotFoundError(path)
    return sorted(
        os.path.join(path, name)
        for name in os.listdir(path)
        if name.endswith(suffix)
    )


def _parse_params(items: Optional[List[str]]) -> Optional[dict]:
    if not items:
        return None
    params = {}
    for item in items:
        name, _, raw = item.partition("=")
        if not _:
            raise ValueError(f"--param expects name=value, got {item!r}")
        values = [int(v) for v in raw.split(",")]
        params[name] = values[0] if len(values) == 1 else values
    return params


def _parse_faults(items: Optional[List[str]]) -> Optional[dict]:
    """Parse repeated ``--fault SITE=RATE`` into a rates mapping for
    :class:`FaultPlan` (the seed arrives separately via
    ``--fault-seed``)."""
    if not items:
        return None
    valid = {site.value for site in FaultSite}
    rates = {}
    for item in items:
        name, _, raw = item.partition("=")
        if not _:
            raise ValueError(f"--fault expects SITE=RATE, got {item!r}")
        if name not in valid:
            raise ValueError(
                f"unknown fault site {name!r} "
                f"(choose from: {', '.join(sorted(valid))})"
            )
        rate = float(raw)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"--fault rate must be in [0, 1], got {raw!r}")
        rates[name] = rate
    return rates


def _stem(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def _unique_labels(paths: Sequence[str]) -> List[str]:
    """Human-readable, collision-free labels for a list of files.

    Basename stems alone can collide — ``--schedule`` is repeatable,
    so ``a/tile.mlir`` and ``b/tile.mlir`` may both be loaded, and
    with ``-o`` colliding job ids would silently overwrite each
    other's output files. Duplicated stems are qualified with their
    parent directory; if even that collides, a positional index."""
    labels = [_stem(path) for path in paths]
    if len(set(labels)) == len(labels):
        return labels
    labels = [
        "{}.{}".format(
            os.path.basename(os.path.dirname(os.path.abspath(path)))
            or "root",
            _stem(path),
        )
        for path in paths
    ]
    if len(set(labels)) == len(labels):
        return labels
    return [f"{label}.{index}" for index, label in enumerate(labels)]


async def _run_batch(frontier: ServiceFrontier,
                     jobs: Sequence[CompileJob]) -> List[JobResult]:
    async with frontier:
        return await frontier.run(jobs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-batch",
        description="compile a directory of payload modules against a "
        "schedule library on a cached worker pool",
    )
    parser.add_argument("payloads",
                        help="payload IR file or directory of .mlir files")
    parser.add_argument("--schedule", action="append", required=True,
                        metavar="FILE_OR_DIR",
                        help="transform script file or directory "
                        "(repeatable; every payload is compiled "
                        "against every schedule)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = in-process "
                        "sequential; default 1)")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="admission queue bound (backpressure "
                        "threshold; default 64)")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="in-memory cache entries (default 256)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk cache directory (off by default)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the compilation cache")
    parser.add_argument("--no-function-cache", action="store_true",
                        help="disable the per-function digest cache "
                        "tier (whole-job caching still applies)")
    parser.add_argument("--no-preflight", action="store_true",
                        help="skip the static lint gate")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job deadline in seconds")
    parser.add_argument("--max-attempts", type=int, default=2,
                        help="executions per job before its failure is "
                        "terminal (default 2 = retry once; 1 disables "
                        "retries)")
    parser.add_argument("--retry-timeouts", action="store_true",
                        help="also retry jobs that hit the --timeout "
                        "deadline (by default only crashes retry)")
    parser.add_argument("--backoff", type=float, default=0.0,
                        metavar="SECONDS",
                        help="base retry backoff; doubles per attempt "
                        "with deterministic jitter (default 0 = "
                        "immediate)")
    parser.add_argument("--quarantine-after", type=int, default=3,
                        metavar="N",
                        help="pool failures by one job digest before it "
                        "is poisoned (default 3; 0 disables quarantine)")
    parser.add_argument("--crash-loop-limit", type=int, default=6,
                        metavar="N",
                        help="pool restarts inside a 30s window before "
                        "the engine degrades to in-process execution "
                        "(default 6; 0 disables the monitor)")
    parser.add_argument("--fault", action="append", default=None,
                        metavar="SITE=RATE",
                        help="inject deterministic faults (repeatable), "
                        "e.g. --fault worker_crash=0.1; sites: "
                        + ", ".join(sorted(s.value for s in FaultSite)))
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault plan (default 0)")
    parser.add_argument("--entry-point", default=None,
                        help="named sequence to run")
    parser.add_argument("--param", action="append", default=None,
                        metavar="NAME=VALUE",
                        help="parameter binding applied to every job "
                        "(repeatable; VALUE may be a comma list)")
    parser.add_argument("-o", "--output-dir", default=None,
                        help="write each result module here "
                        "(<payload>.<schedule>.mlir)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write machine-readable metrics here")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON of the "
                        "whole batch here (open in ui.perfetto.dev)")
    parser.add_argument("--events-out", default=None, metavar="FILE",
                        help="write the JSONL job-lifecycle event log "
                        "here (one record per state transition)")
    parser.add_argument("--timing", action="store_true",
                        help="print the -mlir-timing-style service "
                        "report to stderr")
    args = parser.parse_args(argv)

    try:
        payload_files = _collect(args.payloads)
        schedule_files = [
            path
            for entry in args.schedule
            for path in _collect(entry)
        ]
        params = _parse_params(args.param)
        fault_rates = _parse_faults(args.fault)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.max_attempts < 1:
        print("error: --max-attempts must be >= 1", file=sys.stderr)
        return 2
    if not payload_files or not schedule_files:
        print("error: no payloads or no schedules found", file=sys.stderr)
        return 2

    from ..observability import EventLog, Tracer
    from ..profiling import Profiler

    profiler = Profiler()
    tracer = Tracer() if args.trace_out is not None else None
    events = (EventLog(args.events_out)
              if args.events_out is not None else None)
    faults = (FaultPlan(seed=args.fault_seed, rates=fault_rates)
              if fault_rates else None)
    retry_statuses = frozenset(
        {"crashed", "timeout"} if args.retry_timeouts else {"crashed"}
    )
    retry_policy = (
        RetryPolicy(max_attempts=args.max_attempts,
                    retry_statuses=retry_statuses,
                    base_backoff=args.backoff)
        if args.max_attempts > 1 else RetryPolicy.none()
    )
    quarantine = (QuarantinePolicy(threshold=args.quarantine_after)
                  if args.quarantine_after > 0 else None)
    pool_health = (PoolHealthPolicy(max_restarts=args.crash_loop_limit)
                   if args.crash_loop_limit > 0 else None)
    cache = None
    if not args.no_cache:
        cache = CompilationCache(capacity=args.cache_size,
                                 disk_path=args.cache_dir,
                                 faults=faults)
    engine = CompileEngine(
        workers=args.jobs,
        cache=cache,
        preflight=not args.no_preflight,
        job_timeout=args.timeout,
        function_tier=not args.no_function_cache,
        profiler=profiler,
        retry_policy=retry_policy,
        quarantine=quarantine,
        pool_health=pool_health,
        faults=faults,
        tracer=tracer,
        events=events,
    )

    payload_labels = _unique_labels(payload_files)
    schedule_labels = _unique_labels(schedule_files)
    jobs = [
        CompileJob(
            payload_text=open(payload).read(),
            script_text=open(schedule).read(),
            params=params,
            entry_point=args.entry_point,
            job_id=f"{payload_label}.{schedule_label}",
        )
        for payload, payload_label in zip(payload_files, payload_labels)
        for schedule, schedule_label in zip(schedule_files, schedule_labels)
    ]

    frontier = ServiceFrontier(engine, max_queue=args.queue_size)
    try:
        results = asyncio.run(_run_batch(frontier, jobs))
    finally:
        engine.shutdown()

    failures = 0
    if args.output_dir is not None:
        os.makedirs(args.output_dir, exist_ok=True)
    for result in results:
        tag = result.status.value + (" (cached)" if result.cache_hit else "")
        print(f"{result.job_id}: {tag}")
        if result.ok and args.output_dir is not None:
            out = os.path.join(args.output_dir,
                               f"{result.job_id}.mlir")
            with open(out, "w") as handle:
                handle.write((result.output or "") + "\n")
        if not result.ok:
            failures += 1
            if result.diagnostics:
                print(result.diagnostics, file=sys.stderr)

    counts = {}
    for result in results:
        counts[result.status.value] = counts.get(result.status.value, 0) + 1
    summary = "  ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    print(f"{len(results)} job(s)  {summary}")

    if args.timing:
        print(profiler.render(), file=sys.stderr)
    if tracer is not None:
        tracer.write_chrome(args.trace_out)
    if events is not None:
        events.close()
    if args.json is not None:
        # Fold the engine/cache aggregates into the unified registry so
        # ``metrics`` below is the one versioned snapshot; the legacy
        # per-component dicts stay alongside for existing consumers.
        profiler.registry.set_section("engine", engine.stats.as_dict())
        if cache is not None:
            profiler.registry.set_section("cache", cache.stats.as_dict())
        metrics = {
            "jobs": len(results),
            "by_status": counts,
            "engine": engine.stats.as_dict(),
            "cache": cache.stats.as_dict() if cache is not None else None,
            "profiler": profiler.to_json(),
            "metrics": profiler.registry_snapshot(),
        }
        if faults is not None:
            metrics["faults"] = {
                "seed": faults.seed,
                "injected": faults.injected,
                "schedule": faults.schedule(),
            }
        if engine.degraded:
            metrics["degraded"] = engine.degraded_diagnostic
        with open(args.json, "w") as handle:
            json.dump(metrics, handle, indent=2)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
