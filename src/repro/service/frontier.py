"""The asyncio front-end and the ``repro-batch`` CLI.

:class:`ServiceFrontier` is the admission layer of the compile
service: a bounded ``asyncio.Queue`` in front of the engine. Producers
``await submit(...)`` — when the queue is full they block, which *is*
the backpressure mechanism: admission slows to the rate workers drain
the queue instead of buffering unboundedly. A small set of dispatcher
tasks pops jobs and runs :meth:`CompileEngine.run_job` on a private
thread pool (the engine call blocks on the process pool; threads keep
the event loop free).

``repro-batch`` compiles a directory of payload modules against a
schedule library through the frontier::

    repro-batch payloads/ --schedule schedules/tile.mlir --jobs 4 \\
        --cache-dir .repro-cache --timing --json metrics.json -o out/
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import os
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from dataclasses import dataclass, field

from ..testing.faults import FaultPlan, FaultSite
from .cache import CompilationCache
from .engine import CompileEngine, CompileJob, JobResult
from .resilience import PoolHealthPolicy, QuarantinePolicy, RetryPolicy

_SENTINEL = None


@dataclass
class _QueueItem:
    """One admitted job in flight between ``submit`` and a dispatcher.

    ``taken`` is the single-ownership flag between the three parties
    that may finish an item — a dispatcher popping it, a racing
    ``submit`` refusing it after losing the close race, and ``close``
    draining leftovers stranded behind the shutdown sentinels. All
    three run on the event loop, so flipping the flag is atomic; the
    first to flip it owns the item's future, spans, and depth count.
    """

    job: CompileJob
    future: asyncio.Future
    root: object = None
    wait: object = None
    taken: bool = field(default=False)


class ServiceClosedError(RuntimeError):
    """Raised by :meth:`ServiceFrontier.submit` once the frontier has
    begun (or finished) closing: the dispatchers are draining toward
    their shutdown sentinels, so a newly enqueued job would sit behind
    them forever and its submitter would hang. Subclasses
    ``RuntimeError`` so pre-existing broad handlers keep working."""


class ServiceFrontier:
    """Bounded-queue asyncio admission layer over a
    :class:`~repro.service.engine.CompileEngine`.

    Use as an async context manager::

        async with ServiceFrontier(engine, max_queue=32) as frontier:
            results = await asyncio.gather(
                *(frontier.submit(job) for job in jobs)
            )
    """

    def __init__(self, engine: CompileEngine, max_queue: int = 64,
                 dispatchers: Optional[int] = None):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.engine = engine
        self.max_queue = max_queue
        self.dispatchers = dispatchers or max(engine.workers, 1)
        self._queue: Optional[asyncio.Queue] = None
        self._tasks: List[asyncio.Task] = []
        self._threads: Optional[ThreadPoolExecutor] = None
        self._depth = 0
        self._depth_lock = threading.Lock()
        self._closing = False

    # -- lifecycle -----------------------------------------------------------

    async def __aenter__(self) -> "ServiceFrontier":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def start(self) -> None:
        if self._queue is not None:
            return
        self._closing = False
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._threads = ThreadPoolExecutor(
            max_workers=self.dispatchers,
            thread_name_prefix="repro-dispatch",
        )
        self._tasks = [
            asyncio.create_task(self._dispatch(), name=f"dispatch-{i}")
            for i in range(self.dispatchers)
        ]

    async def close(self) -> None:
        """Drain the queue, stop dispatchers, release the thread pool.

        Jobs admitted before ``close()`` are still drained to
        completion; ``submit()`` calls arriving from here on raise
        :class:`ServiceClosedError` — enqueueing behind the shutdown
        sentinels would hang the submitter forever. A submit that
        *races* the close (already past its closed check, parked in
        ``queue.put``) is refused the same way: its spans are ended,
        its future fails with :class:`ServiceClosedError`, and any
        copy stranded in the queue is drained here, never dispatched
        and never leaked."""
        if self._queue is None:
            return
        self._closing = True
        for _ in self._tasks:
            await self._queue.put(_SENTINEL)
        await asyncio.gather(*self._tasks, return_exceptions=True)
        # asyncio.Queue is not FIFO-fair between a woken putter and a
        # fresh put: a sentinel enqueued while a submit() was parked in
        # queue.put() can jump ahead of the job. Any job stranded
        # behind the sentinels would never be dispatched (the
        # dispatchers just exited) and its submitter would await its
        # future forever — refuse them now instead.
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is _SENTINEL or item.taken:
                continue
            self._refuse(item)
        self._tasks = []
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        self._queue = None

    # -- admission -----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._depth_lock:
            return self._depth

    async def submit(self, job: CompileJob) -> JobResult:
        """Admit one job and await its result.

        Blocks (asynchronously) while the queue is full — backpressure
        propagates to the producer rather than growing a buffer.
        Raises :class:`ServiceClosedError` once :meth:`close` has begun
        (a job enqueued behind the shutdown sentinels would never be
        dispatched and this coroutine would hang forever).
        """
        if self._closing:
            raise ServiceClosedError(
                "frontier is closed (or draining); submit() rejected"
            )
        if self._queue is None:
            raise RuntimeError("frontier is not started")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Admission is where a job's trace is rooted: the root span
        # covers the whole frontier residency (queue wait + engine),
        # and ``queue.wait`` — ended by the dispatcher that pops the
        # job — measures admission-to-dispatch latency alone.
        tracer = getattr(self.engine, "tracer", None)
        events = getattr(self.engine, "events", None)
        root = wait = None
        if tracer is not None:
            root = tracer.start_span(
                f"job:{job.job_id}", attributes={"job_id": job.job_id}
            )
            wait = tracer.start_span(
                "queue.wait", parent=root,
                attributes={"job_id": job.job_id},
            )
        # Count the job before it is visible to dispatchers — the
        # other order lets a dispatcher pop and decrement first,
        # driving the counter (and the profiler's queue-depth samples)
        # transiently negative.
        with self._depth_lock:
            self._depth += 1
            depth = self._depth
        if self.engine.profiler is not None:
            self.engine.profiler.record_queue_depth(depth)
        if events is not None:
            events.emit("ADMITTED", job_id=job.job_id, depth=depth)
        item = _QueueItem(job, future, root, wait)
        try:
            await self._queue.put(item)
        except BaseException:
            with self._depth_lock:
                self._depth -= 1
            if tracer is not None:
                tracer.end_span(wait, "error")
                tracer.end_span(root, "error")
            raise
        if self._closing and not item.taken:
            # Lost the race with close(): the check at the top passed,
            # but close() began while this coroutine was parked in
            # queue.put(), and the enqueued job may sit behind the
            # shutdown sentinels (queue wakeups are not FIFO-fair with
            # fresh puts). A dispatcher that already claimed the item
            # (taken) will still complete it; otherwise refuse it here
            # so the await below raises instead of hanging forever.
            self._refuse(item)
        return await future

    def _refuse(self, item: _QueueItem) -> None:
        """Terminate a refused admission: end its spans with an error,
        emit the terminal event, and fail its future. Runs on the
        event loop only; the caller must not have ceded ownership
        (``item.taken``) to a dispatcher."""
        item.taken = True
        with self._depth_lock:
            self._depth -= 1
            depth = self._depth
        if self.engine.profiler is not None:
            self.engine.profiler.record_queue_depth(depth)
        tracer = getattr(self.engine, "tracer", None)
        events = getattr(self.engine, "events", None)
        if tracer is not None:
            # Every refusal path must end what admission started, or
            # the exported trace carries spans that never finished
            # (validate_chrome_trace flags the children as orphans).
            tracer.end_span(item.wait, "error")
            tracer.end_span(item.root, "error")
        if events is not None:
            events.emit("COMPLETED", job_id=item.job.job_id,
                        status="cancelled", refused=True)
        if not item.future.done():
            item.future.set_exception(ServiceClosedError(
                "frontier closed while the job was being admitted; "
                "the job was refused before dispatch"
            ))

    async def run(self, jobs: Sequence[CompileJob]) -> List[JobResult]:
        """Submit all jobs (respecting backpressure) and gather results
        in submission order."""
        return list(await asyncio.gather(
            *(self.submit(job) for job in jobs)
        ))

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self) -> None:
        loop = asyncio.get_running_loop()
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                return
            if item.taken:
                # Refused by a racing submit()/close() that already
                # ended the spans and failed the future; nothing left
                # to do (depth was settled by the refuser too).
                continue
            item.taken = True
            job, future, root, wait = (item.job, item.future,
                                       item.root, item.wait)
            # Sample depth on *both* edges: enqueue sees the rising
            # slope (how deep backpressure let the queue grow), dequeue
            # the falling one (how fast dispatchers drain it). One-sided
            # sampling under-reports whichever slope it skips.
            with self._depth_lock:
                self._depth -= 1
                depth = self._depth
            tracer = getattr(self.engine, "tracer", None)
            events = getattr(self.engine, "events", None)
            if tracer is not None:
                tracer.end_span(wait)
            if self.engine.profiler is not None:
                self.engine.profiler.record_queue_depth(depth)
            if events is not None:
                events.emit("DEQUEUED", job_id=job.job_id, depth=depth)
            if future.done():
                if tracer is not None:
                    tracer.end_span(root, "cancelled")
                continue
            faults: Optional[FaultPlan] = getattr(
                self.engine, "faults", None
            )
            if faults is not None and faults.fire(
                    FaultSite.QUEUE_STALL, job.job_id):
                # Injected dispatcher stall: the job sits decoded but
                # undispatched, as under a briefly wedged event loop.
                await asyncio.sleep(faults.stall_seconds)
            run = (functools.partial(self.engine.run_job, job,
                                     parent_span=root)
                   if tracer is not None
                   else functools.partial(self.engine.run_job, job))
            try:
                result = await loop.run_in_executor(self._threads, run)
            except Exception as error:  # defensive: surface, don't hang
                if tracer is not None:
                    root.attributes["exception"] = (
                        f"{type(error).__name__}: {error}"
                    )
                    tracer.end_span(root, "error")
                if not future.done():
                    future.set_exception(error)
                continue
            if tracer is not None:
                tracer.end_span(
                    root, "ok" if result.ok else result.status.value
                )
            if not future.done():
                future.set_result(result)


# ---------------------------------------------------------------------------
# repro-batch CLI
# ---------------------------------------------------------------------------


def _collect(path: str,
             suffixes: Sequence[str] = (".mlir", ".py")) -> List[str]:
    if os.path.isfile(path):
        return [path]
    if not os.path.isdir(path):
        raise FileNotFoundError(path)
    return sorted(
        os.path.join(path, name)
        for name in os.listdir(path)
        if name.endswith(tuple(suffixes))
    )


def _parse_params(items: Optional[List[str]]) -> Optional[dict]:
    if not items:
        return None
    params = {}
    for item in items:
        name, _, raw = item.partition("=")
        if not _:
            raise ValueError(f"--param expects name=value, got {item!r}")
        values = [int(v) for v in raw.split(",")]
        params[name] = values[0] if len(values) == 1 else values
    return params


def _parse_faults(items: Optional[List[str]]) -> Optional[dict]:
    """Parse repeated ``--fault SITE=RATE`` into a rates mapping for
    :class:`FaultPlan` (the seed arrives separately via
    ``--fault-seed``)."""
    if not items:
        return None
    valid = {site.value for site in FaultSite}
    rates = {}
    for item in items:
        name, _, raw = item.partition("=")
        if not _:
            raise ValueError(f"--fault expects SITE=RATE, got {item!r}")
        if name not in valid:
            raise ValueError(
                f"unknown fault site {name!r} "
                f"(choose from: {', '.join(sorted(valid))})"
            )
        rate = float(raw)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"--fault rate must be in [0, 1], got {raw!r}")
        rates[name] = rate
    return rates


def _stem(path: str) -> str:
    return os.path.splitext(os.path.basename(path))[0]


def _unique_labels(paths: Sequence[str]) -> List[str]:
    """Human-readable, collision-free labels for a list of files.

    Basename stems alone can collide — ``--schedule`` is repeatable,
    so ``a/tile.mlir`` and ``b/tile.mlir`` may both be loaded, and
    with ``-o`` colliding job ids would silently overwrite each
    other's output files. Duplicated stems are qualified with their
    parent directory; if even that collides, a positional index."""
    labels = [_stem(path) for path in paths]
    if len(set(labels)) == len(labels):
        return labels
    labels = [
        "{}.{}".format(
            os.path.basename(os.path.dirname(os.path.abspath(path)))
            or "root",
            _stem(path),
        )
        for path in paths
    ]
    if len(set(labels)) == len(labels):
        return labels
    return [f"{label}.{index}" for index, label in enumerate(labels)]


async def _run_batch(frontier: ServiceFrontier,
                     jobs: Sequence[CompileJob]) -> List[JobResult]:
    async with frontier:
        return await frontier.run(jobs)


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Engine/cache/resilience flags shared by ``repro-batch`` and
    ``repro-serve`` (one source of truth for defaults and help)."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = in-process "
                        "sequential; default 1)")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="admission queue bound (backpressure "
                        "threshold; default 64)")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="in-memory cache entries (default 256)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk cache directory (off by default)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the compilation cache")
    parser.add_argument("--no-function-cache", action="store_true",
                        help="disable the per-function digest cache "
                        "tier (whole-job caching still applies)")
    parser.add_argument("--no-preflight", action="store_true",
                        help="skip the static lint gate")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job deadline in seconds")
    parser.add_argument("--max-attempts", type=int, default=2,
                        help="executions per job before its failure is "
                        "terminal (default 2 = retry once; 1 disables "
                        "retries)")
    parser.add_argument("--retry-timeouts", action="store_true",
                        help="also retry jobs that hit the --timeout "
                        "deadline (by default only crashes retry)")
    parser.add_argument("--backoff", type=float, default=0.0,
                        metavar="SECONDS",
                        help="base retry backoff; doubles per attempt "
                        "with deterministic jitter (default 0 = "
                        "immediate)")
    parser.add_argument("--quarantine-after", type=int, default=3,
                        metavar="N",
                        help="pool failures by one job digest before it "
                        "is poisoned (default 3; 0 disables quarantine)")
    parser.add_argument("--crash-loop-limit", type=int, default=6,
                        metavar="N",
                        help="pool restarts inside a 30s window before "
                        "the engine degrades to in-process execution "
                        "(default 6; 0 disables the monitor)")
    parser.add_argument("--fault", action="append", default=None,
                        metavar="SITE=RATE",
                        help="inject deterministic faults (repeatable), "
                        "e.g. --fault worker_crash=0.1; sites: "
                        + ", ".join(sorted(s.value for s in FaultSite)))
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault plan (default 0)")


def build_engine(args, profiler=None, tracer=None, events=None):
    """Construct the (engine, cache, faults) triple from parsed
    :func:`add_engine_arguments` flags. Raises ``ValueError`` on
    invalid combinations (callers map that to exit code 2)."""
    if args.max_attempts < 1:
        raise ValueError("--max-attempts must be >= 1")
    fault_rates = _parse_faults(args.fault)
    faults = (FaultPlan(seed=args.fault_seed, rates=fault_rates)
              if fault_rates else None)
    retry_statuses = frozenset(
        {"crashed", "timeout"} if args.retry_timeouts else {"crashed"}
    )
    retry_policy = (
        RetryPolicy(max_attempts=args.max_attempts,
                    retry_statuses=retry_statuses,
                    base_backoff=args.backoff)
        if args.max_attempts > 1 else RetryPolicy.none()
    )
    quarantine = (QuarantinePolicy(threshold=args.quarantine_after)
                  if args.quarantine_after > 0 else None)
    pool_health = (PoolHealthPolicy(max_restarts=args.crash_loop_limit)
                   if args.crash_loop_limit > 0 else None)
    cache = None
    if not args.no_cache:
        cache = CompilationCache(capacity=args.cache_size,
                                 disk_path=args.cache_dir,
                                 faults=faults)
    engine = CompileEngine(
        workers=args.jobs,
        cache=cache,
        preflight=not args.no_preflight,
        job_timeout=args.timeout,
        function_tier=not args.no_function_cache,
        profiler=profiler,
        retry_policy=retry_policy,
        quarantine=quarantine,
        pool_health=pool_health,
        faults=faults,
        tracer=tracer,
        events=events,
    )
    return engine, cache, faults


def _main_connected(args, jobs: Sequence[CompileJob]) -> int:
    """Route a prepared batch through a running ``repro-serve``
    daemon: all jobs are submitted concurrently over one connection
    (the server's admission queue provides the backpressure a local
    frontier would), outputs and the status summary match the local
    path so scripts can switch with just ``--connect``."""
    from .client import AsyncServiceClient, RemoteError

    async def drive():
        client = await AsyncServiceClient.connect(args.connect)
        try:
            results = await asyncio.gather(
                *(client.submit(
                    payload_text=job.payload_text,
                    script_text=job.script_text,
                    params=job.params,
                    entry_point=job.entry_point,
                    job_id=job.job_id,
                    priority=args.priority,
                ) for job in jobs),
                return_exceptions=True,
            )
            try:
                remote_stats = await client.stats()
            except Exception:
                remote_stats = None
            return results, remote_stats
        finally:
            await client.close()

    try:
        results, remote_stats = asyncio.run(drive())
    except (OSError, RemoteError) as error:
        print(f"error: cannot reach server at {args.connect}: {error}",
              file=sys.stderr)
        return 2

    failures = 0
    if args.output_dir is not None:
        os.makedirs(args.output_dir, exist_ok=True)
    counts: dict = {}
    for job, result in zip(jobs, results):
        if isinstance(result, BaseException):
            failures += 1
            counts["refused"] = counts.get("refused", 0) + 1
            print(f"{job.job_id}: refused ({result})", file=sys.stderr)
            continue
        tag = result.status.value + (" (cached)" if result.cache_hit else "")
        print(f"{job.job_id}: {tag}")
        counts[result.status.value] = counts.get(result.status.value, 0) + 1
        if result.ok and args.output_dir is not None:
            out = os.path.join(args.output_dir, f"{job.job_id}.mlir")
            with open(out, "w") as handle:
                handle.write((result.output or "") + "\n")
        if not result.ok:
            failures += 1
            if result.diagnostics:
                print(result.diagnostics, file=sys.stderr)
    summary = "  ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    print(f"{len(results)} job(s)  {summary}  [via {args.connect}]")
    if args.json is not None:
        metrics = {
            "jobs": len(results),
            "by_status": counts,
            "connect": args.connect,
            "server": remote_stats,
        }
        with open(args.json, "w") as handle:
            json.dump(metrics, handle, indent=2)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-batch",
        description="compile a directory of payload modules against a "
        "schedule library on a cached worker pool",
    )
    parser.add_argument("payloads",
                        help="payload IR file, frontend .py module, or "
                        "directory of .mlir/.py files")
    parser.add_argument("--schedule", action="append", required=True,
                        metavar="FILE_OR_DIR",
                        help="transform script file or frontend .py "
                        "module, or a directory of them (repeatable; "
                        "every payload is compiled against every "
                        "schedule)")
    parser.add_argument("--connect", default=None, metavar="ADDRESS",
                        help="route the batch through a running "
                        "repro-serve daemon (unix socket path or "
                        "HOST:PORT) instead of spawning a local pool; "
                        "engine/cache/resilience flags are the "
                        "server's business and are ignored")
    add_engine_arguments(parser)
    parser.add_argument("--priority", default="batch",
                        choices=("interactive", "batch", "background"),
                        help="priority class for --connect submissions "
                        "(default batch)")
    parser.add_argument("--entry-point", default=None,
                        help="named sequence to run")
    parser.add_argument("--param", action="append", default=None,
                        metavar="NAME=VALUE",
                        help="parameter binding applied to every job "
                        "(repeatable; VALUE may be a comma list)")
    parser.add_argument("-o", "--output-dir", default=None,
                        help="write each result module here "
                        "(<payload>.<schedule>.mlir)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write machine-readable metrics here")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON of the "
                        "whole batch here (open in ui.perfetto.dev)")
    parser.add_argument("--events-out", default=None, metavar="FILE",
                        help="write the JSONL job-lifecycle event log "
                        "here (one record per state transition)")
    parser.add_argument("--timing", action="store_true",
                        help="print the -mlir-timing-style service "
                        "report to stderr")
    args = parser.parse_args(argv)

    try:
        payload_files = _collect(args.payloads)
        schedule_files = [
            path
            for entry in args.schedule
            for path in _collect(entry)
        ]
        params = _parse_params(args.param)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.max_attempts < 1:
        print("error: --max-attempts must be >= 1", file=sys.stderr)
        return 2
    if not payload_files or not schedule_files:
        print("error: no payloads or no schedules found", file=sys.stderr)
        return 2

    payload_labels = _unique_labels(payload_files)
    schedule_labels = _unique_labels(schedule_files)
    from ..frontend.loader import read_payload_source, read_schedule_source

    try:
        payload_texts = [read_payload_source(p) for p in payload_files]
        schedule_texts = [read_schedule_source(s) for s in schedule_files]
    except Exception as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    jobs = [
        CompileJob(
            payload_text=payload_text,
            script_text=schedule_text,
            params=params,
            entry_point=args.entry_point,
            job_id=f"{payload_label}.{schedule_label}",
        )
        for payload_text, payload_label in zip(payload_texts,
                                                payload_labels)
        for schedule_text, schedule_label in zip(schedule_texts,
                                                 schedule_labels)
    ]

    if args.connect is not None:
        return _main_connected(args, jobs)

    from ..observability import EventLog, Tracer
    from ..profiling import Profiler

    profiler = Profiler()
    tracer = Tracer() if args.trace_out is not None else None
    events = (EventLog(args.events_out)
              if args.events_out is not None else None)
    try:
        engine, cache, faults = build_engine(
            args, profiler=profiler, tracer=tracer, events=events)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    frontier = ServiceFrontier(engine, max_queue=args.queue_size)
    try:
        results = asyncio.run(_run_batch(frontier, jobs))
    finally:
        engine.shutdown()

    failures = 0
    if args.output_dir is not None:
        os.makedirs(args.output_dir, exist_ok=True)
    for result in results:
        tag = result.status.value + (" (cached)" if result.cache_hit else "")
        print(f"{result.job_id}: {tag}")
        if result.ok and args.output_dir is not None:
            out = os.path.join(args.output_dir,
                               f"{result.job_id}.mlir")
            with open(out, "w") as handle:
                handle.write((result.output or "") + "\n")
        if not result.ok:
            failures += 1
            if result.diagnostics:
                print(result.diagnostics, file=sys.stderr)

    counts = {}
    for result in results:
        counts[result.status.value] = counts.get(result.status.value, 0) + 1
    summary = "  ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    print(f"{len(results)} job(s)  {summary}")

    if args.timing:
        print(profiler.render(), file=sys.stderr)
    if tracer is not None:
        tracer.write_chrome(args.trace_out)
    if events is not None:
        events.close()
    if args.json is not None:
        # Fold the engine/cache aggregates into the unified registry so
        # ``metrics`` below is the one versioned snapshot; the legacy
        # per-component dicts stay alongside for existing consumers.
        profiler.registry.set_section("engine", engine.stats.as_dict())
        if cache is not None:
            profiler.registry.set_section("cache", cache.stats.as_dict())
        metrics = {
            "jobs": len(results),
            "by_status": counts,
            "engine": engine.stats.as_dict(),
            "cache": cache.stats.as_dict() if cache is not None else None,
            "profiler": profiler.to_json(),
            "metrics": profiler.registry_snapshot(),
        }
        if faults is not None:
            metrics["faults"] = {
                "seed": faults.seed,
                "injected": faults.injected,
                "schedule": faults.schedule(),
            }
        if engine.degraded:
            metrics["degraded"] = engine.degraded_diagnostic
        with open(args.json, "w") as handle:
            json.dump(metrics, handle, indent=2)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
